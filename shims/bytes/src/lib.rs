//! Offline stand-in for `bytes`: the `Buf`/`BufMut` little-endian
//! accessors this workspace's binary graph format uses, over plain
//! `Vec<u8>` storage.

use std::ops::Deref;

/// Immutable byte buffer (`BytesMut::freeze` output).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read-side cursor operations (implemented for `&[u8]`, which advances
/// through the slice as values are taken).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn advance(&mut self, n: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }

    fn advance(&mut self, n: usize) {
        assert!(self.len() >= n, "advance past end of buffer");
        *self = &self[n..];
    }
}

/// Write-side append operations (implemented for `BytesMut` and `Vec<u8>`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(1 << 40);
        w.put_f32_le(1.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }
}
