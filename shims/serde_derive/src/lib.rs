//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Parses the item with the bare `proc_macro` API (no syn/quote in the
//! offline image) and emits impls of the shim's JSON-value traits.
//! Supported shapes — the full set this workspace derives on:
//!
//! - structs with named fields → JSON objects keyed by field name
//! - enums with unit variants → JSON strings (`"Variant"`)
//! - enums with single-field tuple variants → `{"Variant": <payload>}`
//!
//! Anything else (generics, struct variants, tuple structs) fails loudly
//! at expansion time rather than producing wrong data.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct { fields: Vec<String> },
    Enum { variants: Vec<(String, usize)> },
}

struct Item {
    name: String,
    /// Type parameter names (lifetimes/consts unsupported).
    generics: Vec<String>,
    shape: Shape,
}

impl Item {
    /// `"<T: serde::Serialize, U: serde::Serialize>"` or `""`.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            let params: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: {bound}"))
                .collect();
            format!("<{}>", params.join(", "))
        }
    }

    /// `"<T, U>"` or `""`.
    fn ty_generics(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        }
    }
}

/// Strips attributes/doc-comments and visibility, finds `struct`/`enum`,
/// the type name, and the body group.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut kind = None;
    let mut name = None;
    let mut generics = Vec::new();
    let mut body = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // attribute: consume the following [...] group
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" | "crate" => {
                        // `pub` possibly followed by `(crate)` etc.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => kind = Some(s),
                    "where" => panic!("serde shim derive: where clauses unsupported"),
                    _ if kind.is_some() && name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' && name.is_some() => {
                // Collect top-level type parameter names up to the
                // matching `>`: idents at depth 1 before any `:` bound.
                let mut depth = 1i32;
                let mut expect_param = true;
                for tt in iter.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                            expect_param = true;
                        }
                        TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                            expect_param = false;
                        }
                        TokenTree::Punct(p) if p.as_char() == '\'' => {
                            panic!("serde shim derive: lifetime parameters unsupported")
                        }
                        TokenTree::Ident(id) if depth == 1 && expect_param => {
                            if id.to_string() == "const" {
                                panic!("serde shim derive: const generics unsupported");
                            }
                            generics.push(id.to_string());
                            expect_param = false;
                        }
                        _ => {}
                    }
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            _ => {}
        }
    }
    let kind = kind.expect("serde shim derive: expected struct or enum");
    let name = name.expect("serde shim derive: missing type name");
    let body = body.expect("serde shim derive: missing braced body");
    let shape = if kind == "struct" {
        Shape::Struct {
            fields: parse_struct_fields(body),
        }
    } else {
        Shape::Enum {
            variants: parse_enum_variants(body),
        }
    };
    Item {
        name,
        generics,
        shape,
    }
}

/// Splits a brace-group token stream on top-level commas.
fn split_commas(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field name = last ident before the first top-level `:`.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    split_commas(body)
        .into_iter()
        .map(|tokens| {
            let mut last_ident = None;
            let mut iter = tokens.into_iter();
            while let Some(tt) = iter.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next();
                    }
                    TokenTree::Punct(p) if p.as_char() == ':' => break,
                    TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                    _ => {}
                }
            }
            last_ident.expect("serde shim derive: field without a name (tuple structs unsupported)")
        })
        .collect()
}

/// Variant name + payload arity (0 = unit, 1 = newtype).
fn parse_enum_variants(body: TokenStream) -> Vec<(String, usize)> {
    split_commas(body)
        .into_iter()
        .map(|tokens| {
            let mut name = None;
            let mut arity = 0usize;
            let mut iter = tokens.into_iter();
            while let Some(tt) = iter.next() {
                match tt {
                    TokenTree::Punct(p) if p.as_char() == '#' => {
                        iter.next();
                    }
                    TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        // arity = top-level commas + 1
                        let mut depth = 0i32;
                        let mut commas = 0usize;
                        for t in g.stream() {
                            match t {
                                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                                    commas += 1
                                }
                                _ => {}
                            }
                        }
                        arity = commas + 1;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        panic!("serde shim derive: struct enum variants unsupported")
                    }
                    _ => {}
                }
            }
            let name = name.expect("serde shim derive: unnamed enum variant");
            if arity > 1 {
                panic!("serde shim derive: multi-field tuple variants unsupported");
            }
            (name, arity)
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_g = item.impl_generics("serde::Serialize");
    let ty_g = item.ty_generics();
    let name = &item.name;
    let src = match &item.shape {
        Shape::Struct { fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         serde::Serialize::serialize_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl{impl_g} serde::Serialize for {name}{ty_g} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),\n"),
                    _ => format!(
                        "{name}::{v}(__x) => serde::Value::Object(vec![({v:?}.to_string(), \
                         serde::Serialize::serialize_value(__x))]),\n"
                    ),
                })
                .collect();
            format!(
                "impl{impl_g} serde::Serialize for {name}{ty_g} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_g = item.impl_generics("serde::Deserialize");
    let ty_g = item.ty_generics();
    let name = &item.name;
    let src = match &item.shape {
        Shape::Struct { fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::deserialize_value(\
                         serde::__field(__v, {f:?}))?,\n"
                    )
                })
                .collect();
            format!(
                "impl{impl_g} serde::Deserialize for {name}{ty_g} {{\n\
                     fn deserialize_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { variants } => {
            let str_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),\n"))
                .collect();
            let obj_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 1)
                .map(|(v, _)| {
                    format!(
                        "if __k == {v:?} {{ return Ok({name}::{v}(\
                         serde::Deserialize::deserialize_value(__payload)?)); }}\n"
                    )
                })
                .collect();
            format!(
                "impl{impl_g} serde::Deserialize for {name}{ty_g} {{\n\
                     fn deserialize_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match __v {{\n\
                             serde::Value::Str(__s) => {{\n\
                                 match __s.as_str() {{\n{str_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                             serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                                 let (__k, __payload) = &__fields[0];\n\
                                 let __k = __k.as_str();\n\
                                 {obj_arms}\
                             }}\n\
                             _ => {{}}\n\
                         }}\n\
                         Err(serde::DeError(format!(\
                             \"no variant of {name} matches {{:?}}\", __v)))\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}
