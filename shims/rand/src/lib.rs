//! Offline stand-in for the `rand 0.9` API surface this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{random, random_range, random_bool}`,
//! and `SliceRandom::shuffle`. Deterministic xoshiro256++ core — the
//! generators only need a good seeded stream, not the exact upstream
//! ChaCha sequence (datasets are self-consistent within a build).

/// Core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type `Rng::random` can produce uniformly.
pub trait StandardUniform: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with `Rng::random_range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` by rejection on the top bits.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

range_float!(f32, f64);

/// The user-facing sampling methods (blanket-implemented over any core).
pub trait Rng: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as StandardUniform>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Fisher–Yates shuffle on slices.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, StandardUniform};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: u32 = a.random_range(0..100);
            assert_eq!(x, b.random_range(0..100u32));
            assert!(x < 100);
        }
        let f: f64 = a.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
