//! Offline stand-in for `serde`.
//!
//! The build image has no access to a crates registry, so the workspace
//! vendors the small slice of serde it actually uses: derive-able
//! [`Serialize`]/[`Deserialize`] traits lowered through an in-memory JSON
//! [`Value`]. `serde_json` (also shimmed) provides the string encode/decode
//! on top. The wire format is plain JSON and matches what real
//! serde/serde_json would emit for the types this workspace derives
//! (structs with named fields, unit enum variants as strings, newtype
//! enum variants as one-key objects).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// In-memory JSON document. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integer (also covers unsigned values up to `i64::MAX`;
    /// larger magnitudes fall back to `UInt`/`Float`).
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object; `None` elsewhere.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {expected}, got {}", got.type_name()))
    }
}

/// A type that can lower itself to a JSON [`Value`].
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// A type that can rebuild itself from a JSON [`Value`].
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-internal helper: fetch a struct field, treating a missing key
/// as `null` so `Option` fields default to `None`.
pub fn __field<'v>(v: &'v Value, name: &str) -> &'v Value {
    v.get_field(name).unwrap_or(&Value::Null)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::mismatch("integer", other)),
                }
            }
        }
    )*};
}

ser_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::mismatch("number", other)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<K: AsRef<str>, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort for deterministic output; HashMap has no stable order.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.as_ref().to_string(), v.serialize_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => Ok(($($t::deserialize_value(
                        items.get($n).unwrap_or(&Value::Null))?,)+)),
                    other => Err(DeError::mismatch("array", other)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// JSON text encoding / decoding (used by the serde_json shim)
// ---------------------------------------------------------------------------

/// Writes `v` as compact JSON.
pub fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: emit integral floats with ".0".
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
pub fn parse_json(s: &str) -> Result<Value, DeError> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(DeError(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), DeError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(DeError(format!("expected '{}' at byte {pos}", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(DeError("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(DeError(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(DeError(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, DeError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(DeError(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, DeError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(DeError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| DeError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| DeError("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| DeError("bad \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(DeError("bad escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..end])
                        .map_err(|_| DeError("invalid utf-8 in string".into()))?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, DeError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if !float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| DeError(format!("invalid number '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(1.5),
            Value::Str("a \"b\"\n".into()),
        ] {
            let mut s = String::new();
            write_json(&v, &mut s);
            assert_eq!(parse_json(&s).unwrap(), v);
        }
    }

    #[test]
    fn nested_structures() {
        let v = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
            ("f".into(), Value::Float(3.0)),
        ]);
        let mut s = String::new();
        write_json(&v, &mut s);
        assert_eq!(s, r#"{"xs":[1,2],"f":3.0}"#);
        assert_eq!(parse_json(&s).unwrap(), v);
    }
}
