//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex`/`RwLock`
//! with the parking_lot calling convention (no `Result`, poison is
//! swallowed by handing back the inner guard — matching parking_lot's
//! no-poisoning semantics).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
