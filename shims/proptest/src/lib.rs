//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `prop::collection::{vec, btree_set}`,
//! [`Just`], `prop_oneof!`, the `proptest!` test macro, and the
//! `prop_assert*`/`prop_assume!` assertion macros. Cases are generated
//! from a seed derived from the test name, so runs are deterministic.
//! There is no shrinking: a failing case reports its values via the
//! assertion message instead.

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name, so each test walks its own stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Hard failure: the property does not hold.
    Fail(String),
    /// `prop_assume!` precondition unmet: skip the case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail<S: std::fmt::Display>(reason: S) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    pub fn reject<S: std::fmt::Display>(reason: S) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(s) => write!(f, "{s}"),
            TestCaseError::Reject(s) => write!(f, "rejected: {s}"),
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {} rejected 1000 candidates in a row",
            self.whence
        )
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// One boxed generator arm of a `prop_oneof!`.
pub type Arm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Weighted choice among boxed generator arms (built by `prop_oneof!`).
pub struct OneOf<T> {
    pub arms: Vec<(u32, Arm<T>)>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm(rng);
            }
            pick -= *w as u64;
        }
        (self
            .arms
            .last()
            .expect("prop_oneof! needs at least one arm")
            .1)(rng)
    }
}

/// Boxes one `prop_oneof!` arm into a uniform closure type.
pub fn boxed_arm<S: Strategy + 'static>(s: S) -> Arm<S::Value> {
    Box::new(move |rng| s.new_value(rng))
}

pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = BTreeSet::new();
            // Duplicates collapse; bound the attempts so tight element
            // domains cannot loop forever.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.new_value(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_set(elem, len_range)`.
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { elem, size }
    }
}

pub mod prelude {
    /// Lets test code write `prop::collection::vec(...)` as upstream does.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut __case: u32 = 0;
                let mut __attempts: u32 = 0;
                while __case < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __cfg.cases.saturating_mul(20).max(200) {
                        panic!("proptest: too many rejected cases in {}", stringify!($name));
                    }
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        Ok(()) => { __case += 1; }
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} of {} failed: {}", __case, stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+), __a, __b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf { arms: vec![ $( (($weight) as u32, $crate::boxed_arm($strat)) ),+ ] }
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![ $(1 => $strat),+ ]
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, v in prop::collection::vec(0usize..5, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn mapped_and_flat_mapped((n, xs) in (2u32..10).prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, 0..20))) ) {
            prop_assert!(xs.iter().all(|&x| x < n));
        }

        #[test]
        fn oneof_respects_arms(v in prop_oneof![3 => Just(1u32), 1 => Just(2u32)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
