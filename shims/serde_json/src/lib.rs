//! Offline stand-in for `serde_json`: string encode/decode over the serde
//! shim's [`Value`] document type.

pub use serde::DeError as Error;
pub use serde::Value;

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_json(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any shim-deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::deserialize_value(&serde::parse_json(s)?)
}

/// Lowers any serializable expression to a [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.serialize_value()
}

/// Shim `json!`: supports the expression form used in this workspace
/// (`json!(expr)` where `expr: Serialize`).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::to_value(&$e)
    };
}
