//! Offline stand-in for `criterion`: enough of the harness API for the
//! workspace's benches to compile and produce simple wall-clock medians.
//! No statistical analysis, plots, or saved baselines — `cargo bench`
//! prints one median per benchmark.

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark body.
pub struct Bencher {
    iters: u64,
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
    }
}

/// Display-only benchmark identifier (`group/param` naming).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(name: S, param: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut xs = b.samples;
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = if xs.is_empty() { 0.0 } else { xs[xs.len() / 2] };
        println!(
            "{}/{}: median {:.3} ms ({} samples)",
            self.name,
            id,
            median,
            xs.len()
        );
        self
    }

    pub fn bench_with_input<S: std::fmt::Display, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _c: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group(name.to_string())
            .bench_function("bench", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
