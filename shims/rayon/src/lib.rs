//! Offline stand-in for the `rayon` API surface this workspace uses:
//! `(range).into_par_iter().map(f).collect::<Vec<_>>()` and
//! `slice.par_iter_mut().for_each(f)`. Work is spread over
//! `std::thread::scope` with one chunk per available core, results are
//! returned in order — observable behaviour matches rayon for these
//! shapes (the closures are `Sync` and items independent).

use std::ops::Range;

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.min(items).max(1)
}

/// Parallel adapter over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    pub fn map<T, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    fn run<T>(self) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let ParRangeMap { range, f } = self;
        let len = range.len();
        if len == 0 {
            return Vec::new();
        }
        let workers = worker_count(len);
        if workers == 1 {
            return range.map(f).collect();
        }
        let chunk = len.div_ceil(workers);
        let start = range.start;
        let f = &f;
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = start + w * chunk;
                    let hi = (lo + chunk).min(start + len);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon shim worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }

    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromIterator<T>,
    {
        self.run().into_iter().collect()
    }
}

/// `(0..n).into_par_iter()`.
pub trait IntoParallelIterator {
    type ParIter;
    fn into_par_iter(self) -> Self::ParIter;
}

impl IntoParallelIterator for Range<usize> {
    type ParIter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel adapter over `&mut [T]`.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let workers = worker_count(len);
        if workers == 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        let f = &f;
        std::thread::scope(|scope| {
            for part in self.slice.chunks_mut(chunk) {
                scope.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }
}

/// `slice.par_iter_mut()` / `vec.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { slice: self }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_keeps_order() {
        let got: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        let want: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn slice_for_each_touches_everything() {
        let mut v = vec![1u32; 513];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }
}
