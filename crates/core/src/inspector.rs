//! Device inspector (§3.2): assesses the target GPU on the fly and tunes
//! the frontier word width, subgroup size, workgroup size and coarsening
//! factor. Also hosts the optimization toggles ablated in Figure 7.

use serde::{Deserialize, Serialize};
use sygraph_sim::{DeviceProfile, Vendor};

use crate::engine::recovery::RecoveryPolicy;
use crate::frontier::RepKind;

/// Advance load-balancing policy (§4.2): how compacted frontier vertices
/// are mapped onto execution resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Balancing {
    /// The original single-path mapping: every non-zero bitmap word is
    /// owned by one subgroup (MSI) or workgroup, and every vertex in it is
    /// expanded subgroup-cooperatively regardless of degree.
    WorkgroupMapped,
    /// Degree-aware three-bucket dispatch: small-degree vertices are
    /// lane-mapped, medium-degree vertices subgroup-cooperative, and
    /// large-degree vertices split into workgroup-sized neighbor chunks
    /// that spread across compute units (Gunrock-TWC / Tigr style).
    Bucketed,
    /// Pick per superstep: bucketed when the frontier is big enough to
    /// amortize the binning kernel *and* the graph's degree histogram
    /// (precomputed at load) shows hub vertices; workgroup-mapped
    /// otherwise.
    Auto,
}

/// Frontier representation policy: how the active set is materialized for
/// the advance (GraphBLAST-style sparse/dense mask switching).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Representation {
    /// Always the bitmap path — the paper's §4.3 two-layer layout with
    /// its per-superstep compaction scan.
    Dense,
    /// Always the item-list path: advance walks an explicit duplicate-free
    /// vertex list, skipping the compaction scan entirely.
    Sparse,
    /// Pick per superstep from the population count the engine already
    /// syncs for convergence, with hysteresis (see
    /// [`Tuning::choose_representation`]).
    #[default]
    Auto,
}

/// Traversal direction policy (§3.4): whether the advance expands the
/// frontier's out-edges (push) or scans unvisited vertices' in-edges
/// against the frontier bitmap (pull), à la Beamer's direction-optimizing
/// BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Direction {
    /// Always push: the classic top-down advance over the CSR.
    Push,
    /// Always pull: every superstep scans candidate vertices' in-edges
    /// (the CSC view) and adopts on the first frontier hit. Requires a
    /// graph built with a pull view ([`crate::graph::Graph::with_pull`]);
    /// the engine falls back to push when none is available.
    Pull,
    /// Beamer-style per-superstep selection with hysteresis (see
    /// [`Tuning::choose_direction`]): switch to pull when the frontier
    /// grows past `n / alpha`, back to push when it shrinks below
    /// `n / beta`. The decision is driven by the population estimate the
    /// engine already tracks from counted compaction, so it costs no
    /// extra host synchronization.
    #[default]
    Auto,
}

/// Which of the paper's §4 optimizations are enabled. Figure 7 ablates:
/// plain bitmap (all off), *MSI*, *CF*, *2LB* and *All*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptConfig {
    /// Match Subgroup-to-Integer size: pick the bitmap word width equal to
    /// the device's subgroup width (32 on NVIDIA/Intel, 64 on AMD).
    pub msi: bool,
    /// Coarsening Factor: each subgroup processes several bitmap words so
    /// the whole compute unit stays busy.
    pub coarsening: bool,
    /// Two-Layer Bitmap: skip all-zero words via the second layer.
    pub two_layer: bool,
    /// Advance load-balancing policy. Bucketed dispatch needs the counted
    /// compaction, so it degrades to workgroup-mapped on single-layer
    /// bitmaps.
    pub balancing: Balancing,
    /// Frontier representation policy. Sparse and auto need the hybrid /
    /// list frontiers, which build on the two-layer machinery; with
    /// `two_layer` off the engine stays on the plain dense bitmap.
    pub representation: Representation,
    /// Traversal direction policy. `Auto` is safe as a default: graphs
    /// without a pull (CSC) view simply stay on the push path.
    pub direction: Direction,
    /// Fault-recovery policy for the superstep engine (default:
    /// all-disabled — faults propagate as errors).
    pub recovery: RecoveryPolicy,
}

impl OptConfig {
    /// Everything on — the shipping configuration.
    pub fn all() -> Self {
        OptConfig {
            msi: true,
            coarsening: true,
            two_layer: true,
            balancing: Balancing::Auto,
            representation: Representation::Auto,
            direction: Direction::Auto,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Plain §4.1 bitmap, no optimizations (Figure 7 baseline).
    pub fn baseline() -> Self {
        OptConfig {
            msi: false,
            coarsening: false,
            two_layer: false,
            balancing: Balancing::WorkgroupMapped,
            representation: Representation::Dense,
            direction: Direction::Push,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// `all()` with an explicit balancing strategy — the configuration
    /// axis of the `advance_balancing` ablation.
    pub fn with_balancing(balancing: Balancing) -> Self {
        OptConfig {
            balancing,
            ..Self::all()
        }
    }

    /// `all()` with an explicit frontier representation — the
    /// configuration axis of the `frontier_rep` ablation and the CLI's
    /// `--frontier` flag.
    pub fn with_representation(representation: Representation) -> Self {
        OptConfig {
            representation,
            ..Self::all()
        }
    }

    /// `all()` with an explicit traversal direction — the configuration
    /// axis of the `direction_opt` ablation and the CLI's `--direction`
    /// flag.
    pub fn with_direction(direction: Direction) -> Self {
        OptConfig {
            direction,
            ..Self::all()
        }
    }

    pub fn msi_only() -> Self {
        OptConfig {
            msi: true,
            ..Self::baseline()
        }
    }

    pub fn cf_only() -> Self {
        OptConfig {
            coarsening: true,
            ..Self::baseline()
        }
    }

    pub fn two_layer_only() -> Self {
        OptConfig {
            two_layer: true,
            ..Self::baseline()
        }
    }

    /// The five Figure 7 configurations, labelled.
    pub fn ablation_suite() -> Vec<(&'static str, OptConfig)> {
        vec![
            ("Base", Self::baseline()),
            ("MSI", Self::msi_only()),
            ("CF", Self::cf_only()),
            ("2LB", Self::two_layer_only()),
            ("All", Self::all()),
        ]
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// Tuning parameters the inspector derives for a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuning {
    /// Bitmap word width in bits (32 or 64).
    pub word_bits: u32,
    /// Subgroup width used by frontier kernels.
    pub sg_size: u32,
    /// Subgroups per workgroup.
    pub subgroups_per_wg: u32,
    /// Bitmap words each subgroup processes per advance (≥ 1).
    pub coarsening: u32,
    /// Advance load-balancing policy (see [`Balancing`]).
    pub balancing: Balancing,
    /// Bucketed dispatch: vertices with out-degree ≤ this go to the
    /// lane-mapped small bucket (one lane walks the whole adjacency).
    pub small_max_degree: u32,
    /// Bucketed dispatch: vertices with out-degree ≥ this go to the
    /// chunked large bucket (one workgroup per neighbor chunk). The chunk
    /// size equals this threshold, so every chunk saturates a workgroup.
    pub large_min_degree: u32,
    /// Frontier representation policy (see [`Representation`]).
    pub representation: Representation,
    /// Auto representation: adopt the sparse list when the estimated
    /// active-vertex count drops below `capacity / sparse_enter_div`.
    pub sparse_enter_div: u32,
    /// Auto representation: fall back to the dense bitmap when the
    /// estimated active-vertex count exceeds `capacity / sparse_exit_div`.
    /// Kept at half of `sparse_enter_div` so the two thresholds form a 2×
    /// hysteresis band — a frontier oscillating around one boundary does
    /// not convert back and forth every superstep.
    pub sparse_exit_div: u32,
    /// Traversal direction policy (see [`Direction`]).
    pub direction: Direction,
    /// `Auto` direction: switch push → pull once the estimated frontier
    /// population exceeds `n / alpha` (Beamer's α; smaller = pull sooner).
    pub alpha: u32,
    /// `Auto` direction: switch pull → push once the estimated frontier
    /// population drops below `n / beta` (Beamer's β; larger = pull
    /// longer). Between the two thresholds the current direction is kept —
    /// that gap *is* the hysteresis band that prevents flapping.
    pub beta: u32,
    /// Fault-recovery policy consulted by the superstep engine.
    pub recovery: RecoveryPolicy,
}

impl Tuning {
    pub fn wg_size(&self) -> u32 {
        self.sg_size * self.subgroups_per_wg
    }

    /// Whether whole words map to single subgroups (MSI on: word width ≤
    /// subgroup width). Otherwise a workgroup owns each word and its
    /// subgroups split the bits.
    pub fn subgroup_mapped(&self) -> bool {
        self.word_bits <= self.sg_size
    }

    /// Bitmap words one workgroup covers.
    pub fn words_per_group(&self) -> u32 {
        if self.subgroup_mapped() {
            self.subgroups_per_wg * self.coarsening
        } else {
            self.coarsening
        }
    }

    /// Local memory bytes an advance workgroup declares: one u32 slot per
    /// bit of every word the group compacts (paper §4.2: "local memory
    /// for each workgroup is defined by the coarsening factor and the
    /// range of a bitmap's single integer").
    pub fn advance_local_bytes(&self) -> u32 {
        self.words_per_group() * self.word_bits * 4
    }

    /// Neighbor-range chunk size for the large bucket. Chunks are exactly
    /// `large_min_degree` edges so every chunk is at least one full
    /// workgroup-wide pass (`wg_size × 4` edges by default).
    pub fn large_chunk(&self) -> u32 {
        self.large_min_degree.max(1)
    }

    /// Resolve `Auto` against the superstep's compacted word count and
    /// the graph's degree profile (None = unknown, stay conservative).
    ///
    /// Bucketed dispatch pays an extra binning kernel plus a host
    /// round-trip for three counters, so it must clear two bars:
    ///
    /// * the frontier spans at least [`AUTO_MIN_WORDS`] non-zero words —
    ///   tiny frontiers (BFS warm-up, road-network wavefronts) can't
    ///   amortize the binning launch;
    /// * the graph actually has hub vertices: its maximum out-degree
    ///   reaches `large_min_degree`. Uniform-degree graphs (meshes, road
    ///   grids, chains) would bin everything into one bucket and gain
    ///   nothing;
    /// * the hubs are *clustered*: the edge mass of the heaviest 32-vertex
    ///   ID window dwarfs the average window
    ///   ([`DegreeProfile::word_skew`] ≥ [`AUTO_MIN_WORD_SKEW`]). The
    ///   workgroup-mapped path's unit of work is a bitmap word, so it only
    ///   suffers when one word concentrates far more edges than its peers
    ///   — a graph whose hubs are spread evenly across words (e.g. the
    ///   indochina stand-in) keeps every workgroup equally fed and pays
    ///   the binning pass for nothing.
    pub fn effective_balancing(
        &self,
        nz_words: usize,
        profile: Option<&DegreeProfile>,
    ) -> Balancing {
        match self.balancing {
            Balancing::WorkgroupMapped => Balancing::WorkgroupMapped,
            Balancing::Bucketed => Balancing::Bucketed,
            Balancing::Auto => {
                if self.graph_is_skewed(profile) && nz_words >= AUTO_MIN_WORDS {
                    Balancing::Bucketed
                } else {
                    Balancing::WorkgroupMapped
                }
            }
        }
    }

    /// Resolve the [`Representation`] policy for the upcoming superstep.
    ///
    /// `est_active` is an upper bound on the input frontier's population:
    /// exact when the previous superstep ran sparse (the list length), and
    /// `nonzero_words × word_bits` when it ran dense — both are counts the
    /// engine already read back for convergence, so the decision costs no
    /// extra host round-trip. `current` feeds the hysteresis: a dense
    /// frontier goes sparse only below `capacity / sparse_enter_div`
    /// (default n/64) and a sparse one goes dense only above
    /// `capacity / sparse_exit_div` (default n/32), so a wavefront sitting
    /// on one boundary never pays conversion every superstep.
    pub fn choose_representation(
        &self,
        est_active: usize,
        capacity: usize,
        current: RepKind,
    ) -> RepKind {
        match self.representation {
            Representation::Dense => RepKind::Dense,
            Representation::Sparse => RepKind::Sparse,
            Representation::Auto => {
                let enter = capacity / (self.sparse_enter_div.max(1) as usize);
                let exit = capacity / (self.sparse_exit_div.max(1) as usize);
                match current {
                    RepKind::Dense if est_active <= enter => RepKind::Sparse,
                    RepKind::Sparse if est_active > exit => RepKind::Dense,
                    unchanged => unchanged,
                }
            }
        }
    }

    /// Resolve the [`Direction`] policy for the upcoming superstep:
    /// `true` = pull, `false` = push.
    ///
    /// `est_pop` is the engine's population estimate for the input
    /// frontier — exact after a sparse superstep, `nonzero_words ×
    /// word_bits` after a dense one, and boosted by the fan-out prediction
    /// for the step ahead; all numbers the engine already reads back for
    /// convergence, so the decision costs no extra host round-trip.
    /// Beamer-style hysteresis: a pushing traversal switches to pull only
    /// above `n / alpha` (default n/4), a pulling one returns to push only
    /// below `n / beta` (default n/24). Estimates landing between the two
    /// thresholds keep the current direction, so a frontier hovering at
    /// one boundary never alternates kernels every superstep.
    pub fn choose_direction(&self, est_pop: usize, n: usize, pulling: bool) -> bool {
        match self.direction {
            Direction::Push => false,
            Direction::Pull => true,
            Direction::Auto => {
                if pulling {
                    est_pop >= n / (self.beta.max(1) as usize)
                } else {
                    est_pop > n / (self.alpha.max(1) as usize)
                }
            }
        }
    }

    /// The graph-shape half of the `Auto` decision: hubs exist (max degree
    /// reaches the large bucket) *and* they cluster into hot bitmap words.
    /// `None` (no profile available) stays conservative.
    pub fn graph_is_skewed(&self, profile: Option<&DegreeProfile>) -> bool {
        profile.is_some_and(|p| {
            p.max_degree >= self.large_min_degree && p.word_skew >= AUTO_MIN_WORD_SKEW
        })
    }
}

/// Minimum compacted (non-zero) word count before `Auto` switches to
/// bucketed dispatch.
pub const AUTO_MIN_WORDS: usize = 4;

/// Minimum [`DegreeProfile::word_skew`] before `Auto` considers the
/// graph's hubs clustered enough for bucketed dispatch to pay off. The
/// generator suite separates cleanly: R-MAT/social stand-ins measure
/// 16–43, the web stand-in ≈ 3.4 and road networks ≈ 1.2.
pub const AUTO_MIN_WORD_SKEW: f64 = 8.0;

/// Default `Auto` representation entry divisor: a dense frontier adopts
/// the sparse list once its estimated population drops below n/64. The
/// dense estimate is `nonzero_words × word_bits` — an upper bound that
/// already over-counts scattered frontiers — so the divisor is kept
/// conservative.
pub const SPARSE_ENTER_DIV: u32 = 64;

/// Default `Auto` representation exit divisor: a sparse frontier falls
/// back to the dense bitmap once its (exact) population exceeds n/32.
/// Half the entry divisor — a 2× hysteresis band.
pub const SPARSE_EXIT_DIV: u32 = 32;

/// Default Beamer α: `Auto` direction enters pull once the frontier
/// population estimate exceeds n/4. The dense estimate over-counts
/// (`nonzero_words × word_bits`), which errs toward pulling early on
/// scale-free graphs — exactly where pull pays.
pub const DIRECTION_ALPHA: u32 = 4;

/// Default Beamer β: `Auto` direction leaves pull once the population
/// drops below n/24. The 6× gap between `n/alpha` and `n/beta` is the
/// hysteresis band.
pub const DIRECTION_BETA: u32 = 24;

/// Vertex-ID window used for [`DegreeProfile::word_skew`]: one 32-bit
/// bitmap word's worth of vertices (the workgroup-mapped advance's unit
/// of work; close enough for 64-bit words too).
const WORD_SKEW_WINDOW: usize = 32;

/// Out-degree histogram the inspector precomputes once at graph upload
/// (log₂ buckets), plus the summary statistics `Auto` consults per
/// superstep. Computing this on the host during CSR upload is free next
/// to the edge-list sort the upload already does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeProfile {
    /// Maximum out-degree over all vertices.
    pub max_degree: u32,
    /// Mean out-degree (edges / vertices).
    pub avg_degree: f64,
    /// `buckets[0]` counts degree-0 vertices; for `d ≥ 1` a vertex lands
    /// in bucket `1 + ceil(log2(d))` — so `buckets[1]` is degree 1,
    /// `buckets[2]` degree 2, `buckets[3]` degrees 3–4, `buckets[4]`
    /// degrees 5–8, and so on (clamped at 32).
    pub buckets: Vec<u64>,
    /// Hub clustering: max edge mass of any 32-consecutive-vertex ID
    /// window over the mean window mass (1.0 = uniform, 0.0 = empty).
    /// Predicts the workgroup-mapped path's load imbalance, whose unit of
    /// work is one bitmap word of vertices.
    pub word_skew: f64,
}

impl DegreeProfile {
    pub fn from_degrees(degrees: &[u32]) -> Self {
        let mut max_degree = 0u32;
        let mut sum = 0u64;
        let mut buckets = vec![0u64; 33];
        for &d in degrees {
            max_degree = max_degree.max(d);
            sum += d as u64;
            let b = if d == 0 {
                0
            } else {
                (32 - (d - 1).max(1).leading_zeros()) as usize + usize::from(d > 1)
            };
            buckets[b.min(32)] += 1;
        }
        // Trim trailing empty buckets so the histogram's length tracks
        // log2(max_degree).
        while buckets.len() > 1 && *buckets.last().unwrap() == 0 {
            buckets.pop();
        }
        let word_skew = if sum == 0 {
            0.0
        } else {
            let windows = degrees.len().div_ceil(WORD_SKEW_WINDOW);
            let max_mass = degrees
                .chunks(WORD_SKEW_WINDOW)
                .map(|w| w.iter().map(|&d| d as u64).sum::<u64>())
                .max()
                .unwrap_or(0);
            max_mass as f64 * windows as f64 / sum as f64
        };
        DegreeProfile {
            max_degree,
            avg_degree: if degrees.is_empty() {
                0.0
            } else {
                sum as f64 / degrees.len() as f64
            },
            buckets,
            word_skew,
        }
    }

    /// Skew ratio: max degree over mean degree (∞-free; 0 for empty).
    pub fn skew(&self) -> f64 {
        if self.avg_degree > 0.0 {
            self.max_degree as f64 / self.avg_degree
        } else {
            0.0
        }
    }
}

/// Inspects `profile` and derives tuned parameters (§4.3's discussion):
///
/// * word width: subgroup-matched under MSI (32-bit + warp on NVIDIA,
///   64-bit + wavefront on AMD, 32-bit + SIMD32 on Intel); 64-bit
///   otherwise (the natural "one integer = 64 vertices" default).
/// * coarsening: sized so `total_words / (CU × resident groups)`
///   workgroups saturate the device, clamped to `[1, 8]`.
pub fn inspect(profile: &DeviceProfile, opts: &OptConfig, num_vertices: usize) -> Tuning {
    let sg_size = match profile.vendor {
        Vendor::Intel if profile.supports_subgroup(32) => 32,
        _ => profile.preferred_subgroup,
    };
    let word_bits = if opts.msi { sg_size.min(64) } else { 64 };
    let subgroups_per_wg = 4.min(profile.max_workgroup_size / sg_size).max(1);
    let coarsening = if opts.coarsening {
        // Enough workgroups to keep every CU busy for a few waves; beyond
        // that, coarsening trades scheduling overhead for per-group work.
        let words = num_vertices.div_ceil(word_bits as usize).max(1);
        let groups_uncoarsened = if word_bits <= sg_size {
            words.div_ceil(subgroups_per_wg as usize)
        } else {
            words
        };
        let target_groups = (profile.compute_units as usize * 8).max(1);
        (groups_uncoarsened.div_ceil(target_groups) as u32).clamp(1, 16)
    } else {
        1
    };
    // Bucket thresholds scale with the device's execution widths: a lane
    // can absorb up to half a subgroup-width of edges serially before
    // cooperative expansion wins, and a vertex only deserves whole
    // workgroups once its adjacency covers several full wg-wide passes.
    let wg_size = sg_size * subgroups_per_wg;
    Tuning {
        word_bits,
        sg_size,
        subgroups_per_wg,
        coarsening,
        balancing: opts.balancing,
        small_max_degree: (sg_size / 2).max(2),
        large_min_degree: wg_size * 4,
        representation: opts.representation,
        sparse_enter_div: SPARSE_ENTER_DIV,
        sparse_exit_div: SPARSE_EXIT_DIV,
        direction: opts.direction,
        alpha: DIRECTION_ALPHA,
        beta: DIRECTION_BETA,
        recovery: opts.recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msi_matches_vendor_widths() {
        let n = 1 << 20;
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::all(), n);
        assert_eq!(t.word_bits, 32);
        assert_eq!(t.sg_size, 32);
        let t = inspect(&DeviceProfile::mi100(), &OptConfig::all(), n);
        assert_eq!(t.word_bits, 64);
        assert_eq!(t.sg_size, 64);
        let t = inspect(&DeviceProfile::max1100(), &OptConfig::all(), n);
        assert_eq!(t.word_bits, 32);
        assert_eq!(t.sg_size, 32);
    }

    #[test]
    fn without_msi_word_is_64() {
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::baseline(), 1 << 20);
        assert_eq!(t.word_bits, 64);
        assert_eq!(t.sg_size, 32, "subgroup stays native");
    }

    #[test]
    fn coarsening_grows_with_graph() {
        let p = DeviceProfile::v100s();
        let small = inspect(&p, &OptConfig::all(), 10_000);
        let large = inspect(&p, &OptConfig::all(), 20_000_000);
        assert!(large.coarsening >= small.coarsening);
        assert!(large.coarsening <= 16);
        assert!(large.coarsening > 1, "20M vertices should coarsen");
        let off = inspect(&p, &OptConfig::baseline(), 20_000_000);
        assert_eq!(off.coarsening, 1);
    }

    #[test]
    fn ablation_suite_has_five_configs() {
        let suite = OptConfig::ablation_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].0, "Base");
        assert_eq!(suite[4].0, "All");
        assert_eq!(suite[4].1, OptConfig::default());
    }

    #[test]
    fn local_bytes_scale_with_coarsening() {
        let t = Tuning {
            word_bits: 32,
            sg_size: 32,
            subgroups_per_wg: 4,
            coarsening: 2,
            balancing: Balancing::WorkgroupMapped,
            small_max_degree: 16,
            large_min_degree: 512,
            representation: Representation::Dense,
            sparse_enter_div: SPARSE_ENTER_DIV,
            sparse_exit_div: SPARSE_EXIT_DIV,
            direction: Direction::Push,
            alpha: DIRECTION_ALPHA,
            beta: DIRECTION_BETA,
            recovery: RecoveryPolicy::default(),
        };
        assert_eq!(t.wg_size(), 128);
        assert_eq!(t.words_per_group(), 8);
        assert_eq!(t.advance_local_bytes(), 8 * 32 * 4);
    }

    #[test]
    fn representation_hysteresis() {
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::all(), 1 << 20);
        assert_eq!(t.representation, Representation::Auto);
        let n = 6400usize;
        let enter = n / SPARSE_ENTER_DIV as usize; // 100
        let exit = n / SPARSE_EXIT_DIV as usize; // 200
                                                 // Dense stays dense until the population drops to the entry bar.
        assert_eq!(
            t.choose_representation(enter + 1, n, RepKind::Dense),
            RepKind::Dense
        );
        assert_eq!(
            t.choose_representation(enter, n, RepKind::Dense),
            RepKind::Sparse
        );
        // Sparse stays sparse inside the hysteresis band…
        assert_eq!(
            t.choose_representation(exit, n, RepKind::Sparse),
            RepKind::Sparse
        );
        // …and exits only above the (2× higher) exit bar.
        assert_eq!(
            t.choose_representation(exit + 1, n, RepKind::Sparse),
            RepKind::Dense
        );
        // Forced policies ignore the estimate.
        let dense = Tuning {
            representation: Representation::Dense,
            ..t
        };
        assert_eq!(
            dense.choose_representation(0, n, RepKind::Sparse),
            RepKind::Dense
        );
        let sparse = Tuning {
            representation: Representation::Sparse,
            ..t
        };
        assert_eq!(
            sparse.choose_representation(n, n, RepKind::Dense),
            RepKind::Sparse
        );
    }

    #[test]
    fn direction_hysteresis_no_flapping() {
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::all(), 1 << 20);
        assert_eq!(t.direction, Direction::Auto);
        let n = 2400usize;
        let enter = n / t.alpha as usize; // 600
        let exit = n / t.beta as usize; // 100
                                        // Pushing: stays push at the boundary, pulls just above it.
        assert!(!t.choose_direction(enter, n, false));
        assert!(t.choose_direction(enter + 1, n, false));
        // Pulling: stays pull at the exit boundary, pushes just below it.
        assert!(t.choose_direction(exit, n, true));
        assert!(!t.choose_direction(exit - 1, n, true));
        // Inside the band both directions are sticky — a population
        // oscillating around either threshold cannot flap: after a
        // push→pull switch at enter+1, dropping back to enter keeps pull.
        assert!(t.choose_direction(enter, n, true));
        // After a pull→push switch at exit-1, rising back to exit keeps
        // push (exit < enter so the push branch sees a small frontier).
        assert!(!t.choose_direction(exit, n, false));
        for pop in [exit, (exit + enter) / 2, enter] {
            assert!(t.choose_direction(pop, n, true), "band is sticky @{pop}");
            assert!(!t.choose_direction(pop, n, false), "band is sticky @{pop}");
        }
    }

    #[test]
    fn forced_directions_ignore_population() {
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::all(), 1 << 20);
        let push = Tuning {
            direction: Direction::Push,
            ..t
        };
        let pull = Tuning {
            direction: Direction::Pull,
            ..t
        };
        for pop in [0usize, 100, 1 << 20] {
            assert!(!push.choose_direction(pop, 1 << 20, true));
            assert!(pull.choose_direction(pop, 1 << 20, false));
        }
        assert_eq!(OptConfig::baseline().direction, Direction::Push);
        assert_eq!(
            OptConfig::with_direction(Direction::Pull).direction,
            Direction::Pull
        );
    }

    #[test]
    fn baseline_and_ablation_configs_stay_dense() {
        assert_eq!(OptConfig::baseline().representation, Representation::Dense);
        assert_eq!(OptConfig::all().representation, Representation::Auto);
        assert_eq!(
            OptConfig::with_representation(Representation::Sparse).representation,
            Representation::Sparse
        );
        for (label, cfg) in OptConfig::ablation_suite() {
            if label != "All" {
                assert_eq!(cfg.representation, Representation::Dense, "{label}");
            }
        }
    }

    #[test]
    fn inspect_derives_bucket_thresholds() {
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::all(), 1 << 20);
        assert_eq!(t.small_max_degree, 16);
        assert_eq!(t.large_min_degree, t.wg_size() * 4);
        assert_eq!(t.large_chunk(), t.large_min_degree);
        assert_eq!(t.balancing, Balancing::Auto);
        let base = inspect(&DeviceProfile::v100s(), &OptConfig::baseline(), 1 << 20);
        assert_eq!(base.balancing, Balancing::WorkgroupMapped);
    }

    #[test]
    fn degree_profile_histogram() {
        let p = DegreeProfile::from_degrees(&[0, 1, 2, 3, 4, 8, 1000]);
        assert_eq!(p.max_degree, 1000);
        assert_eq!(p.buckets[0], 1); // degree 0
        assert_eq!(p.buckets[1], 1); // degree 1
        assert_eq!(p.buckets[2], 1); // degree 2
        assert_eq!(p.buckets[3], 2); // degrees 3-4
        assert_eq!(p.buckets[4], 1); // degrees 5-8
        assert_eq!(p.buckets[11], 1); // degrees 513-1024
        assert_eq!(p.buckets.len(), 12, "trailing empty buckets trimmed");
        assert!(p.skew() > 1.0);
        assert_eq!(p.word_skew, 1.0, "a single window is its own mean");
        let empty = DegreeProfile::from_degrees(&[]);
        assert_eq!(empty.max_degree, 0);
        assert_eq!(empty.skew(), 0.0);
        assert_eq!(empty.word_skew, 0.0);
    }

    #[test]
    fn word_skew_measures_hub_clustering() {
        // One hot window among 16: all edge mass in vertices 0..32.
        let mut clustered = vec![0u32; 512];
        for d in clustered.iter_mut().take(32) {
            *d = 100;
        }
        let p = DegreeProfile::from_degrees(&clustered);
        assert!((p.word_skew - 16.0).abs() < 1e-9);
        // Same total mass spread evenly: every window identical.
        let uniform = vec![100u32 / 16; 512];
        let p = DegreeProfile::from_degrees(&uniform);
        assert!((p.word_skew - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auto_resolution_needs_skew_and_volume() {
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::all(), 1 << 20);
        // A hub clustered into one hot window among many quiet ones.
        let mut hub_degrees = vec![1u32; 1024];
        hub_degrees[0] = t.large_min_degree + 1;
        let hubby = DegreeProfile::from_degrees(&hub_degrees);
        assert!(hubby.word_skew >= AUTO_MIN_WORD_SKEW);
        let flat = DegreeProfile::from_degrees(&[2, 3, 4]);
        // A hub per window: heavy vertices exist but no word is hotter
        // than any other (the web-crawl shape).
        let mut spread_degrees = vec![1u32; 1024];
        for i in (0..1024).step_by(32) {
            spread_degrees[i] = t.large_min_degree + 1;
        }
        let spread = DegreeProfile::from_degrees(&spread_degrees);
        // Auto: needs a skewed graph AND hub clustering AND a big-enough
        // frontier.
        assert_eq!(t.effective_balancing(64, Some(&hubby)), Balancing::Bucketed);
        assert_eq!(
            t.effective_balancing(1, Some(&hubby)),
            Balancing::WorkgroupMapped
        );
        assert_eq!(
            t.effective_balancing(64, Some(&flat)),
            Balancing::WorkgroupMapped
        );
        assert_eq!(
            t.effective_balancing(64, Some(&spread)),
            Balancing::WorkgroupMapped,
            "unclustered hubs keep the workgroup-mapped path"
        );
        assert_eq!(t.effective_balancing(64, None), Balancing::WorkgroupMapped);
        // Explicit strategies ignore the inputs.
        let forced = Tuning {
            balancing: Balancing::Bucketed,
            ..t
        };
        assert_eq!(forced.effective_balancing(0, None), Balancing::Bucketed);
    }
}
