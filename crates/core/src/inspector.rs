//! Device inspector (§3.2): assesses the target GPU on the fly and tunes
//! the frontier word width, subgroup size, workgroup size and coarsening
//! factor. Also hosts the optimization toggles ablated in Figure 7.

use serde::{Deserialize, Serialize};
use sygraph_sim::{DeviceProfile, Vendor};

/// Which of the paper's §4 optimizations are enabled. Figure 7 ablates:
/// plain bitmap (all off), *MSI*, *CF*, *2LB* and *All*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptConfig {
    /// Match Subgroup-to-Integer size: pick the bitmap word width equal to
    /// the device's subgroup width (32 on NVIDIA/Intel, 64 on AMD).
    pub msi: bool,
    /// Coarsening Factor: each subgroup processes several bitmap words so
    /// the whole compute unit stays busy.
    pub coarsening: bool,
    /// Two-Layer Bitmap: skip all-zero words via the second layer.
    pub two_layer: bool,
}

impl OptConfig {
    /// Everything on — the shipping configuration.
    pub fn all() -> Self {
        OptConfig {
            msi: true,
            coarsening: true,
            two_layer: true,
        }
    }

    /// Plain §4.1 bitmap, no optimizations (Figure 7 baseline).
    pub fn baseline() -> Self {
        OptConfig {
            msi: false,
            coarsening: false,
            two_layer: false,
        }
    }

    pub fn msi_only() -> Self {
        OptConfig {
            msi: true,
            ..Self::baseline()
        }
    }

    pub fn cf_only() -> Self {
        OptConfig {
            coarsening: true,
            ..Self::baseline()
        }
    }

    pub fn two_layer_only() -> Self {
        OptConfig {
            two_layer: true,
            ..Self::baseline()
        }
    }

    /// The five Figure 7 configurations, labelled.
    pub fn ablation_suite() -> Vec<(&'static str, OptConfig)> {
        vec![
            ("Base", Self::baseline()),
            ("MSI", Self::msi_only()),
            ("CF", Self::cf_only()),
            ("2LB", Self::two_layer_only()),
            ("All", Self::all()),
        ]
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// Tuning parameters the inspector derives for a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuning {
    /// Bitmap word width in bits (32 or 64).
    pub word_bits: u32,
    /// Subgroup width used by frontier kernels.
    pub sg_size: u32,
    /// Subgroups per workgroup.
    pub subgroups_per_wg: u32,
    /// Bitmap words each subgroup processes per advance (≥ 1).
    pub coarsening: u32,
}

impl Tuning {
    pub fn wg_size(&self) -> u32 {
        self.sg_size * self.subgroups_per_wg
    }

    /// Whether whole words map to single subgroups (MSI on: word width ≤
    /// subgroup width). Otherwise a workgroup owns each word and its
    /// subgroups split the bits.
    pub fn subgroup_mapped(&self) -> bool {
        self.word_bits <= self.sg_size
    }

    /// Bitmap words one workgroup covers.
    pub fn words_per_group(&self) -> u32 {
        if self.subgroup_mapped() {
            self.subgroups_per_wg * self.coarsening
        } else {
            self.coarsening
        }
    }

    /// Local memory bytes an advance workgroup declares: one u32 slot per
    /// bit of every word the group compacts (paper §4.2: "local memory
    /// for each workgroup is defined by the coarsening factor and the
    /// range of a bitmap's single integer").
    pub fn advance_local_bytes(&self) -> u32 {
        self.words_per_group() * self.word_bits * 4
    }
}

/// Inspects `profile` and derives tuned parameters (§4.3's discussion):
///
/// * word width: subgroup-matched under MSI (32-bit + warp on NVIDIA,
///   64-bit + wavefront on AMD, 32-bit + SIMD32 on Intel); 64-bit
///   otherwise (the natural "one integer = 64 vertices" default).
/// * coarsening: sized so `total_words / (CU × resident groups)`
///   workgroups saturate the device, clamped to `[1, 8]`.
pub fn inspect(profile: &DeviceProfile, opts: &OptConfig, num_vertices: usize) -> Tuning {
    let sg_size = match profile.vendor {
        Vendor::Intel if profile.supports_subgroup(32) => 32,
        _ => profile.preferred_subgroup,
    };
    let word_bits = if opts.msi { sg_size.min(64) } else { 64 };
    let subgroups_per_wg = 4.min(profile.max_workgroup_size / sg_size).max(1);
    let coarsening = if opts.coarsening {
        // Enough workgroups to keep every CU busy for a few waves; beyond
        // that, coarsening trades scheduling overhead for per-group work.
        let words = num_vertices.div_ceil(word_bits as usize).max(1);
        let groups_uncoarsened = if word_bits <= sg_size {
            words.div_ceil(subgroups_per_wg as usize)
        } else {
            words
        };
        let target_groups = (profile.compute_units as usize * 8).max(1);
        (groups_uncoarsened.div_ceil(target_groups) as u32).clamp(1, 16)
    } else {
        1
    };
    Tuning {
        word_bits,
        sg_size,
        subgroups_per_wg,
        coarsening,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msi_matches_vendor_widths() {
        let n = 1 << 20;
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::all(), n);
        assert_eq!(t.word_bits, 32);
        assert_eq!(t.sg_size, 32);
        let t = inspect(&DeviceProfile::mi100(), &OptConfig::all(), n);
        assert_eq!(t.word_bits, 64);
        assert_eq!(t.sg_size, 64);
        let t = inspect(&DeviceProfile::max1100(), &OptConfig::all(), n);
        assert_eq!(t.word_bits, 32);
        assert_eq!(t.sg_size, 32);
    }

    #[test]
    fn without_msi_word_is_64() {
        let t = inspect(&DeviceProfile::v100s(), &OptConfig::baseline(), 1 << 20);
        assert_eq!(t.word_bits, 64);
        assert_eq!(t.sg_size, 32, "subgroup stays native");
    }

    #[test]
    fn coarsening_grows_with_graph() {
        let p = DeviceProfile::v100s();
        let small = inspect(&p, &OptConfig::all(), 10_000);
        let large = inspect(&p, &OptConfig::all(), 20_000_000);
        assert!(large.coarsening >= small.coarsening);
        assert!(large.coarsening <= 16);
        assert!(large.coarsening > 1, "20M vertices should coarsen");
        let off = inspect(&p, &OptConfig::baseline(), 20_000_000);
        assert_eq!(off.coarsening, 1);
    }

    #[test]
    fn ablation_suite_has_five_configs() {
        let suite = OptConfig::ablation_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].0, "Base");
        assert_eq!(suite[4].0, "All");
        assert_eq!(suite[4].1, OptConfig::default());
    }

    #[test]
    fn local_bytes_scale_with_coarsening() {
        let t = Tuning {
            word_bits: 32,
            sg_size: 32,
            subgroups_per_wg: 4,
            coarsening: 2,
        };
        assert_eq!(t.wg_size(), 128);
        assert_eq!(t.words_per_group(), 8);
        assert_eq!(t.advance_local_bytes(), 8 * 32 * 4);
    }
}
