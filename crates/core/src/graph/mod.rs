//! Graph representations: host CSR building, device CSR/CSC, and the
//! custom-representation interface (§3.1 "Graphs Representations").

pub mod device;
pub mod ell;
pub mod host;
pub mod partition;
pub mod traits;

pub use device::{DeviceCsr, Graph};
pub use ell::EllGraph;
pub use host::{validate_sources, CsrHost, GraphError};
pub use partition::{DevicePartition, HaloEntry, PartitionSpec, PartitionedGraph};
pub use traits::DeviceGraphView;
