//! Device-resident CSR/CSC graph.

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue, SimResult, SubgroupCtx};

use crate::graph::host::CsrHost;
use crate::graph::traits::DeviceGraphView;
use crate::inspector::DegreeProfile;
use crate::types::{VertexId, Weight};

/// CSR stored in device memory. A CSC is simply the `DeviceCsr` of the
/// transposed graph (see [`Graph::with_pull`]).
pub struct DeviceCsr {
    n: usize,
    m: usize,
    /// `n + 1` row offsets.
    pub row_offsets: DeviceBuffer<u32>,
    /// `m` column indices.
    pub col_indices: DeviceBuffer<u32>,
    /// Optional `m` edge weights.
    pub weights: Option<DeviceBuffer<f32>>,
    /// Host copy of out-degrees (used by host-side planners only).
    degrees: Vec<u32>,
    /// Degree histogram the inspector consults when resolving
    /// `Balancing::Auto` per superstep (computed once at upload).
    profile: DegreeProfile,
}

impl DeviceCsr {
    /// Uploads a host CSR to the device owning `queue`.
    pub fn upload(queue: &Queue, host: &CsrHost) -> SimResult<Self> {
        let n = host.vertex_count();
        let m = host.edge_count();
        let row_offsets = queue.malloc_device::<u32>(n + 1)?;
        row_offsets.copy_from_slice(&host.offsets);
        let col_indices = queue.malloc_device::<u32>(m.max(1))?;
        col_indices.copy_from_slice(&host.indices);
        let weights = match &host.weights {
            Some(w) => {
                let b = queue.malloc_device::<f32>(m.max(1))?;
                b.copy_from_slice(w);
                Some(b)
            }
            None => None,
        };
        let degrees: Vec<u32> = (0..n as u32).map(|v| host.degree(v)).collect();
        let profile = DegreeProfile::from_degrees(&degrees);
        Ok(DeviceCsr {
            n,
            m,
            row_offsets,
            col_indices,
            weights,
            degrees,
            profile,
        })
    }

    /// Device memory consumed by this graph, in bytes.
    pub fn device_bytes(&self) -> u64 {
        self.row_offsets.bytes()
            + self.col_indices.bytes()
            + self.weights.as_ref().map_or(0, |w| w.bytes())
    }

    /// Downloads the structure back into a host CSR (for verification).
    pub fn download(&self) -> CsrHost {
        CsrHost {
            offsets: self.row_offsets.to_vec(),
            indices: self.col_indices.to_vec()[..self.m].to_vec(),
            weights: self.weights.as_ref().map(|w| w.to_vec()[..self.m].to_vec()),
        }
    }

    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Builds the edge→source lookup used by edge-frontier traversals
    /// (`operators::advance::edges`): one `u32` per edge, the expansion
    /// of the CSR row structure. Costs `m × 4` bytes of device memory.
    pub fn build_edge_sources(&self, q: &Queue) -> SimResult<DeviceBuffer<u32>> {
        let srcs = q.malloc_device::<u32>(self.m.max(1))?;
        let host: Vec<u32> = (0..self.n as u32)
            .flat_map(|v| {
                let lo = self.row_offsets.load(v as usize);
                let hi = self.row_offsets.load(v as usize + 1);
                std::iter::repeat_n(v, (hi - lo) as usize)
            })
            .collect();
        srcs.copy_from_slice(&host);
        Ok(srcs)
    }
}

impl DeviceGraphView for DeviceCsr {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn edge_count(&self) -> usize {
        self.m
    }

    fn row_bounds_uniform(&self, sg: &mut SubgroupCtx<'_, '_>, v: VertexId) -> (u32, u32) {
        let lo = sg.load_uniform(&self.row_offsets, v as usize);
        let hi = sg.load_uniform(&self.row_offsets, v as usize + 1);
        (lo, hi)
    }

    fn row_bounds(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> (u32, u32) {
        let lo = lane.load(&self.row_offsets, v as usize);
        let hi = lane.load(&self.row_offsets, v as usize + 1);
        (lo, hi)
    }

    fn edge_dest(&self, lane: &mut ItemCtx<'_>, e: u32) -> VertexId {
        lane.load(&self.col_indices, e as usize)
    }

    fn edge_weight(&self, lane: &mut ItemCtx<'_>, e: u32) -> Weight {
        match &self.weights {
            Some(w) => lane.load(w, e as usize),
            None => 1.0,
        }
    }

    fn out_degree_host(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }

    fn degree_profile(&self) -> Option<&DegreeProfile> {
        Some(&self.profile)
    }
}

/// The user-facing graph object: a push (CSR) view plus an optional pull
/// (CSC) view, both device-resident, bound to a queue's device like a
/// SYCL buffer.
pub struct Graph {
    /// Out-edge (push) view.
    pub csr: DeviceCsr,
    /// In-edge (pull) view, present when built with [`Graph::with_pull`].
    pub csc: Option<DeviceCsr>,
}

impl Graph {
    /// Uploads `host` with only the push (CSR) view.
    pub fn new(queue: &Queue, host: &CsrHost) -> SimResult<Self> {
        Ok(Graph {
            csr: DeviceCsr::upload(queue, host)?,
            csc: None,
        })
    }

    /// Uploads `host` with both push and pull views (needed by
    /// direction-optimizing traversals).
    pub fn with_pull(queue: &Queue, host: &CsrHost) -> SimResult<Self> {
        let csc_host = host.transpose();
        Ok(Graph {
            csr: DeviceCsr::upload(queue, host)?,
            csc: Some(DeviceCsr::upload(queue, &csc_host)?),
        })
    }

    pub fn vertex_count(&self) -> usize {
        self.csr.vertex_count()
    }

    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// Total device bytes across views.
    pub fn device_bytes(&self) -> u64 {
        self.csr.device_bytes() + self.csc.as_ref().map_or(0, |c| c.device_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn host_graph() -> CsrHost {
        CsrHost::from_edges_weighted(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            Some(&[1.0, 2.0, 3.0, 4.0]),
        )
    }

    #[test]
    fn upload_download_roundtrip() {
        let q = queue();
        let h = host_graph();
        let d = DeviceCsr::upload(&q, &h).unwrap();
        assert_eq!(d.vertex_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert!(d.is_weighted());
        assert_eq!(d.download(), h);
    }

    #[test]
    fn device_bytes_accounts_all_buffers() {
        let q = queue();
        let d = DeviceCsr::upload(&q, &host_graph()).unwrap();
        // offsets 5*4 + indices 4*4 + weights 4*4
        assert_eq!(d.device_bytes(), 20 + 16 + 16);
    }

    #[test]
    fn view_accessors_via_kernel() {
        let q = queue();
        let d = DeviceCsr::upload(&q, &host_graph()).unwrap();
        let out = q.malloc_device::<u32>(4).unwrap();
        let wsum = q.malloc_device::<f32>(1).unwrap();
        q.parallel_for("probe", 4, |ctx, v| {
            let (lo, hi) = d.row_bounds(ctx, v as u32);
            ctx.store(&out, v, hi - lo);
            for e in lo..hi {
                let _dst = d.edge_dest(ctx, e);
                let w = d.edge_weight(ctx, e);
                ctx.fetch_add_f32(&wsum, 0, w);
            }
        });
        assert_eq!(out.to_vec(), vec![2, 1, 1, 0]);
        assert_eq!(wsum.load(0), 10.0);
    }

    #[test]
    fn graph_with_pull_builds_transpose() {
        let q = queue();
        let g = Graph::with_pull(&q, &host_graph()).unwrap();
        let csc = g.csc.as_ref().unwrap();
        assert_eq!(csc.out_degree_host(3), 2, "vertex 3 has two in-edges");
        assert_eq!(g.device_bytes(), 2 * g.csr.device_bytes());
    }

    #[test]
    fn unweighted_edge_weight_is_one() {
        let q = queue();
        let h = CsrHost::from_edges(2, &[(0, 1)]);
        let d = DeviceCsr::upload(&q, &h).unwrap();
        let got = q.malloc_device::<f32>(1).unwrap();
        q.parallel_for("w", 1, |ctx, _| {
            let w = d.edge_weight(ctx, 0);
            ctx.store(&got, 0, w);
        });
        assert_eq!(got.load(0), 1.0);
    }
}
