//! Device-resident CSR/CSC graph.

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue, SimResult, SubgroupCtx};

use crate::graph::host::CsrHost;
use crate::graph::traits::DeviceGraphView;
use crate::inspector::DegreeProfile;
use crate::types::{VertexId, Weight};

/// CSR stored in device memory. A CSC is simply the `DeviceCsr` of the
/// transposed graph (see [`Graph::with_pull`]).
pub struct DeviceCsr {
    n: usize,
    m: usize,
    /// `n + 1` row offsets.
    pub row_offsets: DeviceBuffer<u32>,
    /// `m` column indices.
    pub col_indices: DeviceBuffer<u32>,
    /// Optional `m` edge weights.
    pub weights: Option<DeviceBuffer<f32>>,
    /// Host copy of out-degrees (used by host-side planners only).
    degrees: Vec<u32>,
    /// Degree histogram the inspector consults when resolving
    /// `Balancing::Auto` per superstep (computed once at upload).
    profile: DegreeProfile,
}

impl DeviceCsr {
    /// Uploads a host CSR to the device owning `queue`.
    pub fn upload(queue: &Queue, host: &CsrHost) -> SimResult<Self> {
        let n = host.vertex_count();
        let m = host.edge_count();
        let row_offsets = queue.malloc_device::<u32>(n + 1)?;
        row_offsets.copy_from_slice(&host.offsets);
        let col_indices = queue.malloc_device::<u32>(m.max(1))?;
        col_indices.copy_from_slice(&host.indices);
        let weights = match &host.weights {
            Some(w) => {
                let b = queue.malloc_device::<f32>(m.max(1))?;
                b.copy_from_slice(w);
                Some(b)
            }
            None => None,
        };
        let degrees: Vec<u32> = (0..n as u32).map(|v| host.degree(v)).collect();
        let profile = DegreeProfile::from_degrees(&degrees);
        Ok(DeviceCsr {
            n,
            m,
            row_offsets,
            col_indices,
            weights,
            degrees,
            profile,
        })
    }

    /// Device memory consumed by this graph, in bytes.
    pub fn device_bytes(&self) -> u64 {
        self.row_offsets.bytes()
            + self.col_indices.bytes()
            + self.weights.as_ref().map_or(0, |w| w.bytes())
    }

    /// Downloads the structure back into a host CSR (for verification).
    pub fn download(&self) -> CsrHost {
        CsrHost {
            offsets: self.row_offsets.to_vec(),
            indices: self.col_indices.to_vec()[..self.m].to_vec(),
            weights: self.weights.as_ref().map(|w| w.to_vec()[..self.m].to_vec()),
        }
    }

    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Builds the edge→source lookup used by edge-frontier traversals
    /// (`operators::advance::edges`): one `u32` per edge, the expansion
    /// of the CSR row structure. Costs `m × 4` bytes of device memory.
    pub fn build_edge_sources(&self, q: &Queue) -> SimResult<DeviceBuffer<u32>> {
        let srcs = q.malloc_device::<u32>(self.m.max(1))?;
        let host: Vec<u32> = (0..self.n as u32)
            .flat_map(|v| {
                let lo = self.row_offsets.load(v as usize);
                let hi = self.row_offsets.load(v as usize + 1);
                std::iter::repeat_n(v, (hi - lo) as usize)
            })
            .collect();
        srcs.copy_from_slice(&host);
        Ok(srcs)
    }
}

impl DeviceGraphView for DeviceCsr {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn edge_count(&self) -> usize {
        self.m
    }

    fn row_bounds_uniform(&self, sg: &mut SubgroupCtx<'_, '_>, v: VertexId) -> (u32, u32) {
        let lo = sg.load_uniform(&self.row_offsets, v as usize);
        let hi = sg.load_uniform(&self.row_offsets, v as usize + 1);
        (lo, hi)
    }

    fn row_bounds(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> (u32, u32) {
        let lo = lane.load(&self.row_offsets, v as usize);
        let hi = lane.load(&self.row_offsets, v as usize + 1);
        (lo, hi)
    }

    fn edge_dest(&self, lane: &mut ItemCtx<'_>, e: u32) -> VertexId {
        lane.load(&self.col_indices, e as usize)
    }

    fn edge_weight(&self, lane: &mut ItemCtx<'_>, e: u32) -> Weight {
        match &self.weights {
            Some(w) => lane.load(w, e as usize),
            None => 1.0,
        }
    }

    fn out_degree_host(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }

    fn degree_profile(&self) -> Option<&DegreeProfile> {
        Some(&self.profile)
    }
}

/// The user-facing graph object: a push (CSR) view plus an optional pull
/// (CSC) view, both device-resident, bound to a queue's device like a
/// SYCL buffer.
///
/// The pull view is *lazy*: [`Graph::with_pull`] only retains the host
/// structure, and the CSC mirror is transposed and uploaded on the first
/// pull-capable run ([`DeviceGraphView::ensure_pull`]). The upload goes
/// through the queue's allocation ledger like any other buffer, so
/// injected OOM faults and [`Graph::device_bytes`] both see it.
pub struct Graph {
    /// Out-edge (push) view.
    pub csr: DeviceCsr,
    /// Host structure retained by [`Graph::with_pull`] as the transpose
    /// source for the lazy CSC build; `None` for push-only graphs.
    pull_host: Option<CsrHost>,
    /// In-edge (pull) view, built on first `ensure_pull`.
    csc: std::sync::OnceLock<DeviceCsr>,
}

impl Graph {
    /// Uploads `host` with only the push (CSR) view.
    pub fn new(queue: &Queue, host: &CsrHost) -> SimResult<Self> {
        Ok(Graph {
            csr: DeviceCsr::upload(queue, host)?,
            pull_host: None,
            csc: std::sync::OnceLock::new(),
        })
    }

    /// Uploads `host` with the push view and arms the lazy pull (CSC)
    /// view: the mirror is built and uploaded by the first
    /// direction-optimizing run, not here.
    pub fn with_pull(queue: &Queue, host: &CsrHost) -> SimResult<Self> {
        Ok(Graph {
            csr: DeviceCsr::upload(queue, host)?,
            pull_host: Some(host.clone()),
            csc: std::sync::OnceLock::new(),
        })
    }

    pub fn vertex_count(&self) -> usize {
        self.csr.vertex_count()
    }

    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// The pull (CSC) view, if it has been built already.
    pub fn pull_view(&self) -> Option<&DeviceCsr> {
        self.csc.get()
    }

    /// Total device bytes across views. Counts the CSC only once it is
    /// actually resident.
    pub fn device_bytes(&self) -> u64 {
        self.csr.device_bytes() + self.csc.get().map_or(0, |c| c.device_bytes())
    }

    fn pull(&self) -> &DeviceCsr {
        self.csc
            .get()
            .expect("pull accessor used before ensure_pull")
    }
}

impl DeviceGraphView for Graph {
    fn vertex_count(&self) -> usize {
        self.csr.vertex_count()
    }

    fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    fn row_bounds_uniform(&self, sg: &mut SubgroupCtx<'_, '_>, v: VertexId) -> (u32, u32) {
        self.csr.row_bounds_uniform(sg, v)
    }

    fn row_bounds(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> (u32, u32) {
        self.csr.row_bounds(lane, v)
    }

    fn edge_dest(&self, lane: &mut ItemCtx<'_>, e: u32) -> VertexId {
        self.csr.edge_dest(lane, e)
    }

    fn edge_weight(&self, lane: &mut ItemCtx<'_>, e: u32) -> Weight {
        self.csr.edge_weight(lane, e)
    }

    fn out_degree_host(&self, v: VertexId) -> u32 {
        self.csr.out_degree_host(v)
    }

    fn degree_profile(&self) -> Option<&DegreeProfile> {
        self.csr.degree_profile()
    }

    fn supports_pull(&self) -> bool {
        self.pull_host.is_some() || self.csc.get().is_some()
    }

    fn ensure_pull(&self, q: &Queue) -> SimResult<bool> {
        if self.csc.get().is_some() {
            return Ok(true);
        }
        let Some(host) = &self.pull_host else {
            return Ok(false);
        };
        let built = DeviceCsr::upload(q, &host.transpose()?)?;
        // A racing builder may have won; its CSC is equivalent, keep it
        // (ours drops and is returned to the ledger).
        let _ = self.csc.set(built);
        Ok(true)
    }

    fn in_row_bounds_uniform(&self, sg: &mut SubgroupCtx<'_, '_>, v: VertexId) -> (u32, u32) {
        self.pull().row_bounds_uniform(sg, v)
    }

    fn in_row_bounds(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> (u32, u32) {
        self.pull().row_bounds(lane, v)
    }

    fn in_edge_src(&self, lane: &mut ItemCtx<'_>, e: u32) -> VertexId {
        self.pull().edge_dest(lane, e)
    }

    fn in_edge_weight(&self, lane: &mut ItemCtx<'_>, e: u32) -> Weight {
        self.pull().edge_weight(lane, e)
    }

    fn in_degree_host(&self, v: VertexId) -> u32 {
        self.pull().out_degree_host(v)
    }

    fn in_degree_profile(&self) -> Option<&DegreeProfile> {
        self.csc.get().and_then(|c| c.degree_profile())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn host_graph() -> CsrHost {
        CsrHost::from_edges_weighted(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            Some(&[1.0, 2.0, 3.0, 4.0]),
        )
    }

    #[test]
    fn upload_download_roundtrip() {
        let q = queue();
        let h = host_graph();
        let d = DeviceCsr::upload(&q, &h).unwrap();
        assert_eq!(d.vertex_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert!(d.is_weighted());
        assert_eq!(d.download(), h);
    }

    #[test]
    fn device_bytes_accounts_all_buffers() {
        let q = queue();
        let d = DeviceCsr::upload(&q, &host_graph()).unwrap();
        // offsets 5*4 + indices 4*4 + weights 4*4
        assert_eq!(d.device_bytes(), 20 + 16 + 16);
    }

    #[test]
    fn view_accessors_via_kernel() {
        let q = queue();
        let d = DeviceCsr::upload(&q, &host_graph()).unwrap();
        let out = q.malloc_device::<u32>(4).unwrap();
        let wsum = q.malloc_device::<f32>(1).unwrap();
        q.parallel_for("probe", 4, |ctx, v| {
            let (lo, hi) = d.row_bounds(ctx, v as u32);
            ctx.store(&out, v, hi - lo);
            for e in lo..hi {
                let _dst = d.edge_dest(ctx, e);
                let w = d.edge_weight(ctx, e);
                ctx.fetch_add_f32(&wsum, 0, w);
            }
        });
        assert_eq!(out.to_vec(), vec![2, 1, 1, 0]);
        assert_eq!(wsum.load(0), 10.0);
    }

    #[test]
    fn graph_with_pull_builds_transpose_lazily() {
        let q = queue();
        let g = Graph::with_pull(&q, &host_graph()).unwrap();
        // Nothing uploaded yet: only the CSR is resident.
        assert!(g.supports_pull());
        assert!(g.pull_view().is_none());
        assert_eq!(g.device_bytes(), g.csr.device_bytes());
        let before = q.device().mem_used();
        // First pull-capable run builds and meters the mirror.
        assert!(g.ensure_pull(&q).unwrap());
        assert_eq!(g.in_degree_host(3), 2, "vertex 3 has two in-edges");
        assert_eq!(g.device_bytes(), 2 * g.csr.device_bytes());
        assert!(
            q.device().mem_used() > before,
            "CSC upload goes through the allocation ledger"
        );
        // Idempotent: a second call reuses the resident view.
        assert!(g.ensure_pull(&q).unwrap());
        assert_eq!(g.device_bytes(), 2 * g.csr.device_bytes());
    }

    #[test]
    fn push_only_graph_declines_pull() {
        let q = queue();
        let g = Graph::new(&q, &host_graph()).unwrap();
        assert!(!g.supports_pull());
        assert!(!g.ensure_pull(&q).unwrap());
        assert!(g.pull_view().is_none());
    }

    #[test]
    fn unweighted_edge_weight_is_one() {
        let q = queue();
        let h = CsrHost::from_edges(2, &[(0, 1)]);
        let d = DeviceCsr::upload(&q, &h).unwrap();
        let got = q.malloc_device::<f32>(1).unwrap();
        q.parallel_for("w", 1, |ctx, _| {
            let w = d.edge_weight(ctx, 0);
            ctx.store(&got, 0, w);
        });
        assert_eq!(got.load(0), 1.0);
    }
}
