//! ELL (ELLPACK) graph representation — a user-defined custom format.
//!
//! The paper stresses that "the SYgraph API lets users define their own
//! graph representations by implementing an interface containing the
//! necessary methods" (§3.1). This module is that path exercised: the
//! classic GPU-friendly padded fixed-width adjacency, implementing
//! [`DeviceGraphView`] so every primitive — `advance`, `filter`,
//! `compute` — runs on it unchanged.
//!
//! Pure ELL pads every row to the maximum degree: perfectly regular
//! addressing (`row_bounds` needs one degree load, no offset array) in
//! exchange for `n × max_degree` storage. It suits low-variance degree
//! distributions — road networks — and is catastrophic on scale-free
//! graphs, which the tests demonstrate.

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue, SimResult, SubgroupCtx};

use crate::graph::host::CsrHost;
use crate::graph::traits::DeviceGraphView;
use crate::types::{VertexId, Weight};

/// Padded fixed-width (max-degree) adjacency.
pub struct EllGraph {
    n: usize,
    m: usize,
    /// Row width = the graph's maximum out-degree (≥ 1).
    width: u32,
    /// `n` out-degrees.
    deg: DeviceBuffer<u32>,
    /// `n × width` padded destinations.
    adj: DeviceBuffer<u32>,
    /// Optional padded weights.
    weights: Option<DeviceBuffer<f32>>,
    degrees: Vec<u32>,
}

impl EllGraph {
    /// Uploads `host` as pure ELL (row width = max degree).
    pub fn upload(queue: &Queue, host: &CsrHost) -> SimResult<Self> {
        let n = host.vertex_count();
        let m = host.edge_count();
        let width = host.max_degree().max(1);
        let w = width as usize;
        let mut adj = vec![0u32; n * w];
        let mut deg = vec![0u32; n];
        let mut wts = host.weights.as_ref().map(|_| vec![0f32; n * w]);
        for v in 0..n {
            let nbrs = host.neighbors(v as u32);
            deg[v] = nbrs.len() as u32;
            adj[v * w..v * w + nbrs.len()].copy_from_slice(nbrs);
            if let (Some(out), Some(ws)) = (wts.as_mut(), host.neighbor_weights(v as u32)) {
                out[v * w..v * w + nbrs.len()].copy_from_slice(ws);
            }
        }
        let d_deg = queue.malloc_device::<u32>(n.max(1))?;
        d_deg.copy_from_slice(&deg);
        let d_adj = queue.malloc_device::<u32>((n * w).max(1))?;
        d_adj.copy_from_slice(&adj);
        let d_w = match wts {
            Some(ws) => {
                let b = queue.malloc_device::<f32>((n * w).max(1))?;
                b.copy_from_slice(&ws);
                Some(b)
            }
            None => None,
        };
        Ok(EllGraph {
            n,
            m,
            width,
            deg: d_deg,
            adj: d_adj,
            weights: d_w,
            degrees: deg,
        })
    }

    /// Device bytes including padding — ELL's memory trade-off.
    pub fn device_bytes(&self) -> u64 {
        self.deg.bytes() + self.adj.bytes() + self.weights.as_ref().map_or(0, |b| b.bytes())
    }

    /// Padded row width (the maximum out-degree).
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl DeviceGraphView for EllGraph {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn edge_count(&self) -> usize {
        self.m
    }

    /// ELL row bounds are arithmetic plus a single degree load — half the
    /// transactions of CSR's two offset loads. This is exactly the kind
    /// of representation-specific access pattern the trait lets a custom
    /// format express.
    fn row_bounds_uniform(&self, sg: &mut SubgroupCtx<'_, '_>, v: VertexId) -> (u32, u32) {
        let deg = sg.load_uniform(&self.deg, v as usize);
        let start = v * self.width;
        (start, start + deg)
    }

    fn row_bounds(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> (u32, u32) {
        let deg = lane.load(&self.deg, v as usize);
        let start = v * self.width;
        (start, start + deg)
    }

    fn edge_dest(&self, lane: &mut ItemCtx<'_>, e: u32) -> VertexId {
        lane.load(&self.adj, e as usize)
    }

    fn edge_weight(&self, lane: &mut ItemCtx<'_>, e: u32) -> Weight {
        match &self.weights {
            Some(ws) => lane.load(ws, e as usize),
            None => 1.0,
        }
    }

    fn out_degree_host(&self, v: VertexId) -> u32 {
        self.degrees[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{Frontier, TwoLayerFrontier};
    use crate::inspector::{inspect, OptConfig};
    use crate::operators::advance;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn sample() -> CsrHost {
        CsrHost::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 7),
                (2, 7),
                (7, 0),
            ],
        )
    }

    #[test]
    fn row_bounds_cover_all_edges() {
        let q = queue();
        let g = EllGraph::upload(&q, &sample()).unwrap();
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.width(), 6);
        let total = q.malloc_device::<u32>(1).unwrap();
        q.parallel_for("deg", 8, |l, v| {
            let (lo, hi) = g.row_bounds(l, v as u32);
            l.fetch_add(&total, 0, hi - lo);
        });
        assert_eq!(total.load(0), 9);
    }

    #[test]
    fn edge_dest_matches_csr_per_vertex() {
        let q = queue();
        let h = sample();
        let g = EllGraph::upload(&q, &h).unwrap();
        for v in 0..8u32 {
            let want: Vec<u32> = h.neighbors(v).to_vec();
            let got_buf = q.malloc_device::<u32>(want.len().max(1)).unwrap();
            q.parallel_for("collect", 1, |l, _| {
                let (lo, hi) = g.row_bounds(l, v);
                for (k, e) in (lo..hi).enumerate() {
                    let d = g.edge_dest(l, e);
                    l.store(&got_buf, k, d);
                }
            });
            let mut got = got_buf.to_vec()[..want.len()].to_vec();
            got.sort_unstable();
            assert_eq!(got, want, "vertex {v}");
        }
    }

    #[test]
    fn advance_runs_unchanged_on_custom_representation() {
        let q = queue();
        let g = EllGraph::upload(&q, &sample()).unwrap();
        let t = inspect(q.profile(), &OptConfig::all(), 8);
        let fin = TwoLayerFrontier::<u32>::new(&q, 8).unwrap();
        let fout = TwoLayerFrontier::<u32>::new(&q, 8).unwrap();
        fin.insert_host(0);
        advance::Advance::new(&q, &g, &fin)
            .output(&fout)
            .tuning(&t)
            .run(|_l, _u, _v, _e, _w| true);
        assert_eq!(fout.to_sorted_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn weighted_rows() {
        let q = queue();
        let h = CsrHost::from_edges_weighted(3, &[(0, 1), (0, 2), (1, 2)], Some(&[1.0, 2.0, 4.0]));
        let g = EllGraph::upload(&q, &h).unwrap();
        let sum = q.malloc_device::<f32>(1).unwrap();
        q.parallel_for("wsum", 3, |l, v| {
            let (lo, hi) = g.row_bounds(l, v as u32);
            for e in lo..hi {
                let w = g.edge_weight(l, e);
                l.fetch_add_f32(&sum, 0, w);
            }
        });
        assert_eq!(sum.load(0), 7.0);
    }

    #[test]
    fn padding_explodes_on_scale_free_but_not_road_shapes() {
        let q = queue();
        // near-uniform degrees: padding is mild
        let road = CsrHost::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g_road = EllGraph::upload(&q, &road).unwrap();
        assert_eq!(g_road.width(), 1);
        // one hub: every row pays the hub's width
        let star_edges: Vec<(u32, u32)> = (1..64).map(|v| (0, v)).collect();
        let star = CsrHost::from_edges(64, &star_edges);
        let g_star = EllGraph::upload(&q, &star).unwrap();
        assert_eq!(g_star.width(), 63);
        let padded = g_star.adj.len();
        assert_eq!(padded, 64 * 63, "63 edges stored in 4032 slots");
    }
}
