//! Host-side CSR graph: construction, transposition and statistics.
//!
//! Host graphs are built from edge lists (possibly via `sygraph-io`
//! readers or `sygraph-gen` generators) and uploaded to a device with
//! [`crate::graph::device::DeviceCsr::upload`].

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::types::{VertexId, Weight};

/// Compressed Sparse Row graph on the host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrHost {
    /// Row offsets, `n + 1` entries.
    pub offsets: Vec<u32>,
    /// Column indices (destinations), `m` entries.
    pub indices: Vec<VertexId>,
    /// Optional edge weights, `m` entries when present.
    pub weights: Option<Vec<Weight>>,
}

impl CsrHost {
    /// Builds a CSR from a directed edge list over `n` vertices.
    /// Edges keep their input multiplicity; neighbor lists are sorted.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Self::from_edges_weighted(n, edges, None)
    }

    /// Builds a weighted CSR; `weights`, when given, must parallel `edges`.
    pub fn from_edges_weighted(
        n: usize,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[Weight]>,
    ) -> Self {
        if let Some(w) = weights {
            assert_eq!(w.len(), edges.len(), "one weight per edge");
        }
        let mut degree = vec![0u32; n];
        for &(u, _) in edges {
            degree[u as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let m = edges.len();
        let mut indices = vec![0u32; m];
        let mut wout = weights.map(|_| vec![0f32; m]);
        let mut cursor = offsets.clone();
        for (i, &(u, v)) in edges.iter().enumerate() {
            assert!((v as usize) < n, "edge target {v} out of range (n={n})");
            let slot = cursor[u as usize] as usize;
            cursor[u as usize] += 1;
            indices[slot] = v;
            if let (Some(out), Some(w)) = (wout.as_mut(), weights) {
                out[slot] = w[i];
            }
        }
        let mut g = CsrHost {
            offsets,
            indices,
            weights: wout,
        };
        g.sort_neighbors();
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.indices.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v` as a slice.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.indices[lo..hi]
    }

    /// Weights of `v`'s out-edges (parallel to [`CsrHost::neighbors`]),
    /// or `None` for unweighted graphs.
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights.as_ref().map(|w| {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            &w[lo..hi]
        })
    }

    /// Sorts each neighbor list (weights permuted alongside).
    pub fn sort_neighbors(&mut self) {
        let n = self.vertex_count();
        match self.weights.as_mut() {
            None => {
                let offsets = &self.offsets;
                let indices = std::mem::take(&mut self.indices);
                let mut chunks: Vec<&mut [u32]> = Vec::with_capacity(n);
                let mut rest = indices;
                // Split the indices into per-vertex chunks and sort them in
                // parallel.
                let mut parts = Vec::with_capacity(n);
                let mut prev = 0usize;
                for v in 0..n {
                    let hi = offsets[v + 1] as usize;
                    parts.push((prev, hi));
                    prev = hi;
                }
                {
                    let mut whole: &mut [u32] = &mut rest;
                    for &(lo, hi) in &parts {
                        let (head, tail) = whole.split_at_mut(hi - lo);
                        chunks.push(head);
                        whole = tail;
                    }
                }
                chunks.par_iter_mut().for_each(|c| c.sort_unstable());
                self.indices = rest;
            }
            Some(w) => {
                // Weighted: sort index/weight pairs per vertex.
                for v in 0..n {
                    let lo = self.offsets[v] as usize;
                    let hi = self.offsets[v + 1] as usize;
                    let mut pairs: Vec<(u32, f32)> = self.indices[lo..hi]
                        .iter()
                        .copied()
                        .zip(w[lo..hi].iter().copied())
                        .collect();
                    pairs.sort_by_key(|p| p.0);
                    for (k, (d, wt)) in pairs.into_iter().enumerate() {
                        self.indices[lo + k] = d;
                        w[lo + k] = wt;
                    }
                }
            }
        }
    }

    /// Transpose (reverse all edges): CSR of the reversed graph, i.e. the
    /// CSC of this one.
    pub fn transpose(&self) -> CsrHost {
        let n = self.vertex_count();
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| self.neighbors(u).iter().map(move |&v| (v, u)))
            .collect();
        let weights: Option<Vec<f32>> = self.weights.as_ref().map(|_| {
            (0..n as u32)
                .flat_map(|u| self.neighbor_weights(u).unwrap().iter().copied())
                .collect()
        });
        CsrHost::from_edges_weighted(n, &edges, weights.as_deref())
    }

    /// Adds the reverse of every edge (weights duplicated), producing an
    /// undirected (symmetric) graph. Does not deduplicate.
    pub fn to_undirected(&self) -> CsrHost {
        let n = self.vertex_count();
        let mut edges = Vec::with_capacity(self.edge_count() * 2);
        let mut weights = self.weights.as_ref().map(|_| Vec::new());
        for u in 0..n as u32 {
            for (k, &v) in self.neighbors(u).iter().enumerate() {
                edges.push((u, v));
                edges.push((v, u));
                if let Some(w) = weights.as_mut() {
                    let wt = self.neighbor_weights(u).unwrap()[k];
                    w.push(wt);
                    w.push(wt);
                }
            }
        }
        CsrHost::from_edges_weighted(n, &edges, weights.as_deref())
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.vertex_count() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Structural validation; used by tests and the IO layer.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.vertex_count();
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if *self.offsets.last().unwrap() as usize != self.indices.len() {
            return Err("last offset must equal edge count".into());
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets not monotone at vertex {v}"));
            }
        }
        if let Some(&bad) = self.indices.iter().find(|&&d| d as usize >= n) {
            return Err(format!("edge destination {bad} out of range"));
        }
        if let Some(w) = &self.weights {
            if w.len() != self.indices.len() {
                return Err("weight count != edge count".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrHost {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrHost::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn builds_and_indexes() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_are_sorted_even_from_shuffled_input() {
        let g = CsrHost::from_edges(5, &[(0, 4), (0, 1), (0, 3), (0, 2)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn weighted_build_keeps_weight_edge_pairing() {
        let g =
            CsrHost::from_edges_weighted(3, &[(0, 2), (0, 1), (1, 2)], Some(&[20.0, 10.0, 12.0]));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor_weights(0).unwrap(), &[10.0, 20.0]);
        assert_eq!(g.neighbor_weights(1).unwrap(), &[12.0]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.edge_count(), g.edge_count());
        // transposing twice is the identity (up to sort order)
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn weighted_transpose_carries_weights() {
        let g = CsrHost::from_edges_weighted(3, &[(0, 1), (2, 1)], Some(&[5.0, 7.0]));
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbor_weights(1).unwrap(), &[5.0, 7.0]);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = diamond().to_undirected();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn degree_statistics() {
        let g = diamond();
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_edges_are_kept() {
        let g = CsrHost::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut g = diamond();
        g.indices[0] = 99;
        assert!(g.validate().is_err());
        let mut g2 = diamond();
        g2.offsets[1] = 100;
        assert!(g2.validate().is_err());
    }

    #[test]
    fn empty_graph() {
        let g = CsrHost::from_edges(0, &[]);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }
}
