//! Host-side CSR graph: construction, transposition and statistics.
//!
//! Host graphs are built from edge lists (possibly via `sygraph-io`
//! readers or `sygraph-gen` generators) and uploaded to a device with
//! [`crate::graph::device::DeviceCsr::upload`].

use std::fmt;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::types::{VertexId, Weight};

/// Structural defects a [`CsrHost`] can arrive with. Every accessor that
/// used to `unwrap()`/index-panic on a malformed graph now routes through
/// these, so an untrusted upload is a typed error (a service 4xx), not a
/// process abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `offsets` is empty — there is no valid CSR with zero offset rows
    /// (an empty graph still has the single `[0]` sentinel).
    EmptyOffsets,
    /// `offsets[0]` must be 0.
    BadFirstOffset { first: u32 },
    /// `offsets` decreases at `vertex`.
    NonMonotoneOffsets { vertex: usize },
    /// The last offset must equal the number of stored edges.
    EdgeCountMismatch { last_offset: u32, edges: usize },
    /// An edge points at a vertex outside `0..n`.
    EdgeTargetOutOfRange { target: VertexId, n: usize },
    /// An edge originates from a vertex outside `0..n`.
    EdgeSourceOutOfRange { source: VertexId, n: usize },
    /// The weight array does not parallel the edge array.
    WeightCountMismatch { weights: usize, edges: usize },
    /// A weight array was promised but not provided (or vice versa).
    WeightArityMismatch,
    /// A request named a source vertex outside `0..n`. This is the
    /// request-boundary error shared by the CLI and the service.
    SourceOutOfRange { source: VertexId, n: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyOffsets => write!(f, "offsets array is empty (need n+1 entries)"),
            GraphError::BadFirstOffset { first } => {
                write!(f, "offsets must start at 0, got {first}")
            }
            GraphError::NonMonotoneOffsets { vertex } => {
                write!(f, "offsets not monotone at vertex {vertex}")
            }
            GraphError::EdgeCountMismatch { last_offset, edges } => {
                write!(f, "last offset {last_offset} must equal edge count {edges}")
            }
            GraphError::EdgeTargetOutOfRange { target, n } => {
                write!(f, "edge target {target} out of range (n={n})")
            }
            GraphError::EdgeSourceOutOfRange { source, n } => {
                write!(f, "edge source {source} out of range (n={n})")
            }
            GraphError::WeightCountMismatch { weights, edges } => {
                write!(f, "weight count {weights} != edge count {edges}")
            }
            GraphError::WeightArityMismatch => write!(f, "one weight per edge required"),
            GraphError::SourceOutOfRange { source, n } => {
                write!(f, "source vertex {source} out of range (n={n})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<GraphError> for sygraph_sim::SimError {
    fn from(e: GraphError) -> Self {
        sygraph_sim::SimError::InvalidInput(e.to_string())
    }
}

/// Bounds-checks request-boundary source vertex ids against a graph of
/// `n` vertices. Shared by the CLI argument parser and the service's job
/// admission, so an out-of-range `--src`/`source` is rejected *before* it
/// can wrap or panic deep inside the engine.
pub fn validate_sources(n: usize, sources: &[VertexId]) -> Result<(), GraphError> {
    match sources.iter().find(|&&s| s as usize >= n) {
        Some(&s) => Err(GraphError::SourceOutOfRange { source: s, n }),
        None => Ok(()),
    }
}

/// Compressed Sparse Row graph on the host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrHost {
    /// Row offsets, `n + 1` entries.
    pub offsets: Vec<u32>,
    /// Column indices (destinations), `m` entries.
    pub indices: Vec<VertexId>,
    /// Optional edge weights, `m` entries when present.
    pub weights: Option<Vec<Weight>>,
}

impl CsrHost {
    /// Builds a CSR from a directed edge list over `n` vertices.
    /// Edges keep their input multiplicity; neighbor lists are sorted.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        Self::from_edges_weighted(n, edges, None)
    }

    /// Builds a weighted CSR; `weights`, when given, must parallel `edges`.
    /// Panics on out-of-range endpoints — trusted (generator/test) inputs
    /// only. Untrusted edge lists go through
    /// [`CsrHost::try_from_edges_weighted`].
    pub fn from_edges_weighted(
        n: usize,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[Weight]>,
    ) -> Self {
        match Self::try_from_edges_weighted(n, edges, weights) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible CSR construction for untrusted edge lists: out-of-range
    /// endpoints and weight-arity mismatches become typed [`GraphError`]s
    /// instead of index panics.
    pub fn try_from_edges_weighted(
        n: usize,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[Weight]>,
    ) -> Result<Self, GraphError> {
        if let Some(w) = weights {
            if w.len() != edges.len() {
                return Err(GraphError::WeightCountMismatch {
                    weights: w.len(),
                    edges: edges.len(),
                });
            }
        }
        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::EdgeSourceOutOfRange { source: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::EdgeTargetOutOfRange { target: v, n });
            }
            degree[u as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let m = edges.len();
        let mut indices = vec![0u32; m];
        let mut wout = weights.map(|_| vec![0f32; m]);
        let mut cursor = offsets.clone();
        for (i, &(u, v)) in edges.iter().enumerate() {
            let slot = cursor[u as usize] as usize;
            cursor[u as usize] += 1;
            indices[slot] = v;
            if let (Some(out), Some(w)) = (wout.as_mut(), weights) {
                out[slot] = w[i];
            }
        }
        let mut g = CsrHost {
            offsets,
            indices,
            weights: wout,
        };
        g.sort_neighbors();
        Ok(g)
    }

    /// Number of vertices. Saturates at 0 for a malformed graph with an
    /// empty offsets array (which [`CsrHost::validate`] reports as
    /// [`GraphError::EmptyOffsets`]) instead of underflowing.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.indices.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v` as a slice.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.indices[lo..hi]
    }

    /// Weights of `v`'s out-edges (parallel to [`CsrHost::neighbors`]),
    /// or `None` for unweighted graphs.
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights.as_ref().map(|w| {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            &w[lo..hi]
        })
    }

    /// Sorts each neighbor list (weights permuted alongside).
    pub fn sort_neighbors(&mut self) {
        let n = self.vertex_count();
        match self.weights.as_mut() {
            None => {
                let offsets = &self.offsets;
                let indices = std::mem::take(&mut self.indices);
                let mut chunks: Vec<&mut [u32]> = Vec::with_capacity(n);
                let mut rest = indices;
                // Split the indices into per-vertex chunks and sort them in
                // parallel.
                let mut parts = Vec::with_capacity(n);
                let mut prev = 0usize;
                for v in 0..n {
                    let hi = offsets[v + 1] as usize;
                    parts.push((prev, hi));
                    prev = hi;
                }
                {
                    let mut whole: &mut [u32] = &mut rest;
                    for &(lo, hi) in &parts {
                        let (head, tail) = whole.split_at_mut(hi - lo);
                        chunks.push(head);
                        whole = tail;
                    }
                }
                chunks.par_iter_mut().for_each(|c| c.sort_unstable());
                self.indices = rest;
            }
            Some(w) => {
                // Weighted: sort index/weight pairs per vertex.
                for v in 0..n {
                    let lo = self.offsets[v] as usize;
                    let hi = self.offsets[v + 1] as usize;
                    let mut pairs: Vec<(u32, f32)> = self.indices[lo..hi]
                        .iter()
                        .copied()
                        .zip(w[lo..hi].iter().copied())
                        .collect();
                    pairs.sort_by_key(|p| p.0);
                    for (k, (d, wt)) in pairs.into_iter().enumerate() {
                        self.indices[lo + k] = d;
                        w[lo + k] = wt;
                    }
                }
            }
        }
    }

    /// Transpose (reverse all edges): CSR of the reversed graph, i.e. the
    /// CSC of this one. A structurally invalid graph (truncated weights,
    /// bad offsets) is a typed [`GraphError`], not a slice panic.
    pub fn transpose(&self) -> Result<CsrHost, GraphError> {
        self.validate()?;
        let n = self.vertex_count();
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| self.neighbors(u).iter().map(move |&v| (v, u)))
            .collect();
        let weights: Option<Vec<f32>> = self.weights.as_ref().map(|w| {
            (0..n as u32)
                .flat_map(|u| self.weight_range(u, w))
                .collect()
        });
        CsrHost::try_from_edges_weighted(n, &edges, weights.as_deref())
    }

    /// Adds the reverse of every edge (weights duplicated), producing an
    /// undirected (symmetric) graph. Does not deduplicate. Malformed
    /// inputs are typed [`GraphError`]s, as for [`CsrHost::transpose`].
    pub fn to_undirected(&self) -> Result<CsrHost, GraphError> {
        self.validate()?;
        let n = self.vertex_count();
        let mut edges = Vec::with_capacity(self.edge_count() * 2);
        let mut weights = self.weights.as_ref().map(|_| Vec::new());
        for u in 0..n as u32 {
            for (k, &v) in self.neighbors(u).iter().enumerate() {
                edges.push((u, v));
                edges.push((v, u));
                if let (Some(out), Some(w)) = (weights.as_mut(), self.weights.as_ref()) {
                    let wt = w[self.offsets[u as usize] as usize + k];
                    out.push(wt);
                    out.push(wt);
                }
            }
        }
        CsrHost::try_from_edges_weighted(n, &edges, weights.as_deref())
    }

    /// `v`'s weight slice out of an already-length-checked weight array
    /// (validate() has run; bounds hold by construction).
    fn weight_range(&self, v: VertexId, w: &[Weight]) -> Vec<Weight> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        w[lo..hi].to_vec()
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.vertex_count() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Structural validation; used by tests, the IO layer and the service
    /// upload boundary. Total: every malformed shape (including an empty
    /// offsets array, which the old `offsets.last().unwrap()` check died
    /// on) is a typed [`GraphError`], never a panic.
    pub fn validate(&self) -> Result<(), GraphError> {
        let (first, last) = match (self.offsets.first(), self.offsets.last()) {
            (Some(&f), Some(&l)) => (f, l),
            _ => return Err(GraphError::EmptyOffsets),
        };
        let n = self.vertex_count();
        if first != 0 {
            return Err(GraphError::BadFirstOffset { first });
        }
        if last as usize != self.indices.len() {
            return Err(GraphError::EdgeCountMismatch {
                last_offset: last,
                edges: self.indices.len(),
            });
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(GraphError::NonMonotoneOffsets { vertex: v });
            }
        }
        if let Some(&bad) = self.indices.iter().find(|&&d| d as usize >= n) {
            return Err(GraphError::EdgeTargetOutOfRange { target: bad, n });
        }
        if let Some(w) = &self.weights {
            if w.len() != self.indices.len() {
                return Err(GraphError::WeightCountMismatch {
                    weights: w.len(),
                    edges: self.indices.len(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrHost {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrHost::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn builds_and_indexes() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_are_sorted_even_from_shuffled_input() {
        let g = CsrHost::from_edges(5, &[(0, 4), (0, 1), (0, 3), (0, 2)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn weighted_build_keeps_weight_edge_pairing() {
        let g =
            CsrHost::from_edges_weighted(3, &[(0, 2), (0, 1), (1, 2)], Some(&[20.0, 10.0, 12.0]));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor_weights(0).unwrap(), &[10.0, 20.0]);
        assert_eq!(g.neighbor_weights(1).unwrap(), &[12.0]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose().unwrap();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.edge_count(), g.edge_count());
        // transposing twice is the identity (up to sort order)
        assert_eq!(t.transpose().unwrap(), g);
    }

    #[test]
    fn weighted_transpose_carries_weights() {
        let g = CsrHost::from_edges_weighted(3, &[(0, 1), (2, 1)], Some(&[5.0, 7.0]));
        let t = g.transpose().unwrap();
        assert_eq!(t.neighbors(1), &[0, 2]);
        assert_eq!(t.neighbor_weights(1).unwrap(), &[5.0, 7.0]);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = diamond().to_undirected().unwrap();
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn degree_statistics() {
        let g = diamond();
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_edges_are_kept() {
        let g = CsrHost::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut g = diamond();
        g.indices[0] = 99;
        assert!(matches!(
            g.validate(),
            Err(GraphError::EdgeTargetOutOfRange { target: 99, .. })
        ));
        let mut g2 = diamond();
        g2.offsets[1] = 100;
        assert!(g2.validate().is_err());
    }

    #[test]
    fn malformed_graphs_are_typed_errors_not_panics() {
        // Empty offsets: the old `offsets.last().unwrap()` panic path.
        let g = CsrHost {
            offsets: vec![],
            indices: vec![0],
            weights: None,
        };
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.validate(), Err(GraphError::EmptyOffsets));
        assert!(g.transpose().is_err());
        assert!(g.to_undirected().is_err());

        // Truncated weights: the old slice-panic path in transpose().
        let g = CsrHost {
            offsets: vec![0, 2],
            indices: vec![0, 0],
            weights: Some(vec![1.0]),
        };
        assert_eq!(
            g.validate(),
            Err(GraphError::WeightCountMismatch {
                weights: 1,
                edges: 2
            })
        );
        assert!(matches!(
            g.transpose(),
            Err(GraphError::WeightCountMismatch { .. })
        ));

        // Non-zero first offset.
        let g = CsrHost {
            offsets: vec![3, 3],
            indices: vec![],
            weights: None,
        };
        assert_eq!(g.validate(), Err(GraphError::BadFirstOffset { first: 3 }));
    }

    #[test]
    fn try_from_edges_rejects_out_of_range_endpoints() {
        assert!(matches!(
            CsrHost::try_from_edges_weighted(2, &[(5, 0)], None),
            Err(GraphError::EdgeSourceOutOfRange { source: 5, n: 2 })
        ));
        assert!(matches!(
            CsrHost::try_from_edges_weighted(2, &[(0, 9)], None),
            Err(GraphError::EdgeTargetOutOfRange { target: 9, n: 2 })
        ));
        assert!(matches!(
            CsrHost::try_from_edges_weighted(2, &[(0, 1)], Some(&[1.0, 2.0])),
            Err(GraphError::WeightCountMismatch { .. })
        ));
    }

    #[test]
    fn validate_sources_shared_boundary_check() {
        assert!(validate_sources(4, &[0, 3]).is_ok());
        assert_eq!(
            validate_sources(4, &[0, 4]),
            Err(GraphError::SourceOutOfRange { source: 4, n: 4 })
        );
        let sim: sygraph_sim::SimError = validate_sources(4, &[9]).unwrap_err().into();
        assert!(matches!(sim, sygraph_sim::SimError::InvalidInput(_)));
    }

    #[test]
    fn empty_graph() {
        let g = CsrHost::from_edges(0, &[]);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }
}
