//! Edge-cut graph partitioning for multi-device execution.
//!
//! A [`PartitionSpec`] assigns every vertex an *owner* partition; each
//! edge lives on its source's owner (1-D edge-cut by source, the layout
//! Gunrock's multi-GPU work and Pregel-style systems share). Each
//! partition materializes a *local* CSR over a compact local ID space:
//!
//! ```text
//! local id      0 .. k            owned vertices (ascending global id)
//! local id      k .. k + h        halo vertices: remote destinations
//!                                 reachable from this shard's edges
//! ```
//!
//! Halo rows have no out-edges locally — they exist so the shard's
//! advance can set destination bits (and stamp value *replicas*) without
//! ever dereferencing another device's memory. At each superstep boundary
//! the halo region of the output frontier is harvested and shipped to the
//! owners (see [`crate::frontier::exchange::FrontierExchange`]).
//!
//! Invariants (property-tested in `tests/partition_properties.rs`):
//! - every edge of the input graph lands in exactly one partition;
//! - local↔global ID maps round-trip on both owned and halo ranges;
//! - a partition's halo set is exactly the set of cross-partition
//!   destinations of its edges, deduplicated and sorted by global ID.

use crate::graph::host::CsrHost;
use crate::types::VertexId;

/// How vertices are assigned to partitions. Both schemes are
/// deterministic functions of `(vertex, parts)` — partitioning twice
/// yields byte-identical shards, which the checkpoint/resume path and
/// the property tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Multiplicative-hash owner: scatters neighbouring IDs, balancing
    /// edge counts on skewed graphs at the price of more halo traffic.
    Hash,
    /// Contiguous ranges of `ceil(n / parts)` vertices: preserves the
    /// locality of generator orderings (road grids, web crawls), so
    /// fewer edges cross partitions but hubs can skew the load.
    Range,
}

impl PartitionSpec {
    /// Parses the CLI spelling (`hash` | `range`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(PartitionSpec::Hash),
            "range" => Some(PartitionSpec::Range),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            PartitionSpec::Hash => "hash",
            PartitionSpec::Range => "range",
        }
    }

    /// Owner partition of global vertex `v` among `parts` partitions.
    #[inline]
    pub fn owner(&self, v: VertexId, parts: u32, n: usize) -> u32 {
        debug_assert!(parts > 0);
        match self {
            // Fibonacci hashing: full-period multiplicative scatter.
            PartitionSpec::Hash => {
                (((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % parts as u64) as u32
            }
            PartitionSpec::Range => {
                let span = n.div_ceil(parts as usize).max(1);
                ((v as usize / span) as u32).min(parts - 1)
            }
        }
    }
}

/// A remote destination appearing in some shard's edge list: where it
/// lives and what the owner calls it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloEntry {
    /// Global vertex ID.
    pub global: VertexId,
    /// Owning partition.
    pub owner: u32,
    /// Local ID *on the owner* (always in the owner's owned range).
    pub owner_local: u32,
}

/// One partition's shard: a local CSR plus the ID maps tying it back to
/// the global vertex space.
pub struct DevicePartition {
    /// Partition index.
    pub id: u32,
    /// Owned-vertex count `k`: local IDs `0..k`.
    pub owned: u32,
    /// Local→global map for the whole local space (`owned + halo` long;
    /// the owned prefix is ascending by global ID, as is the halo tail).
    pub local_to_global: Vec<VertexId>,
    /// Halo table, indexed by `local_id - owned`.
    pub halo: Vec<HaloEntry>,
    /// The shard: `owned + halo` rows, halo rows empty, destinations
    /// renumbered into the local space. Weights carried through.
    pub local_graph: CsrHost,
}

impl DevicePartition {
    /// Total local vertices (owned + halo).
    pub fn local_len(&self) -> usize {
        self.owned as usize + self.halo.len()
    }

    /// Global ID of local vertex `lid`.
    #[inline]
    pub fn global_of(&self, lid: u32) -> VertexId {
        self.local_to_global[lid as usize]
    }

    /// Whether `lid` falls in the halo tail.
    #[inline]
    pub fn is_halo(&self, lid: u32) -> bool {
        lid >= self.owned
    }
}

/// The partitioned graph: every shard plus the global owner/local maps.
pub struct PartitionedGraph {
    /// Global vertex count.
    pub n: usize,
    /// Global edge count (sum of shard edge counts — the edge-cut keeps
    /// every edge exactly once).
    pub m: usize,
    pub spec: PartitionSpec,
    pub parts: Vec<DevicePartition>,
    /// Owner partition per global vertex.
    owner: Vec<u32>,
    /// Local ID *on the owner* per global vertex.
    owner_local: Vec<u32>,
}

impl PartitionedGraph {
    /// Shards `host` into `parts` partitions under `spec`.
    pub fn build(host: &CsrHost, spec: PartitionSpec, parts: u32) -> Self {
        assert!(parts > 0, "need at least one partition");
        let n = host.vertex_count();

        // Pass 1: owners and per-owner compact local IDs (ascending
        // global order within each partition — both specs assign
        // monotonically under Range, and sorting by global ID keeps Hash
        // deterministic too since we scan vertices in order).
        let owner: Vec<u32> = (0..n as u32).map(|v| spec.owner(v, parts, n)).collect();
        let mut owner_local = vec![0u32; n];
        let mut owned_count = vec![0u32; parts as usize];
        for v in 0..n {
            let p = owner[v] as usize;
            owner_local[v] = owned_count[p];
            owned_count[p] += 1;
        }

        // Pass 2: per-partition halo discovery — the deduplicated,
        // globally-sorted set of remote destinations in the shard's edges.
        let mut halo_globals: Vec<Vec<VertexId>> = vec![Vec::new(); parts as usize];
        let mut seen = vec![u32::MAX; n]; // seen[v] = partition that last recorded v as halo
        for u in 0..n as u32 {
            let p = owner[u as usize];
            for &v in host.neighbors(u) {
                let q = owner[v as usize];
                if q != p && seen[v as usize] != p {
                    seen[v as usize] = p;
                    halo_globals[p as usize].push(v);
                }
            }
        }
        // `seen` dedups per source partition only while that partition's
        // sources are contiguous — true for Range, not for Hash — so
        // finish with an explicit sort+dedup (also yields the sorted
        // halo-tail order the exchange tables assume).
        for h in &mut halo_globals {
            h.sort_unstable();
            h.dedup();
        }

        // Pass 3: local ID spaces and shard edge lists.
        let mut partitions = Vec::with_capacity(parts as usize);
        for p in 0..parts {
            let k = owned_count[p as usize];
            let halo_g = &halo_globals[p as usize];
            let mut local_to_global = Vec::with_capacity(k as usize + halo_g.len());
            local_to_global.extend((0..n as u32).filter(|&v| owner[v as usize] == p));
            debug_assert_eq!(local_to_global.len(), k as usize);
            local_to_global.extend_from_slice(halo_g);

            // Global→local for this shard: owned vertices resolve through
            // `owner_local`; halo destinations through a local lookup.
            let mut halo_local = std::collections::HashMap::with_capacity(halo_g.len());
            for (i, &g) in halo_g.iter().enumerate() {
                halo_local.insert(g, k + i as u32);
            }
            let local_of = |v: VertexId| -> u32 {
                if owner[v as usize] == p {
                    owner_local[v as usize]
                } else {
                    halo_local[&v]
                }
            };

            let weighted = host.weights.is_some();
            let mut edges = Vec::new();
            let mut weights = if weighted { Some(Vec::new()) } else { None };
            for (lu, &gu) in local_to_global[..k as usize].iter().enumerate() {
                let nbrs = host.neighbors(gu);
                let ws = host.neighbor_weights(gu);
                for (j, &gv) in nbrs.iter().enumerate() {
                    edges.push((lu as u32, local_of(gv)));
                    if let (Some(acc), Some(ws)) = (weights.as_mut(), ws) {
                        acc.push(ws[j]);
                    }
                }
            }
            let rows = k as usize + halo_g.len();
            let local_graph = match &weights {
                Some(w) => CsrHost::from_edges_weighted(rows, &edges, Some(w)),
                None => CsrHost::from_edges(rows, &edges),
            };

            let halo = halo_g
                .iter()
                .map(|&g| HaloEntry {
                    global: g,
                    owner: owner[g as usize],
                    owner_local: owner_local[g as usize],
                })
                .collect();

            partitions.push(DevicePartition {
                id: p,
                owned: k,
                local_to_global,
                halo,
                local_graph,
            });
        }

        let m = partitions.iter().map(|p| p.local_graph.edge_count()).sum();
        PartitionedGraph {
            n,
            m,
            spec,
            parts: partitions,
            owner,
            owner_local,
        }
    }

    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Owner partition of global vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> u32 {
        self.owner[v as usize]
    }

    /// Local ID of global vertex `v` on its owner.
    #[inline]
    pub fn owner_local_of(&self, v: VertexId) -> u32 {
        self.owner_local[v as usize]
    }

    /// Gathers a global per-vertex result from per-partition local
    /// buffers (each `locals[p]` at least `parts[p].local_len()` long):
    /// the owner's entry is authoritative, halo replicas are ignored.
    pub fn gather<T: Copy>(&self, locals: &[Vec<T>]) -> Vec<T> {
        assert_eq!(locals.len(), self.parts.len());
        (0..self.n as u32)
            .map(|v| locals[self.owner[v as usize] as usize][self.owner_local[v as usize] as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrHost {
        // 0 -> {1,2}, 1 -> 3, 2 -> 3, 3 -> 0 (a cycle through a diamond)
        CsrHost::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn single_partition_is_the_identity() {
        let host = diamond();
        let pg = PartitionedGraph::build(&host, PartitionSpec::Hash, 1);
        assert_eq!(pg.part_count(), 1);
        let p = &pg.parts[0];
        assert_eq!(p.owned, 4);
        assert!(p.halo.is_empty());
        assert_eq!(p.local_graph.offsets, host.offsets);
        assert_eq!(p.local_graph.indices, host.indices);
    }

    #[test]
    fn range_split_produces_exact_halos() {
        let host = diamond();
        let pg = PartitionedGraph::build(&host, PartitionSpec::Range, 2);
        // Range over 4 vertices: p0 owns {0,1}, p1 owns {2,3}.
        assert_eq!(pg.owner_of(0), 0);
        assert_eq!(pg.owner_of(3), 1);
        let p0 = &pg.parts[0];
        // p0's edges: 0->1 (local), 0->2 (halo), 1->3 (halo).
        assert_eq!(p0.local_graph.edge_count(), 3);
        let halos: Vec<u32> = p0.halo.iter().map(|h| h.global).collect();
        assert_eq!(halos, vec![2, 3]);
        for h in &p0.halo {
            assert_eq!(h.owner, 1);
            assert_eq!(pg.parts[1].global_of(h.owner_local), h.global);
        }
        let p1 = &pg.parts[1];
        // p1's edges: 2->3 (local), 3->0 (halo).
        assert_eq!(p1.local_graph.edge_count(), 2);
        assert_eq!(p1.halo.len(), 1);
        assert_eq!(p1.halo[0].global, 0);
        // Every edge exactly once.
        assert_eq!(pg.m, host.edge_count());
    }

    #[test]
    fn hash_owner_is_deterministic_and_in_range() {
        for parts in [1u32, 2, 3, 8] {
            for v in 0..100u32 {
                let a = PartitionSpec::Hash.owner(v, parts, 100);
                let b = PartitionSpec::Hash.owner(v, parts, 100);
                assert_eq!(a, b);
                assert!(a < parts);
            }
        }
    }

    #[test]
    fn id_maps_round_trip() {
        let host = diamond();
        for spec in [PartitionSpec::Hash, PartitionSpec::Range] {
            let pg = PartitionedGraph::build(&host, spec, 3);
            for v in 0..4u32 {
                let p = pg.owner_of(v);
                let lid = pg.owner_local_of(v);
                assert_eq!(pg.parts[p as usize].global_of(lid), v);
                assert!(!pg.parts[p as usize].is_halo(lid));
            }
        }
    }

    #[test]
    fn gather_prefers_owner_entries() {
        let host = diamond();
        let pg = PartitionedGraph::build(&host, PartitionSpec::Range, 2);
        let locals: Vec<Vec<u32>> = pg
            .parts
            .iter()
            .map(|p| {
                (0..p.local_len() as u32)
                    // owned entries get global id, halo replicas a poison value
                    .map(|lid| {
                        if p.is_halo(lid) {
                            999
                        } else {
                            p.global_of(lid)
                        }
                    })
                    .collect()
            })
            .collect();
        assert_eq!(pg.gather(&locals), vec![0, 1, 2, 3]);
    }
}
