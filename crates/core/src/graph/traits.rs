//! The device-graph interface the primitives are written against.
//!
//! The paper lets users "define their own graph representations by
//! implementing an interface containing the necessary methods and structs
//! for the SYgraph primitives". [`DeviceGraphView`] is that interface: the
//! `advance` kernel only needs row bounds and edge lookups, each expressed
//! through the simulator's accounted access contexts so a custom
//! representation's memory behaviour is modelled exactly like the built-in
//! CSR/CSC.

use sygraph_sim::{ItemCtx, Queue, SimResult, SubgroupCtx};

use crate::inspector::DegreeProfile;
use crate::types::{VertexId, Weight};

/// A graph representation usable by the SYgraph primitives.
///
/// The pull-side (`in_*`) methods mirror the push accessors over the
/// transposed structure and power the direction-optimizing advance. They
/// have panicking defaults because the engine only reaches them after
/// [`ensure_pull`](DeviceGraphView::ensure_pull) returned `Ok(true)`;
/// representations without an in-edge view (like the plain
/// [`DeviceCsr`](crate::graph::DeviceCsr)) keep the `supports_pull() ==
/// false` default and are never asked to pull.
pub trait DeviceGraphView: Sync {
    /// Number of vertices.
    fn vertex_count(&self) -> usize;

    /// Number of directed edges.
    fn edge_count(&self) -> usize;

    /// Loads the half-open edge-index range of `v`'s out-neighborhood,
    /// uniformly across the subgroup (one broadcast transaction).
    fn row_bounds_uniform(&self, sg: &mut SubgroupCtx<'_, '_>, v: VertexId) -> (u32, u32);

    /// Loads the edge-index range of `v` from a single lane.
    fn row_bounds(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> (u32, u32);

    /// Loads the destination of edge `e` from a single lane.
    fn edge_dest(&self, lane: &mut ItemCtx<'_>, e: u32) -> VertexId;

    /// Loads the weight of edge `e` from a single lane (1.0 when the
    /// graph is unweighted — no memory transaction in that case).
    fn edge_weight(&self, lane: &mut ItemCtx<'_>, e: u32) -> Weight;

    /// Host-side out-degree (used by planners and load-balancing setup).
    fn out_degree_host(&self, v: VertexId) -> u32;

    /// Degree histogram precomputed at graph load, consulted by
    /// `Balancing::Auto`. Custom representations may return `None`, in
    /// which case `Auto` conservatively stays workgroup-mapped.
    fn degree_profile(&self) -> Option<&DegreeProfile> {
        None
    }

    /// Whether this representation can (ever) serve pull-side accessors.
    /// A cheap capability probe — must not build anything.
    fn supports_pull(&self) -> bool {
        false
    }

    /// Makes the pull view resident on the device owning `q`, building it
    /// on first call (lazy CSC upload, metered through the allocation
    /// ledger). Returns `Ok(true)` when the `in_*` accessors are ready,
    /// `Ok(false)` when this representation has no pull view, and an
    /// error (e.g. OOM) when the build failed — the engine then stays on
    /// the push path.
    fn ensure_pull(&self, _q: &Queue) -> SimResult<bool> {
        Ok(false)
    }

    /// Loads the half-open in-edge-index range of `v`, uniformly across
    /// the subgroup (one broadcast transaction).
    fn in_row_bounds_uniform(&self, _sg: &mut SubgroupCtx<'_, '_>, _v: VertexId) -> (u32, u32) {
        unreachable!("graph representation has no pull (CSC) view")
    }

    /// Loads the in-edge-index range of `v` from a single lane.
    fn in_row_bounds(&self, _lane: &mut ItemCtx<'_>, _v: VertexId) -> (u32, u32) {
        unreachable!("graph representation has no pull (CSC) view")
    }

    /// Loads the *source* endpoint of in-edge `e` (an index into the pull
    /// view's edge space, unrelated to the push view's edge ids).
    fn in_edge_src(&self, _lane: &mut ItemCtx<'_>, _e: u32) -> VertexId {
        unreachable!("graph representation has no pull (CSC) view")
    }

    /// Loads the weight of in-edge `e` (1.0 when unweighted).
    fn in_edge_weight(&self, _lane: &mut ItemCtx<'_>, _e: u32) -> Weight {
        unreachable!("graph representation has no pull (CSC) view")
    }

    /// Host-side in-degree (used by pull-side load-balancing setup).
    fn in_degree_host(&self, _v: VertexId) -> u32 {
        unreachable!("graph representation has no pull (CSC) view")
    }

    /// In-degree histogram for the pull side of `Balancing::Auto`.
    fn in_degree_profile(&self) -> Option<&DegreeProfile> {
        None
    }
}
