//! The device-graph interface the primitives are written against.
//!
//! The paper lets users "define their own graph representations by
//! implementing an interface containing the necessary methods and structs
//! for the SYgraph primitives". [`DeviceGraphView`] is that interface: the
//! `advance` kernel only needs row bounds and edge lookups, each expressed
//! through the simulator's accounted access contexts so a custom
//! representation's memory behaviour is modelled exactly like the built-in
//! CSR/CSC.

use sygraph_sim::{ItemCtx, SubgroupCtx};

use crate::inspector::DegreeProfile;
use crate::types::{VertexId, Weight};

/// A graph representation usable by the SYgraph primitives.
pub trait DeviceGraphView: Sync {
    /// Number of vertices.
    fn vertex_count(&self) -> usize;

    /// Number of directed edges.
    fn edge_count(&self) -> usize;

    /// Loads the half-open edge-index range of `v`'s out-neighborhood,
    /// uniformly across the subgroup (one broadcast transaction).
    fn row_bounds_uniform(&self, sg: &mut SubgroupCtx<'_, '_>, v: VertexId) -> (u32, u32);

    /// Loads the edge-index range of `v` from a single lane.
    fn row_bounds(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> (u32, u32);

    /// Loads the destination of edge `e` from a single lane.
    fn edge_dest(&self, lane: &mut ItemCtx<'_>, e: u32) -> VertexId;

    /// Loads the weight of edge `e` from a single lane (1.0 when the
    /// graph is unweighted — no memory transaction in that case).
    fn edge_weight(&self, lane: &mut ItemCtx<'_>, e: u32) -> Weight;

    /// Host-side out-degree (used by planners and load-balancing setup).
    fn out_degree_host(&self, v: VertexId) -> u32;

    /// Degree histogram precomputed at graph load, consulted by
    /// `Balancing::Auto`. Custom representations may return `None`, in
    /// which case `Auto` conservatively stays workgroup-mapped.
    fn degree_profile(&self) -> Option<&DegreeProfile> {
        None
    }
}
