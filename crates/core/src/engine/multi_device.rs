//! BSP execution across N simulated devices: one [`SuperstepEngine`] per
//! partition, run superstep-aligned with a frontier exchange at every
//! boundary.
//!
//! The global cycle per superstep:
//!
//! 1. **Checkpoint** (when recovery is enabled) — every partition
//!    checkpoints at the exchange boundary, so a `DeviceLost` on one
//!    device resumes *that partition's current superstep* without
//!    disturbing the others. (Resuming an older superstep would replay
//!    local work without the remote activations it had received, so
//!    boundary cadence is mandatory here, not a tuning choice.)
//! 2. **Step** — each partition runs one local superstep over its shard.
//!    Remote destinations are *halo rows*: the advance sets their bits and
//!    stamps value replicas, all in device-local memory.
//! 3. **Harvest** — the halo tail of each output frontier is word-diffed
//!    ([`FrontierExchange::harvest`]): non-zero words only, decoded to
//!    `(owner, owner_local, replica_value)` mail, then zeroed so halo
//!    bits never re-enter the local frontier cycle.
//! 4. **Barrier** — every queue's clock advances to the slowest
//!    partition's, plus the collective's modelled interconnect time; an
//!    `ExchangeEvent` per non-empty channel lands in the sender's
//!    profiler.
//! 5. **Rotate + merge** — all partitions rotate (keeping `iter` aligned
//!    across devices — distance stamps read it), then each drains its
//!    mailbox and min-merges the values through the algorithm's
//!    [`HaloLink`], activating improved vertices in its input frontier.
//!
//! Convergence is the global union count: every partition's step found an
//! empty frontier *and* no mail was posted. All three partitioned
//! algorithms (BFS/SSSP/CC) reduce their cross-device combine to a `min`,
//! which is associative and commutative — partitioned runs are
//! bit-identical to single-device runs (property-tested).

use sygraph_sim::{ExchangeEvent, Queue, SimError, SimResult};

use crate::engine::{
    CheckpointState, RecoverySession, StepAdvanceDyn, StepComputeDyn, SuperstepEngine,
};
use crate::frontier::exchange::{ExchangeConfig, ExchangeTally, FrontierExchange};
use crate::frontier::word::Word;
use crate::frontier::TwoLayerFrontier;
use crate::graph::partition::PartitionedGraph;
use crate::graph::DeviceCsr;
use crate::inspector::{Direction, Representation, Tuning};

/// Algorithm-side value plumbing for the exchange: how to read a halo
/// *replica* on the sender and min-merge it at the owner. Values travel
/// as `u64` (u32 states zero-extend, f32 distances ship their bits).
pub trait HaloLink {
    /// Sender-side replica value of local vertex `lid` on partition `p`.
    fn replica(&self, part: usize, lid: u32) -> u64;
    /// Merges `value` into owner partition `part` at local vertex `lid`;
    /// returns `true` when the value improved (the owner re-activates the
    /// vertex). Must be a min-style combine for cross-device determinism.
    fn merge(&self, part: usize, lid: u32, value: u64) -> bool;
}

/// One superstep's global exchange summary, kept for reporting.
#[derive(Debug, Clone, Copy)]
pub struct SuperstepExchange {
    pub superstep: u32,
    pub words: u64,
    pub msgs: u64,
    pub bytes: u64,
    /// Activations the merges actually accepted (≤ `msgs`).
    pub accepted: u64,
}

/// The multi-device driver: owns one engine per partition and the
/// exchange between them. Frontiers are pinned dense two-layer and the
/// direction pinned push — halo rows have no local in-edges, so a pull
/// superstep could never discover them; both pins are documented
/// engine-policy, not tuning suggestions.
pub struct MultiDeviceEngine<'a, W: Word> {
    pg: &'a PartitionedGraph,
    queues: &'a [Queue],
    engines: Vec<SuperstepEngine<'a, W, DeviceCsr>>,
    sessions: Vec<RecoverySession>,
    exchange: FrontierExchange,
    per_superstep: Vec<SuperstepExchange>,
    supersteps: u32,
    max_iters: usize,
    checkpointing: bool,
}

impl<'a, W: Word> MultiDeviceEngine<'a, W> {
    /// Builds one engine per partition. `graphs[p]` must be the uploaded
    /// shard of `pg.parts[p]` on `queues[p]`; `ckpt_state` is either
    /// empty (no recovery state) or one slice of registered buffers per
    /// partition.
    pub fn new(
        pg: &'a PartitionedGraph,
        queues: &'a [Queue],
        graphs: &'a [DeviceCsr],
        tuning: Tuning,
        cfg: ExchangeConfig,
        ckpt_state: &'a [Vec<&'a dyn CheckpointState>],
        mark_prefix: &str,
    ) -> SimResult<Self> {
        let parts = pg.part_count();
        assert_eq!(queues.len(), parts, "one queue per partition");
        assert_eq!(graphs.len(), parts, "one uploaded shard per partition");
        assert!(
            ckpt_state.is_empty() || ckpt_state.len() == parts,
            "checkpoint state is per-partition or absent"
        );
        let mut local_tuning = tuning;
        local_tuning.direction = Direction::Push;
        local_tuning.representation = Representation::Dense;

        let mut engines = Vec::with_capacity(parts);
        for p in 0..parts {
            let n_local = pg.parts[p].local_len().max(1);
            let fin: Box<TwoLayerFrontier<W>> =
                Box::new(TwoLayerFrontier::new(&queues[p], n_local)?);
            let fout: Box<TwoLayerFrontier<W>> =
                Box::new(TwoLayerFrontier::new(&queues[p], n_local)?);
            let mut e = SuperstepEngine::new(&queues[p], &graphs[p], local_tuning, fin, fout)
                .fused(true)
                .mark_prefix(format!("{mark_prefix}_p{p}_"));
            if let Some(state) = ckpt_state.get(p) {
                e = e.checkpoint_state(state.as_slice());
            }
            engines.push(e);
        }
        let checkpointing = local_tuning.recovery.checkpoint_every > 0;
        Ok(MultiDeviceEngine {
            pg,
            queues,
            engines,
            sessions: (0..parts).map(|_| RecoverySession::new()).collect(),
            exchange: FrontierExchange::new(parts, cfg),
            per_superstep: Vec::new(),
            supersteps: 0,
            max_iters: 2 * pg.n + 16,
            checkpointing,
        })
    }

    /// Overrides the global superstep cap (default `2n + 16`).
    pub fn max_iters(mut self, n: usize) -> Self {
        self.max_iters = n;
        self
    }

    /// Seeds global vertex `v` into its owner's input frontier.
    pub fn seed(&self, v: u32) {
        let p = self.pg.owner_of(v) as usize;
        self.engines[p]
            .input()
            .insert_host(self.pg.owner_local_of(v));
    }

    /// Activates every *owned* vertex on every partition (CC-style
    /// all-active seeding; halo rows stay inactive — they have no local
    /// out-edges and their owners activate themselves).
    pub fn seed_all_owned(&self) {
        for (p, part) in self.pg.parts.iter().enumerate() {
            let f = self.engines[p].input();
            for lid in 0..part.owned {
                f.insert_host(lid);
            }
        }
    }

    /// Per-partition engine access (tests inspect iteration alignment).
    pub fn engine(&self, p: usize) -> &SuperstepEngine<'a, W, DeviceCsr> {
        &self.engines[p]
    }

    /// Exchange totals across the whole run.
    pub fn exchange_total(&self) -> ExchangeTally {
        self.exchange.total()
    }

    /// Per-superstep exchange summaries (non-empty supersteps only).
    pub fn exchange_per_superstep(&self) -> &[SuperstepExchange] {
        &self.per_superstep
    }

    /// Checkpoint resumes taken across all partitions.
    pub fn resumes(&self) -> u32 {
        self.sessions.iter().map(|s| s.resumes()).sum()
    }

    /// Runs the partitioned BSP loop to global convergence, returning the
    /// number of global supersteps (the final stale-layer-2 drain rounds
    /// count too — compare *values*, not superstep counts, against a
    /// single-device run). `advances[p]` /
    /// `computes[p]` are partition `p`'s functors over *local* IDs;
    /// `link` is the algorithm's replica/merge plumbing.
    pub fn run(
        &mut self,
        advances: &[&StepAdvanceDyn<'_>],
        computes: &[Option<&StepComputeDyn<'_>>],
        link: &dyn HaloLink,
    ) -> SimResult<u32> {
        let parts = self.engines.len();
        assert_eq!(advances.len(), parts);
        assert_eq!(computes.len(), parts);
        loop {
            // 1. Boundary checkpoints (see module docs: cadence is fixed).
            if self.checkpointing {
                for p in 0..parts {
                    self.sessions[p].checkpoint_here(&self.engines[p]);
                }
            }

            // 2. Local supersteps, each under its own recovery session.
            let mut any_live = false;
            for p in 0..parts {
                let live = self.engines[p].step_resilient(
                    &mut self.sessions[p],
                    advances[p],
                    computes[p],
                )?;
                any_live |= live;
            }

            // 3. Word-diff halo harvest into the mailboxes.
            let iter = self.supersteps;
            let mut tally = SuperstepExchange {
                superstep: iter,
                words: 0,
                msgs: 0,
                bytes: 0,
                accepted: 0,
            };
            for p in 0..parts {
                let part = &self.pg.parts[p];
                let channels = {
                    let fout = self.engines[p].output();
                    self.exchange
                        .harvest(part, fout, &|lid| link.replica(p, lid))
                };
                // The zeroed halo words keep their second-layer bits: a
                // stale layer-2 bit only makes the next compaction visit
                // a zero word (and delays convergence by one near-empty
                // superstep at the end of the run), both cheaper than a
                // full `layer2_rebuild` sweep here every superstep. The
                // following rotate's lazy clear retires the stale bits.
                for ch in channels {
                    tally.words += ch.words;
                    tally.msgs += ch.msgs;
                    tally.bytes += ch.bytes;
                    self.queues[p].profiler().record_exchange(ExchangeEvent {
                        t_ns: self.queues[p].now_ns(),
                        superstep: iter,
                        src_part: p as u32,
                        dst_part: ch.dst_part,
                        words: ch.words,
                        msgs: ch.msgs,
                        bytes: ch.bytes,
                    });
                }
            }

            // Global convergence: nothing ran, nothing to deliver.
            if !any_live && !self.exchange.pending() {
                return Ok(self.supersteps);
            }

            // 4. BSP barrier: everyone waits for the slowest clock, then
            // pays the collective's transfer time.
            let t_max = self
                .queues
                .iter()
                .map(|q| q.now_ns())
                .fold(f64::NEG_INFINITY, f64::max);
            let xfer_ns = self.exchange.transfer_ns(tally.bytes);
            for q in self.queues {
                q.advance_clock_ns(t_max - q.now_ns() + xfer_ns);
            }

            // 5. Rotate all partitions — including converged ones, so
            // `iter` stays aligned across devices (distance stamps read
            // it) — then deliver the mail.
            for p in 0..parts {
                self.engines[p].rotate();
                while self.queues[p].fault_pending() {
                    let e = self.queues[p].take_fault().expect("pending implies Some");
                    let policy = self.engines[p].tuning().recovery;
                    let s = &mut self.sessions[p];
                    let resumed = self.engines[p].recover(
                        e,
                        &policy,
                        s.checkpoint.as_ref(),
                        &mut s.retries,
                        &mut s.oom_rung,
                        &mut s.resumes,
                    )?;
                    if !resumed {
                        self.engines[p].output().clear(&self.queues[p]);
                    }
                }
            }
            for p in 0..parts {
                for m in self.exchange.drain(p) {
                    if link.merge(p, m.owner_local, m.value) {
                        self.engines[p].input().insert_host(m.owner_local);
                        tally.accepted += 1;
                    }
                }
            }
            if tally.bytes > 0 {
                self.per_superstep.push(tally);
            }

            self.supersteps += 1;
            if self.supersteps as usize > self.max_iters {
                return Err(SimError::Algorithm(
                    "partitioned superstep loop failed to converge".into(),
                ));
            }
        }
    }
}
