//! The superstep execution engine: owns the advance → compute → swap →
//! clear cycle that every frontier algorithm in §3.4 hand-rolled before.
//!
//! One [`SuperstepEngine::step`] performs a whole BSP superstep with a
//! *single* host-visible synchronization:
//!
//! 1. **Advance** — expands the input frontier through the graph. Under
//!    the two-layer layout the pre-advance compaction's word count doubles
//!    as the convergence check (`Some(0)` ⇒ the frontier is empty), so no
//!    separate count kernel or extra host read-back is needed.
//! 2. **Compute** — either *fused* into the advance kernel (the functor
//!    runs the moment a destination bit is first set, via
//!    [`BitmapLike::insert_lane_checked`]), or as a follow-up
//!    [`compute::over_compacted`] pass sized by the output frontier's
//!    non-zero words rather than its full capacity.
//! 3. **Rotate** — [`SuperstepEngine::rotate`] swaps the frontiers and
//!    *lazily* clears the old input: only the words the superstep's
//!    compaction found non-zero are zeroed ([`BitmapLike::lazy_clear`]),
//!    valid because every insert of the superstep went to the other
//!    frontier.
//!
//! Per superstep on the two-layer layout this is 3 kernels fused
//! (compact, advance+compute, lazy clear) versus 4+ for the classic
//! unfused sequence — and exactly one host sync (the compaction count)
//! either way. Events are chained internally; the engine only surfaces
//! the per-step convergence result.

pub mod multi_device;
pub mod recovery;

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue, RecoveryEvent, SimError, SimResult};

use crate::frontier::bucket::{BucketPool, BucketSpec};
use crate::frontier::lanes::{lane_locate, LaneView};
use crate::frontier::word::Word;
use crate::frontier::{swap, BitmapLike, Frontier, RepKind, TwoLayerFrontier};
use crate::graph::traits::DeviceGraphView;
use crate::inspector::{Balancing, Direction, Representation, Tuning};
use crate::operators::advance::{Advance, PullScope};
use crate::operators::compute;
use crate::types::{EdgeId, VertexId, Weight};

pub use multi_device::{HaloLink, MultiDeviceEngine, SuperstepExchange};
pub use recovery::{CheckpointState, EngineCheckpoint, LaneCheckpoint, RecoveryPolicy};

/// Which candidate set the engine hands a *pull*-direction superstep
/// (see [`PullScope`]). Chosen once per engine by the algorithm — the
/// per-superstep push/pull decision itself belongs to the engine
/// ([`Tuning::choose_direction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PullCandidates {
    /// Every vertex scans its in-edges: the functor sees exactly the edge
    /// set a push superstep would offer, so any functor is safe
    /// (label-propagation algorithms like CC).
    #[default]
    AllVertices,
    /// Only the engine-maintained unvisited set scans, each candidate
    /// adopting on its first accepted in-edge and leaving the set
    /// in-kernel. Valid for visit-once algorithms with read-only advance
    /// functors (BFS-style): edges past the first accepted one are never
    /// offered.
    Unvisited,
}

/// Iteration-aware advance functor:
/// `(lane, iter, src, dst, edge, weight) -> bool`.
pub trait StepAdvance:
    Fn(&mut ItemCtx<'_>, u32, VertexId, VertexId, EdgeId, Weight) -> bool + Sync
{
}
impl<F> StepAdvance for F where
    F: Fn(&mut ItemCtx<'_>, u32, VertexId, VertexId, EdgeId, Weight) -> bool + Sync
{
}

/// Object-safe spelling of [`StepAdvance`], for callers that hold one
/// functor per partition behind a uniform type (the multi-device engine).
pub type StepAdvanceDyn<'f> =
    dyn Fn(&mut ItemCtx<'_>, u32, VertexId, VertexId, EdgeId, Weight) -> bool + Sync + 'f;

/// Iteration-aware compute functor: `(lane, iter, vertex)`. Passed as
/// `Option<&dyn StepComputeDyn>`; `None` means the algorithm has no
/// compute phase (e.g. SSSP relaxes inside the advance functor).
pub type StepComputeDyn<'f> = dyn Fn(&mut ItemCtx<'_>, u32, VertexId) + Sync + 'f;

/// Convenience for advance-only algorithms: `engine.step(f, NO_COMPUTE)`.
pub const NO_COMPUTE: Option<&StepComputeDyn<'static>> = None;

/// Lane-masked advance functor for batched multi-source supersteps:
/// `(lane, iter, src, dst, edge, weight, mask) -> accept_mask`.
///
/// `mask` is the set of source lanes on whose frontier `src` currently
/// sits (already intersected with the engine's live-lane set); the
/// functor returns the subset of those lanes accepting the edge. The
/// engine intersects the result back with `mask`, so returning a
/// superset is harmless.
pub trait LaneAdvance:
    Fn(&mut ItemCtx<'_>, u32, VertexId, VertexId, EdgeId, Weight, u64) -> u64 + Sync
{
}
impl<F> LaneAdvance for F where
    F: Fn(&mut ItemCtx<'_>, u32, VertexId, VertexId, EdgeId, Weight, u64) -> u64 + Sync
{
}

/// Lane-masked compute functor: `(lane, iter, vertex, fresh_mask)`, run
/// the moment `fresh_mask`'s lanes first land on `vertex` this superstep
/// (each `(vertex, lane)` pair fires exactly once — the lane-word
/// `fetch_or` plays the role [`BitmapLike::insert_lane_checked`] plays
/// for single-source fused compute).
pub type LaneComputeDyn<'f> = dyn Fn(&mut ItemCtx<'_>, u32, VertexId, u64) + Sync + 'f;

/// Convenience for advance-only batched algorithms:
/// `engine.step_multi(f, NO_LANE_COMPUTE)`.
pub const NO_LANE_COMPUTE: Option<&LaneComputeDyn<'static>> = None;

/// Host-side hook run after each superstep's advance+compute, before the
/// rotate: `(queue, iter, output_frontier)`. May launch kernels and insert
/// vertices into the output frontier (e.g. Connected Components'
/// shortcutting pass re-activating vertices whose label chain collapsed).
pub type PostStep<'a, W> = &'a dyn Fn(&Queue, u32, &dyn BitmapLike<W>);

/// Recovery bookkeeping for callers driving supersteps one at a time via
/// [`SuperstepEngine::step_resilient`] (the multi-device engine): the
/// latest checkpoint plus the same counters
/// [`run`](SuperstepEngine::run)'s internal loop keeps — transient
/// retries reset per superstep, the OOM rung and resume count persist
/// for the run.
#[derive(Default)]
pub struct RecoverySession {
    checkpoint: Option<EngineCheckpoint>,
    retries: u32,
    oom_rung: u32,
    resumes: u32,
}

impl RecoverySession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the session's checkpoint with one taken at the engine's
    /// current superstep boundary.
    pub fn checkpoint_here<W: Word, G: DeviceGraphView + ?Sized>(
        &mut self,
        engine: &SuperstepEngine<'_, W, G>,
    ) {
        self.checkpoint = Some(engine.take_checkpoint());
    }

    /// Checkpoint resumes performed so far.
    pub fn resumes(&self) -> u32 {
        self.resumes
    }
}

/// The superstep engine. Owns the ping-pong frontier pair and the
/// advance→compute→swap→clear cycle; algorithms supply functors and
/// (optionally) inspect or reseed the frontiers between steps.
pub struct SuperstepEngine<'a, W: Word, G: DeviceGraphView + ?Sized> {
    q: &'a Queue,
    graph: &'a G,
    tuning: Tuning,
    fin: Box<dyn BitmapLike<W>>,
    fout: Box<dyn BitmapLike<W>>,
    fused: bool,
    mark_prefix: String,
    max_iters: usize,
    diverge_msg: String,
    iter: u32,
    /// Whether `fin`'s compaction metadata is fresh (set by [`step`]: the
    /// advance compacted `fin` and every insert since went to `fout`), so
    /// the next [`rotate`] may clear it lazily.
    ///
    /// [`step`]: SuperstepEngine::step
    /// [`rotate`]: SuperstepEngine::rotate
    lazy_ok: bool,
    /// Bucket buffers shared by every superstep's degree-bucketed advance
    /// (satellite of the §4.2 hybrid dispatch: allocate once per engine,
    /// not once per `advance`). Allocated lazily on the first superstep
    /// that can actually go bucketed; `pool_attempted` stops us retrying
    /// a failed allocation every step.
    bucket_pool: Option<BucketPool>,
    pool_attempted: bool,
    /// Representation the input frontier ran under last superstep. The
    /// engine owns the switch policy: each step it resolves
    /// [`Tuning::choose_representation`] against `last_estimate` and asks
    /// the frontier to adopt the result — layouts that can't (plain
    /// bitmaps, two-layer) report back `Dense` and nothing changes.
    rep: RepKind,
    /// Representation *switches* performed so far (transitions between
    /// consecutive supersteps; the initial adoption is not a switch).
    rep_switches: u32,
    /// Estimated input-frontier population for the next rep decision:
    /// the counted-compaction result the engine already reads back for
    /// convergence — exact entries under sparse, `nz_words × word_bits`
    /// under dense — so the policy costs no extra host round-trip.
    last_estimate: usize,
    /// Forward population estimate for the frontier the last superstep
    /// *wrote* (i.e. this superstep's input): what the output-side
    /// adoption was decided on. Folded into the next rep decision so a
    /// wavefront that just exploded — the one case `last_estimate`, being
    /// one step behind, always mispredicts — is not asked to go sparse
    /// and pay a doomed list rebuild.
    predicted: usize,
    /// Candidate-set policy for pull supersteps (engine-level direction
    /// optimization); set once via [`SuperstepEngine::pull_scope`].
    pull_scope: PullCandidates,
    /// Direction the last superstep ran (`false` = push). Feeds the
    /// Beamer hysteresis in [`Tuning::choose_direction`].
    pulling: bool,
    /// Direction *switches* performed so far (transitions between
    /// consecutive supersteps).
    dir_switches: u32,
    /// Sticky opt-out: set when the graph has no pull view, building one
    /// failed, or the OOM ladder forced push. Never cleared within a run.
    pull_disabled: bool,
    /// Whether any pull superstep has launched (gates the force-push OOM
    /// rung so push-only runs keep the pre-existing ladder).
    pull_engaged: bool,
    /// The engine-maintained unvisited set ([`PullCandidates::Unvisited`]):
    /// seeded `all − fin` before the first superstep, shrunk in-kernel by
    /// pull adoptions and by the push advance removing each accepted
    /// destination in-functor.
    unvisited: Option<TwoLayerFrontier<W>>,
    /// Algorithm buffers to capture in checkpoints (registered via
    /// [`SuperstepEngine::checkpoint_state`]); without them a
    /// `DeviceLost` cannot be recovered from.
    ckpt_state: Option<&'a [&'a dyn CheckpointState]>,
    /// Batched multi-source state ([`SuperstepEngine::multi_source`]):
    /// `None` for ordinary single-source engines.
    multi: Option<MultiState>,
}

/// Engine-side state of a batched multi-source run.
struct MultiState {
    /// Lanes per vertex (8, 16, 32 or 64).
    width: u32,
    /// Lanes not yet retired. A lane retires when a superstep produces no
    /// fresh frontier bit for it; retired lanes are masked out of every
    /// functor's lane mask, so late lanes never pay for finished ones.
    live: u64,
    /// One-word device scratch: the advance ORs each fresh mask in, and
    /// the post-step bookkeeping reads it to retire drained lanes. Reset
    /// only *after* a successful superstep's read (never per attempt):
    /// kernels are all-or-nothing, so across transient retries the OR
    /// accumulates exactly the surviving attempt's fresh lanes.
    alive: DeviceBuffer<u64>,
}

impl<'a, W: Word, G: DeviceGraphView + ?Sized> SuperstepEngine<'a, W, G> {
    /// Creates an engine over a seeded input frontier and an empty output
    /// frontier (both supplied by the caller, so any
    /// [`BitmapLike`] layout works).
    pub fn new(
        q: &'a Queue,
        graph: &'a G,
        tuning: Tuning,
        fin: Box<dyn BitmapLike<W>>,
        fout: Box<dyn BitmapLike<W>>,
    ) -> Self {
        SuperstepEngine {
            q,
            graph,
            tuning,
            fin,
            fout,
            fused: false,
            mark_prefix: "superstep".into(),
            max_iters: usize::MAX,
            diverge_msg: "superstep loop failed to converge".into(),
            iter: 0,
            lazy_ok: false,
            bucket_pool: None,
            pool_attempted: false,
            rep: RepKind::Dense,
            rep_switches: 0,
            // Engines start from seed frontiers (a vertex or two), so the
            // first Auto decision leans sparse; frontiers that can't go
            // sparse (or whose bounded list overflowed, e.g. after
            // `fill_all`) adopt back to dense on their own.
            last_estimate: 0,
            predicted: 0,
            pull_scope: PullCandidates::default(),
            pulling: false,
            dir_switches: 0,
            pull_disabled: false,
            pull_engaged: false,
            unvisited: None,
            ckpt_state: None,
            multi: None,
        }
    }

    /// Switches the engine into batched multi-source mode: the frontier
    /// pair must be [`LaneFrontier`]s of this `width` (∈ {8, 16, 32,
    /// 64}), and `live` names the lanes actually carrying a source.
    /// Supersteps then run through
    /// [`step_multi`](SuperstepEngine::step_multi) /
    /// [`run_multi`](SuperstepEngine::run_multi).
    ///
    /// Pins the pull scope to [`PullCandidates::AllVertices`]: the
    /// adopt-once [`PullCandidates::Unvisited`] scan stops offering a
    /// vertex's in-edges after its *first* accepted lane, which would
    /// starve the other lanes.
    ///
    /// [`LaneFrontier`]: crate::frontier::LaneFrontier
    pub fn multi_source(mut self, width: u32, live: u64) -> SimResult<Self> {
        assert!(
            matches!(width, 8 | 16 | 32 | 64),
            "lane width must be 8, 16, 32 or 64 (got {width})"
        );
        let alive = self.q.malloc_device::<u64>(1)?;
        alive.store(0, 0);
        self.pull_scope = PullCandidates::AllVertices;
        self.multi = Some(MultiState {
            width,
            live: live & LaneView::mask_all(width),
            alive,
        });
        Ok(self)
    }

    /// Lanes not yet retired (all-zero once every source converged).
    /// Zero for single-source engines.
    pub fn live_lanes(&self) -> u64 {
        self.multi.as_ref().map_or(0, |m| m.live)
    }

    /// The batched lane width, when the engine runs multi-source.
    pub fn lane_width(&self) -> Option<u32> {
        self.multi.as_ref().map(|m| m.width)
    }

    /// Lazily allocates the engine-owned bucket pool the first time a
    /// superstep could dispatch bucketed. Kept out of `new` so engines on
    /// `WorkgroupMapped` tuning (or on graphs with no hub vertices under
    /// `Auto`) never pay the allocation — which also keeps OOM behaviour
    /// identical to the pre-bucketing engine for those runs.
    fn ensure_bucket_pool(&mut self) {
        if self.pool_attempted || self.tuning.balancing == Balancing::WorkgroupMapped {
            return;
        }
        if self.tuning.balancing == Balancing::Auto
            && !self.tuning.graph_is_skewed(self.graph.degree_profile())
        {
            return; // Auto can never pick Bucketed on this graph
        }
        self.pool_attempted = true;
        let spec = BucketSpec::from_tuning(&self.tuning);
        self.bucket_pool = BucketPool::new(
            self.q,
            self.graph.vertex_count(),
            self.graph.edge_count(),
            &spec,
        )
        .ok();
    }

    /// Fuses the compute functor into the advance kernel (see the module
    /// docs). Off by default; a bit-identical but cheaper execution for
    /// compute functors that depend only on `(iter, vertex)`.
    pub fn fused(mut self, yes: bool) -> Self {
        self.fused = yes;
        self
    }

    /// Profiler-marker prefix: each superstep records `"{prefix}{iter}"`.
    pub fn mark_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.mark_prefix = prefix.into();
        self
    }

    /// Overrides the recovery policy carried on the tuning.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.tuning.recovery = policy;
        self
    }

    /// Sets the candidate set pull supersteps enumerate. The default,
    /// [`PullCandidates::AllVertices`], is safe for every functor;
    /// visit-once algorithms (BFS) opt into
    /// [`PullCandidates::Unvisited`] for the Beamer-style early-exit
    /// scan. Has no effect unless the tuning's [`Direction`] policy and
    /// the graph's pull view let a superstep actually run pull.
    pub fn pull_scope(mut self, scope: PullCandidates) -> Self {
        self.pull_scope = scope;
        self
    }

    /// Registers the algorithm buffers checkpoints must capture (e.g.
    /// BFS's distance buffer). Required for `DeviceLost` recovery; the
    /// buffers' contents are snapshot host-side, never via kernels.
    pub fn checkpoint_state(mut self, state: &'a [&'a dyn CheckpointState]) -> Self {
        self.ckpt_state = Some(state);
        self
    }

    /// Errors out of [`run`](SuperstepEngine::run) with `msg` once the
    /// iteration count exceeds `n` (divergence guard).
    pub fn max_iters(mut self, n: usize, msg: impl Into<String>) -> Self {
        self.max_iters = n;
        self.diverge_msg = msg.into();
        self
    }

    /// Supersteps completed so far.
    pub fn iteration(&self) -> u32 {
        self.iter
    }

    /// The current input frontier.
    pub fn input(&self) -> &dyn BitmapLike<W> {
        self.fin.as_ref()
    }

    /// The current output frontier.
    pub fn output(&self) -> &dyn BitmapLike<W> {
        self.fout.as_ref()
    }

    /// The queue the engine launches on.
    pub fn queue(&self) -> &Queue {
        self.q
    }

    /// The tuning every launch uses.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// The representation the input frontier ran under on the most recent
    /// superstep (`Dense` before the first one).
    pub fn representation(&self) -> RepKind {
        self.rep
    }

    /// Representation switches performed so far — transitions between
    /// consecutive supersteps; the initial adoption does not count.
    pub fn rep_switches(&self) -> u32 {
        self.rep_switches
    }

    /// Whether the most recent superstep ran in the pull direction.
    pub fn pulling(&self) -> bool {
        self.pulling
    }

    /// Direction switches performed so far — transitions between
    /// consecutive supersteps; starting in push does not count.
    pub fn direction_switches(&self) -> u32 {
        self.dir_switches
    }

    /// `unv −= sub`, word-wise (AND-NOT), then layer-2 rebuild. One-time
    /// seeding cost only: steady-state maintenance rides inside the
    /// advance (push supersteps remove accepted destinations in-functor,
    /// pull supersteps remove adoptions in-kernel), so no per-superstep
    /// full sweep ever runs.
    fn subtract_words(q: &Queue, unv: &TwoLayerFrontier<W>, sub: &dyn BitmapLike<W>) {
        let uw = unv.words();
        let sw = sub.words();
        let nw = unv.num_words().min(sub.num_words());
        q.parallel_for("unvisited_subtract", nw, |lane, i| {
            let a: W = lane.load(uw, i);
            let b: W = lane.load(sw, i);
            lane.store(uw, i, a.and(b.not()));
            lane.compute(1);
        });
        unv.rebuild_from_words(q);
    }

    /// Allocates and seeds the unvisited set (`all − fin`) before the
    /// first superstep of an engine that may pull with
    /// [`PullCandidates::Unvisited`]. Seeding at iteration 0 — rather
    /// than at the first pull superstep — keeps the set *exact*: every
    /// later accepted push edge removes its destination in-functor,
    /// every pull adoption removes in-kernel.
    fn seed_unvisited(&mut self) {
        if self.iter != 0
            || self.pull_disabled
            || self.unvisited.is_some()
            || self.pull_scope != PullCandidates::Unvisited
            || self.tuning.direction == Direction::Push
            || !self.graph.supports_pull()
        {
            return;
        }
        match TwoLayerFrontier::<W>::new(self.q, self.graph.vertex_count()) {
            Ok(unv) => {
                unv.fill_all(self.q);
                Self::subtract_words(self.q, &unv, self.fin.as_ref());
                self.unvisited = Some(unv);
            }
            // No memory for the candidate set: run the whole traversal
            // push-side rather than fail.
            Err(_) => self.pull_disabled = true,
        }
    }

    /// Makes the graph's pull view resident (and checks the unvisited set
    /// when the scope needs one). Any failure permanently pins this
    /// engine to push — direction optimization degrades, it never errors.
    fn ensure_pull_ready(&mut self) -> bool {
        if self.pull_disabled {
            return false;
        }
        if !matches!(self.graph.ensure_pull(self.q), Ok(true)) {
            self.pull_disabled = true;
            return false;
        }
        if self.pull_scope == PullCandidates::Unvisited && self.unvisited.is_none() {
            self.pull_disabled = true;
            return false;
        }
        true
    }

    /// Runs one superstep: advance (with compute fused in or following as
    /// an [`compute::over_compacted`] pass) and the single convergence
    /// check. Returns `false` if the input frontier was empty — the
    /// algorithm has converged and nothing was launched — `true` after a
    /// full superstep, in which case the caller advances the cycle with
    /// [`rotate`](SuperstepEngine::rotate).
    pub fn step(
        &mut self,
        advance_f: impl StepAdvance,
        compute_f: Option<&StepComputeDyn<'_>>,
    ) -> bool {
        let iter = self.iter;
        self.q.mark(format!("{}{}", self.mark_prefix, iter));
        self.ensure_bucket_pool();
        self.seed_unvisited();
        // Resolve the representation policy against last superstep's
        // population estimate and ask the frontier to adopt it *before*
        // building the advance (dispatch keys off the adopted layout).
        // Frontiers without a sparse mode report back `Dense` and nothing
        // changes, so this is free for the classic layouts.
        let policy_est = self.last_estimate.max(self.predicted);
        // Direction policy (Beamer hysteresis, §3.4): driven by the
        // *measured* population the advance already read back — not the
        // forward estimate the rep policy adds on top. The forward term
        // includes a `max_degree` boost for narrow frontiers (cheap
        // insurance for the rep choice) that would pin a hub-carrying web
        // graph in pull for the whole tail; the measured count lags one
        // superstep, which is exactly classic Beamer timing, and costs no
        // extra host sync. The first superstep that wants pull makes the
        // graph's CSC view resident; any failure pins the engine to push
        // for the rest of the run.
        let pull = self.tuning.direction != Direction::Push
            && self.tuning.choose_direction(
                self.last_estimate,
                self.graph.vertex_count(),
                self.pulling,
            )
            && self.ensure_pull_ready();
        let desired = self
            .tuning
            .choose_representation(policy_est, self.fin.capacity(), self.rep);
        let adopted = self.fin.adopt_rep(self.q, desired);
        let switched = iter > 0 && adopted != self.rep;
        // The output adopts *before* the advance inserts into it, on a
        // forward estimate: when the input runs sparse its exact
        // population is a free host read (the list length). The hysteresis
        // gap absorbs ordinary growth, but a frontier no wider than one
        // bitmap word can hide a hub whose degree the mean conceals —
        // that is the explosion superstep of every hub-seeded search, so
        // add `max_degree` there. A hybrid output adopted dense stops
        // maintaining its item list (inserts cost a bare bitmap OR), so
        // the widest superstep pays no per-insert list tax.
        let in_pop = match self.fin.sparse_view(self.q) {
            Some(view) => view.len,
            None => policy_est,
        };
        let mut out_est = in_pop;
        if in_pop <= self.tuning.word_bits as usize {
            out_est = out_est.saturating_add(
                self.graph
                    .degree_profile()
                    .map_or(0, |p| p.max_degree as usize),
            );
        }
        let out_desired = self
            .tuning
            .choose_representation(out_est, self.fout.capacity(), adopted);
        self.fout.adopt_rep(self.q, out_desired);
        self.predicted = out_est;
        // Keep the unvisited set exact at O(accepted edges), not O(n):
        // on push supersteps every accepted destination is removed
        // in-functor (idempotent atomic AND-NOT, so duplicate accepts are
        // harmless). A pull superstep removes its adoptions inside the
        // pull kernel instead, and a full-sweep subtract here would cost
        // more than the advance itself on a long-diameter road graph.
        let unv_push = if pull { None } else { self.unvisited.as_ref() };
        let adv = |l: &mut ItemCtx<'_>, s: VertexId, d: VertexId, e: EdgeId, w: Weight| {
            let accepted = advance_f(l, iter, s, d, e, w);
            if accepted {
                if let Some(unv) = unv_push {
                    unv.remove_lane(l, d);
                }
            }
            accepted
        };
        if pull {
            self.pull_engaged = true;
        }
        let fused_wrap;
        let mut builder = Advance::new(self.q, self.graph, self.fin.as_ref())
            .output(self.fout.as_ref())
            .tuning(&self.tuning)
            .pool(self.bucket_pool.as_ref());
        if pull {
            builder = builder.pull(match (self.pull_scope, self.unvisited.as_ref()) {
                (PullCandidates::Unvisited, Some(unv)) => {
                    PullScope::Unvisited(unv as &dyn BitmapLike<W>)
                }
                _ => PullScope::AllVertices,
            });
        }
        if let (true, Some(cf)) = (self.fused, compute_f) {
            fused_wrap = move |l: &mut ItemCtx<'_>, v: VertexId| cf(l, iter, v);
            builder = builder.fuse(&fused_wrap);
        }
        let (ev, words) = builder.run(adv);
        ev.wait();
        // An injected fault mid-superstep leaves skipped kernels behind:
        // the compaction count is stale and must not drive convergence,
        // representation or estimate decisions. Report "not converged" and
        // leave interpretation to the recovery layer ([`try_step`]); with
        // no fault plan attached this check is free.
        //
        // [`try_step`]: SuperstepEngine::try_step
        if self.q.fault_pending() {
            self.lazy_ok = false;
            return true;
        }
        // Feed the next rep decision from the count the advance already
        // read back: exact entries under sparse, `nz_words × word_bits`
        // (an upper bound) under dense. Single-layer bitmaps report no
        // count — pin the estimate at capacity so Auto never goes sparse.
        // `W::BITS`, not `tuning.word_bits`: the latter is the logical
        // MSI sub-word width (8 on a subgroup-8 device) while the dense
        // compaction counts whole storage words, so multiplying by the
        // narrower width under-counts the upper bound by up to 8x —
        // enough to pin the Beamer policy to push on small devices.
        self.last_estimate = match words {
            Some(c) if adopted == RepKind::Sparse => c,
            Some(c) => c.saturating_mul(W::BITS as usize),
            None => self.fin.capacity(),
        };
        // The one host-visible check of the superstep: the compaction
        // count (already read back to size the launch) doubles as the
        // convergence test. Single-layer bitmaps have no compaction and
        // fall back to an emptiness kernel.
        if words == Some(0) || (words.is_none() && self.fin.is_empty(self.q)) {
            return false;
        }
        if switched {
            self.rep_switches += 1;
        }
        self.rep = adopted;
        self.q
            .profiler()
            .record_rep(self.q.now_ns(), iter, adopted.label(), switched);
        let dir_switched = iter > 0 && pull != self.pulling;
        if dir_switched {
            self.dir_switches += 1;
        }
        self.pulling = pull;
        self.q.profiler().record_direction(
            self.q.now_ns(),
            iter,
            if pull { "pull" } else { "push" },
            dir_switched,
        );
        if !self.fused {
            if let Some(cf) = compute_f {
                compute::over_compacted(self.q, self.fout.as_ref(), |l, v| cf(l, iter, v)).wait();
            }
        }
        self.lazy_ok = true;
        true
    }

    /// [`step`](SuperstepEngine::step) with injected-fault awareness: any
    /// fault that fired during the superstep is drained from the queue and
    /// surfaced as `Err` (the superstep's effects are a partial,
    /// idempotent prefix — safe to retry from the unchanged input
    /// frontier). Identical to `step` when no fault plan is attached.
    pub fn try_step(
        &mut self,
        advance_f: impl StepAdvance,
        compute_f: Option<&StepComputeDyn<'_>>,
    ) -> SimResult<bool> {
        let live = self.step(advance_f, compute_f);
        match self.q.take_fault() {
            Some(e) => {
                self.lazy_ok = false;
                Err(e)
            }
            None => Ok(live),
        }
    }

    /// [`step`](SuperstepEngine::step) under the engine's recovery
    /// policy, for callers that drive the superstep loop themselves (the
    /// multi-device engine): retries transient faults with backoff, walks
    /// the OOM degradation ladder, and resumes a `DeviceLost` from the
    /// session's checkpoint — looping until the superstep lands or the
    /// policy is exhausted. The caller owns checkpoint cadence through
    /// [`RecoverySession::checkpoint_here`]; a multi-device run must
    /// checkpoint at *every* exchange boundary, because resuming to an
    /// older superstep would replay local supersteps without the remote
    /// activations they originally received.
    pub fn step_resilient(
        &mut self,
        session: &mut RecoverySession,
        advance_f: impl StepAdvance,
        compute_f: Option<&StepComputeDyn<'_>>,
    ) -> SimResult<bool> {
        let policy = self.tuning.recovery;
        loop {
            // Same cancellation boundary as `drive`: the caller owns the
            // checkpoint cadence here, so check before every attempt.
            self.q.check_cancelled()?;
            match self.try_step(&advance_f, compute_f) {
                Ok(live) => {
                    session.retries = 0;
                    return Ok(live);
                }
                Err(e) => {
                    self.recover(
                        e,
                        &policy,
                        session.checkpoint.as_ref(),
                        &mut session.retries,
                        &mut session.oom_rung,
                        &mut session.resumes,
                    )?;
                }
            }
        }
    }

    /// One batched multi-source superstep: expands every live lane's
    /// frontier through one advance over the *union* frontier. Per edge
    /// the engine reads the source's packed lane mask (one `u64` load),
    /// hands the live subset to `advance_f`, ORs the accepted lanes into
    /// the destination's mask, and — for lanes whose bit was *fresh* —
    /// fires `compute_f` and marks the lane alive. After the advance,
    /// lanes that produced no fresh bit retire: they are masked out of
    /// every subsequent lane mask, so the only per-superstep cost of a
    /// finished source is one AND.
    ///
    /// Composes with everything [`step`](SuperstepEngine::step) does —
    /// bucketed balancing, representation policy (lane frontiers pin
    /// dense), push/pull direction selection (pull adopts per-lane via
    /// the same mask arithmetic) — because the union frontier *is* a
    /// two-layer bitmap underneath.
    ///
    /// Returns `false` when the union frontier was empty (every lane
    /// converged; nothing launched).
    pub fn step_multi(
        &mut self,
        advance_f: impl LaneAdvance,
        compute_f: Option<&LaneComputeDyn<'_>>,
    ) -> bool {
        let ms = self
            .multi
            .as_ref()
            .expect("step_multi requires SuperstepEngine::multi_source");
        let width = ms.width;
        let live = ms.live;
        let alive = ms.alive.alias();
        let li = self
            .fin
            .lane_view()
            .expect("multi-source engines take LaneFrontier inputs")
            .lanes;
        let lo = self
            .fout
            .lane_view()
            .expect("multi-source engines take LaneFrontier outputs")
            .lanes;
        let mask_all = LaneView::mask_all(width);
        let iter = self.iter;
        let wrapped = move |l: &mut ItemCtx<'_>,
                            it: u32,
                            u: VertexId,
                            v: VertexId,
                            e: EdgeId,
                            w: Weight|
              -> bool {
            let (uw, us) = lane_locate(u, width);
            // Input masks are stable for the whole superstep (all writes
            // go to the output's lane words), so a plain load suffices.
            let m = (l.load::<u64>(&li, uw) >> us) & mask_all & live;
            if m == 0 {
                return false;
            }
            let acc = advance_f(l, it, u, v, e, w, m) & m;
            if acc == 0 {
                return false;
            }
            let (vw, vs) = lane_locate(v, width);
            // Most hub-superstep edges rediscover lanes already on v's
            // output mask, and sorted adjacency packs consecutive
            // destinations into shared lane words — a blind fetch_or
            // serializes those subgroups. One atomic load skips the OR
            // (and the union insert) when nothing would be fresh; bits
            // are only ever added during a superstep, so a stale read
            // errs toward a redundant OR, never a missed fresh bit.
            let cur = l.load_atomic::<u64>(&lo, vw);
            if acc & !(cur >> vs) == 0 {
                return false;
            }
            let old = l.fetch_or(&lo, vw, acc << vs);
            let fresh = acc & !(old >> vs) & mask_all;
            if fresh == 0 {
                // Lanes already on v's output mask: the union bit is set
                // too, so skip the union insert (and the compute).
                return false;
            }
            if let Some(cf) = compute_f {
                cf(l, it, v, fresh);
            }
            // Every fresh edge targets the same scratch word, so a blind
            // fetch_or would serialize whole subgroups on hub supersteps.
            // The atomic-load guard may read a stale word and issue a
            // redundant OR — harmless — but once the word covers `fresh`
            // (almost immediately) the atomic disappears entirely.
            if fresh & !l.load_atomic::<u64>(&alive, 0) != 0 {
                l.fetch_or(&alive, 0, fresh);
            }
            true
        };
        let stepped = self.step(wrapped, NO_COMPUTE);
        // A fault mid-superstep leaves the alive scratch a partial OR —
        // hands off to the recovery layer without retiring anything (and
        // without resetting the scratch: retries accumulate into it).
        if self.q.fault_pending() {
            return stepped;
        }
        if stepped {
            let ms = self.multi.as_mut().expect("checked above");
            let alive_mask = ms.alive.load(0) & live;
            ms.alive.store(0, 0);
            let retired = (live & !alive_mask).count_ones();
            ms.live = alive_mask;
            self.q
                .profiler()
                .record_lane(self.q.now_ns(), iter, alive_mask.count_ones(), retired);
        }
        stepped
    }

    /// [`step_multi`](SuperstepEngine::step_multi) with injected-fault
    /// awareness — the batched counterpart of
    /// [`try_step`](SuperstepEngine::try_step).
    pub fn try_step_multi(
        &mut self,
        advance_f: impl LaneAdvance,
        compute_f: Option<&LaneComputeDyn<'_>>,
    ) -> SimResult<bool> {
        let live = self.step_multi(advance_f, compute_f);
        match self.q.take_fault() {
            Some(e) => {
                self.lazy_ok = false;
                Err(e)
            }
            None => Ok(live),
        }
    }

    /// Swaps the frontiers and clears the new output (the superstep's old
    /// input) — lazily when its compaction metadata is still fresh, i.e.
    /// the words zeroed are exactly those the advance's compaction listed.
    pub fn rotate(&mut self) {
        swap(&mut self.fin, &mut self.fout);
        if self.lazy_ok {
            self.fout.lazy_clear(self.q);
        } else {
            self.fout.clear(self.q);
        }
        self.lazy_ok = false;
        self.iter += 1;
    }

    /// Like [`rotate`](SuperstepEngine::rotate), but *retains* the old
    /// input frontier (returning it) and installs `fresh` as the new
    /// output — Brandes-style algorithms keep each level's frontier for
    /// the backward sweep.
    pub fn rotate_retaining(&mut self, fresh: Box<dyn BitmapLike<W>>) -> Box<dyn BitmapLike<W>> {
        let retained = std::mem::replace(&mut self.fin, std::mem::replace(&mut self.fout, fresh));
        self.lazy_ok = false;
        self.iter += 1;
        retained
    }

    /// Marks `fin`'s compaction metadata stale, forcing the next
    /// [`rotate`](SuperstepEngine::rotate) to a full clear. Call after
    /// mutating the frontiers outside [`step`](SuperstepEngine::step)
    /// (e.g. direction-optimizing BFS's manual pull iterations).
    pub fn invalidate_compaction(&mut self) {
        self.lazy_ok = false;
    }

    /// Mutable access to the frontier pair `(input, output)` for manual
    /// supersteps (the engine cannot know what such a step does to the
    /// compaction metadata — pair with
    /// [`invalidate_compaction`](SuperstepEngine::invalidate_compaction)).
    pub fn frontiers(&self) -> (&dyn BitmapLike<W>, &dyn BitmapLike<W>) {
        (self.fin.as_ref(), self.fout.as_ref())
    }

    /// Consumes the engine and returns its `(input, output)` frontier
    /// pair — callers recycling frontier allocations across rooted passes
    /// (Brandes BC) reclaim the boxes instead of dropping them.
    pub fn into_frontiers(self) -> (Box<dyn BitmapLike<W>>, Box<dyn BitmapLike<W>>) {
        (self.fin, self.fout)
    }

    /// Drives `step` + `rotate` to convergence, returning the superstep
    /// count. Errors with the configured divergence message if
    /// [`max_iters`](SuperstepEngine::max_iters) is exceeded.
    pub fn run(
        &mut self,
        advance_f: impl StepAdvance,
        compute_f: Option<&StepComputeDyn<'_>>,
    ) -> SimResult<u32> {
        self.run_with_post(advance_f, compute_f, None)
    }

    /// [`run`](SuperstepEngine::run) with a host-side post-step hook,
    /// executed after each superstep's advance+compute and before the
    /// rotate (it may insert vertices into the output frontier).
    ///
    /// When the tuning's [`RecoveryPolicy`] enables it, faults injected by
    /// the queue's fault plan are handled here instead of propagating:
    /// transient failures retry the superstep (the input frontier is
    /// immutable until `rotate`), OOM walks the degradation ladder, and a
    /// sticky `DeviceLost` resumes from the latest checkpoint. Post-step
    /// hooks must be idempotent: a fault during or after the hook re-runs
    /// the whole superstep, hook included.
    pub fn run_with_post(
        &mut self,
        advance_f: impl StepAdvance,
        compute_f: Option<&StepComputeDyn<'_>>,
        post: Option<PostStep<'_, W>>,
    ) -> SimResult<u32> {
        self.drive(|e| e.try_step(&advance_f, compute_f), post)
    }

    /// Drives [`step_multi`](SuperstepEngine::step_multi) + `rotate` to
    /// convergence of *every* live lane, under the same recovery loop as
    /// [`run`](SuperstepEngine::run) — lane-aware checkpoints capture the
    /// per-vertex masks and the live-lane set, so a `DeviceLost` resume
    /// restores mid-batch. Requires lane-idempotent functors (the batched
    /// BFS family qualifies: depth stamps are guarded by the fresh mask).
    pub fn run_multi(
        &mut self,
        advance_f: impl LaneAdvance,
        compute_f: Option<&LaneComputeDyn<'_>>,
    ) -> SimResult<u32> {
        debug_assert!(self.multi.is_some(), "run_multi requires multi_source()");
        self.drive(|e| e.try_step_multi(&advance_f, compute_f), None)
    }

    /// The shared step/recover/rotate loop behind
    /// [`run_with_post`](SuperstepEngine::run_with_post) and
    /// [`run_multi`](SuperstepEngine::run_multi): `attempt` runs one
    /// superstep (`Ok(false)` = converged, `Err` = drained fault).
    fn drive(
        &mut self,
        mut attempt: impl FnMut(&mut Self) -> SimResult<bool>,
        post: Option<PostStep<'_, W>>,
    ) -> SimResult<u32> {
        let policy = self.tuning.recovery;
        // A fault latched *before* the first superstep means setup
        // kernels (distance fills, frontier seeds) were silently skipped
        // — state the superstep retry contract cannot repair, because a
        // retry only re-runs the superstep from its input frontier. Were
        // it absorbed here, the run would "converge" instantly on
        // uninitialized buffers; surface it as a typed failure instead.
        // Algorithms that want init-time resilience re-run their
        // (idempotent) setup under `guarded_init` before reaching this
        // point, so a clean entry is the norm even under fault injection.
        if let Some(e) = self.q.take_fault() {
            return Err(e);
        }
        let mut checkpoint: Option<EngineCheckpoint> = None;
        // Transient retries are per-superstep (reset on success); the OOM
        // ladder and the resume guard are per-run (degradation persists).
        let mut retries = 0u32;
        let mut oom_rung = 0u32;
        let mut resumes = 0u32;
        loop {
            // Cooperative cancellation rides the checkpoint cadence: a
            // deadline or drain lands at the same superstep boundaries
            // where the engine would checkpoint (every superstep when
            // checkpointing is off). `recover` never retries `Cancelled`,
            // so the abort is immediate and the run's buffers unwind
            // cleanly through the normal error path.
            if policy.checkpoint_every == 0 || self.iter.is_multiple_of(policy.checkpoint_every) {
                self.q.check_cancelled()?;
            }
            if policy.checkpoint_every > 0
                && self.iter.is_multiple_of(policy.checkpoint_every)
                && checkpoint.as_ref().is_none_or(|c| c.iteration != self.iter)
            {
                checkpoint = Some(self.take_checkpoint());
            }
            match attempt(self) {
                Ok(false) => return Ok(self.iter),
                Ok(true) => {}
                Err(e) => {
                    self.recover(
                        e,
                        &policy,
                        checkpoint.as_ref(),
                        &mut retries,
                        &mut oom_rung,
                        &mut resumes,
                    )?;
                    continue;
                }
            }
            if let Some(hook) = post {
                hook(self.q, self.iter, self.fout.as_ref());
                if let Some(e) = self.q.take_fault() {
                    self.lazy_ok = false;
                    self.recover(
                        e,
                        &policy,
                        checkpoint.as_ref(),
                        &mut retries,
                        &mut oom_rung,
                        &mut resumes,
                    )?;
                    continue; // re-run the superstep, hook included
                }
            }
            retries = 0;
            self.rotate();
            // A fault during the rotate skipped the clear of the new
            // output frontier. Recover, then clear it for real — it holds
            // no legitimate inserts yet, so a full clear is always safe.
            // (A checkpoint resume resets both frontiers itself.)
            while self.q.fault_pending() {
                let e = self.q.take_fault().expect("fault_pending implies Some");
                let resumed = self.recover(
                    e,
                    &policy,
                    checkpoint.as_ref(),
                    &mut retries,
                    &mut oom_rung,
                    &mut resumes,
                )?;
                if !resumed {
                    self.fout.clear(self.q);
                }
            }
            if self.iter as usize > self.max_iters {
                return Err(SimError::Algorithm(self.diverge_msg.clone()));
            }
        }
    }

    // ---- fault recovery ---------------------------------------------------

    /// Handles one drained fault per the policy. Returns `Ok(true)` when
    /// recovery restored a checkpoint (the frontiers were reset), and
    /// `Ok(false)` when the caller should simply re-attempt. Propagates
    /// the fault when the policy is exhausted or does not cover it.
    fn recover(
        &mut self,
        e: SimError,
        policy: &RecoveryPolicy,
        checkpoint: Option<&EngineCheckpoint>,
        retries: &mut u32,
        oom_rung: &mut u32,
        resumes: &mut u32,
    ) -> SimResult<bool> {
        /// Resume attempts per run: `DeviceLost` fires once per planned
        /// ordinal, so this only guards against a pathological plan.
        const MAX_RESUMES: u32 = 8;
        match e {
            SimError::Transient { .. } => {
                if *retries >= policy.max_retries {
                    return Err(e);
                }
                *retries += 1;
                self.q
                    .advance_clock_ns((policy.backoff_ns << (*retries - 1).min(16)) as f64);
                self.repair_frontiers();
                self.record_recovery("transient", "retry", *retries);
                Ok(false)
            }
            SimError::OutOfMemory { .. } => {
                if !policy.degrade_on_oom {
                    return Err(e);
                }
                // Rung 0, taken only when direction optimization is live:
                // give back the unvisited set's buffers and pin the run to
                // push. Direction optimization is purely an optimization —
                // push computes the same result — so it is the first thing
                // to go, before the pre-existing ladder. Push-only runs
                // never see this rung and keep the old ladder unchanged.
                if self.pull_engaged && !self.pull_disabled {
                    self.pull_disabled = true;
                    self.unvisited = None;
                    self.pulling = false;
                    self.tuning.direction = Direction::Push;
                    self.repair_frontiers();
                    self.record_recovery("oom", "force-push", 1);
                    return Ok(false);
                }
                let action = match *oom_rung {
                    0 => {
                        // Rung 1: give back the bucket pool's buffers and
                        // stop dispatching bucketed.
                        self.bucket_pool = None;
                        self.pool_attempted = true;
                        self.tuning.balancing = Balancing::WorkgroupMapped;
                        "drop-bucket-pool"
                    }
                    1 => {
                        // Rung 2: force the representation minimizing
                        // device_bytes — dense drops list maintenance.
                        self.tuning.representation = Representation::Dense;
                        "force-dense"
                    }
                    2 => {
                        // Rung 3: halve per-lane work memory by disabling
                        // coarsening.
                        self.tuning.coarsening = 1;
                        "shrink-coarsening"
                    }
                    _ => return Err(e),
                };
                *oom_rung += 1;
                self.repair_frontiers();
                self.record_recovery("oom", action, *oom_rung);
                Ok(false)
            }
            SimError::DeviceLost { .. } => {
                let Some(ck) = checkpoint else {
                    return Err(e);
                };
                if *resumes >= MAX_RESUMES {
                    return Err(e);
                }
                *resumes += 1;
                self.restore_checkpoint(ck);
                self.record_recovery("device-lost", "resume", *resumes);
                Ok(true)
            }
            other => Err(other),
        }
    }

    /// Re-establishes frontier invariants after a fault: a skipped
    /// conversion kernel can leave a hybrid frontier's host-side mode
    /// flags ahead of its device state, so rebuild the derived layers from
    /// the bitmap words (the ground truth — inserts land there first) and
    /// force the next rotate to a full clear.
    fn repair_frontiers(&mut self) {
        self.fin.rebuild_from_words(self.q);
        self.fout.rebuild_from_words(self.q);
        if let Some(unv) = &self.unvisited {
            unv.rebuild_from_words(self.q);
        }
        self.lazy_ok = false;
    }

    /// Captures a checkpoint of the engine at the current superstep
    /// boundary. Entirely host-side: no kernels run, nothing is committed
    /// to the simulated clock or the profiler.
    pub fn take_checkpoint(&self) -> EngineCheckpoint {
        let frontier = self.fin.to_sorted_vec();
        // A multi-source engine also captures each member's lane mask and
        // the live-lane set — membership alone would resume every member
        // on lane 0.
        let lanes = self.multi.as_ref().and_then(|ms| {
            let view = self.fin.lane_view()?;
            Some(LaneCheckpoint {
                live: ms.live,
                masks: frontier.iter().map(|&v| view.host_mask(v)).collect(),
            })
        });
        EngineCheckpoint {
            iteration: self.iter,
            frontier,
            pulling: self.pulling,
            unvisited: self.unvisited.as_ref().map(|u| u.to_sorted_vec()),
            state: self
                .ckpt_state
                .map_or_else(Vec::new, |bufs| bufs.iter().map(|b| b.snapshot()).collect()),
            lanes,
        }
    }

    /// Revives the queue and rewinds the engine to `ck`: registered state
    /// buffers are restored word-for-word, the frontier pair is reset and
    /// reseeded, and memory accounting is recomputed from the allocation
    /// ledger so it cannot drift across restores.
    pub fn restore_checkpoint(&mut self, ck: &EngineCheckpoint) {
        self.q.revive();
        if let Some(bufs) = self.ckpt_state {
            for (buf, words) in bufs.iter().zip(&ck.state) {
                buf.restore(words);
            }
        }
        self.fin.clear(self.q);
        self.fout.clear(self.q);
        match (&ck.lanes, self.multi.as_mut()) {
            (Some(lc), Some(ms)) => {
                for (&v, &m) in ck.frontier.iter().zip(&lc.masks) {
                    self.fin.insert_host_masked(v, m);
                }
                ms.live = lc.live;
                ms.alive.store(0, 0);
            }
            _ => {
                for &v in &ck.frontier {
                    self.fin.insert_host(v);
                }
            }
        }
        self.iter = ck.iteration;
        self.lazy_ok = false;
        self.rep = self.fin.rep_kind();
        self.last_estimate = ck.frontier.len();
        self.predicted = ck.frontier.len();
        // Rewind the direction state: the hysteresis flag and, when the
        // checkpoint carried one, the unvisited set's exact membership.
        // If its buffers cannot be (re-)allocated on the revived device,
        // degrade to push rather than fail the resume.
        self.pulling = ck.pulling;
        match &ck.unvisited {
            None => self.unvisited = None,
            Some(members) => {
                if self.unvisited.is_none() {
                    self.unvisited =
                        TwoLayerFrontier::<W>::new(self.q, self.graph.vertex_count()).ok();
                }
                match &self.unvisited {
                    Some(unv) => {
                        unv.clear(self.q);
                        for &v in members {
                            unv.insert_host(v);
                        }
                    }
                    None => {
                        self.pull_disabled = true;
                        self.pulling = false;
                    }
                }
            }
        }
        self.q.device().recompute_mem_accounting();
    }

    fn record_recovery(&self, fault: &str, action: &str, attempt: u32) {
        self.q.profiler().record_recovery(RecoveryEvent {
            t_ns: self.q.now_ns(),
            superstep: self.iter,
            fault: fault.into(),
            action: action.into(),
            attempt,
        });
    }
}

/// Generic fixed-point iteration driver for algorithms without a frontier
/// convergence condition (e.g. PageRank's residual test): marks
/// `"{mark_prefix}{iter}"` and calls `body(q, iter)` until it returns
/// `Ok(false)` or `max_iters` is reached. Returns the iteration count.
pub fn fixed_point(
    q: &Queue,
    max_iters: u32,
    mark_prefix: &str,
    mut body: impl FnMut(&Queue, u32) -> SimResult<bool>,
) -> SimResult<u32> {
    let mut iter = 0u32;
    while iter < max_iters {
        q.mark(format!("{mark_prefix}{iter}"));
        let proceed = body(q, iter)?;
        iter += 1;
        if !proceed {
            break;
        }
    }
    Ok(iter)
}

/// [`fixed_point`] with the engine's fault-recovery and cancellation
/// contract, for sweep-style algorithms (PageRank) that do not run
/// through [`SuperstepEngine`]. After each sweep any injected fault is
/// drained: transient and synthetic-OOM faults re-run the *same* sweep
/// (with the policy's backoff) up to `policy.max_retries`, everything
/// else propagates. The body must therefore be restartable — reset its
/// per-sweep accumulators at the top and commit its persistent state in
/// a single launch at the end, so a skipped launch prefix leaves the
/// persistent state untouched. An attached [`CancelToken`] is checked
/// before every sweep, giving deadline aborts the same per-iteration
/// granularity the engine's checkpoint cadence provides.
///
/// [`CancelToken`]: sygraph_sim::CancelToken
pub fn fixed_point_resilient(
    q: &Queue,
    policy: &RecoveryPolicy,
    max_iters: u32,
    mark_prefix: &str,
    mut body: impl FnMut(&Queue, u32) -> SimResult<bool>,
) -> SimResult<u32> {
    let mut iter = 0u32;
    let mut retries = 0u32;
    while iter < max_iters {
        q.check_cancelled()?;
        q.mark(format!("{mark_prefix}{iter}"));
        let proceed = body(q, iter)?;
        if let Some(e) = q.take_fault() {
            let retryable = matches!(e, SimError::Transient { .. } | SimError::OutOfMemory { .. });
            if !retryable || retries >= policy.max_retries {
                return Err(e);
            }
            retries += 1;
            q.advance_clock_ns((policy.backoff_ns << (retries - 1).min(16)) as f64);
            continue;
        }
        retries = 0;
        iter += 1;
        if !proceed {
            break;
        }
    }
    Ok(iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{BitmapFrontier, Frontier, TwoLayerFrontier};
    use crate::graph::device::DeviceCsr;
    use crate::graph::host::CsrHost;
    use crate::inspector::{inspect, OptConfig};
    use crate::types::INF_DIST;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn chain(q: &Queue, n: u32) -> DeviceCsr {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        DeviceCsr::upload(q, &CsrHost::from_edges(n as usize, &edges)).unwrap()
    }

    fn bfs_via_engine(q: &Queue, g: &DeviceCsr, n: usize, fused: bool) -> (Vec<u32>, u32) {
        let tuning = inspect(q.profile(), &OptConfig::all(), n);
        let dist = q.malloc_device::<u32>(n).unwrap();
        q.fill(&dist, INF_DIST);
        dist.store(0, 0);
        let fin = Box::new(TwoLayerFrontier::<u32>::new(q, n).unwrap());
        let fout = Box::new(TwoLayerFrontier::<u32>::new(q, n).unwrap());
        fin.insert_host(0);
        let mut engine = SuperstepEngine::new(q, g, tuning, fin, fout)
            .fused(fused)
            .mark_prefix("ebfs_iter")
            .max_iters(n + 1, "test BFS diverged");
        let iters = engine
            .run(
                |l, _i, _u, v, _e, _w| l.load(&dist, v as usize) == INF_DIST,
                Some(&|l, i, v| l.store(&dist, v as usize, i + 1)),
            )
            .unwrap();
        (dist.to_vec(), iters)
    }

    #[test]
    fn engine_bfs_matches_expected_distances() {
        let q = queue();
        let g = chain(&q, 6);
        let (dist, iters) = bfs_via_engine(&q, &g, 6, false);
        assert_eq!(dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(iters, 6, "5 expansion levels + final empty check");
    }

    #[test]
    fn fused_and_unfused_are_bit_identical() {
        let q = queue();
        let g = chain(&q, 40);
        let (a, ia) = bfs_via_engine(&q, &g, 40, false);
        let (b, ib) = bfs_via_engine(&q, &g, 40, true);
        assert_eq!(a, b);
        assert_eq!(ia, ib);
    }

    #[test]
    fn fused_superstep_launches_fewer_kernels() {
        let q = queue();
        let g = chain(&q, 32);
        let k0 = q.profiler().kernel_count();
        let (_, iters_unfused) = bfs_via_engine(&q, &g, 32, false);
        let k1 = q.profiler().kernel_count();
        let (_, iters_fused) = bfs_via_engine(&q, &g, 32, true);
        let k2 = q.profiler().kernel_count();
        assert_eq!(iters_unfused, iters_fused);
        let unfused = k1 - k0;
        let fused = k2 - k1;
        assert!(
            fused < unfused,
            "fused path must launch strictly fewer kernels ({fused} vs {unfused})"
        );
        // Per full superstep: compact + advance(+fused compute) + lazy
        // clear = 3 fused, versus compact + advance + compute's
        // (compact + kernel) + lazy clear = 5 unfused.
        let supersteps = (iters_fused as usize).max(1);
        assert!(fused / supersteps < unfused / supersteps);
    }

    #[test]
    fn lazy_clear_keeps_frontier_correct_across_steps() {
        // Random-ish fan-out graph: rotating with lazy clears must leave
        // no stale bits behind.
        let q = queue();
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|v| {
                [
                    (v, (v * 7 + 3) % n),
                    (v, (v * 13 + 11) % n),
                    (v, (v + 1) % n),
                ]
            })
            .collect();
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(n as usize, &edges)).unwrap();
        let (dist_engine, _) = bfs_via_engine(&q, &g, n as usize, true);
        // Reference: host BFS.
        let mut want = vec![INF_DIST; n as usize];
        want[0] = 0;
        let mut queue_ = std::collections::VecDeque::from([0u32]);
        let host = CsrHost::from_edges(n as usize, &edges);
        while let Some(u) = queue_.pop_front() {
            let (lo, hi) = (host.offsets[u as usize], host.offsets[u as usize + 1]);
            for e in lo..hi {
                let v = host.indices[e as usize];
                if want[v as usize] == INF_DIST {
                    want[v as usize] = want[u as usize] + 1;
                    queue_.push_back(v);
                }
            }
        }
        assert_eq!(dist_engine, want);
    }

    #[test]
    fn single_layer_bitmap_falls_back_cleanly() {
        let q = queue();
        let n = 20usize;
        let g = chain(&q, n as u32);
        let tuning = inspect(q.profile(), &OptConfig::baseline(), n);
        let dist = q.malloc_device::<u32>(n).unwrap();
        q.fill(&dist, INF_DIST);
        dist.store(0, 0);
        let fin = Box::new(BitmapFrontier::<u64>::new(&q, n).unwrap());
        let fout = Box::new(BitmapFrontier::<u64>::new(&q, n).unwrap());
        fin.insert_host(0);
        let mut engine = SuperstepEngine::new(&q, &g, tuning, fin, fout)
            .fused(true)
            .max_iters(n + 1, "diverged");
        let iters = engine
            .run(
                |l, _i, _u, v, _e, _w| l.load(&dist, v as usize) == INF_DIST,
                Some(&|l, i, v| l.store(&dist, v as usize, i + 1)),
            )
            .unwrap();
        assert_eq!(iters, 20);
        assert_eq!(dist.to_vec(), (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn post_step_hook_reactivates_vertices() {
        // A hook that keeps re-inserting vertex 0 for three extra rounds:
        // the engine must keep stepping until the hook stops.
        let q = queue();
        let g = chain(&q, 4);
        let tuning = inspect(q.profile(), &OptConfig::all(), 4);
        let fin = Box::new(TwoLayerFrontier::<u32>::new(&q, 4).unwrap());
        let fout = Box::new(TwoLayerFrontier::<u32>::new(&q, 4).unwrap());
        fin.insert_host(0);
        let mut engine = SuperstepEngine::new(&q, &g, tuning, fin, fout).max_iters(64, "diverged");
        let iters = engine
            .run_with_post(
                |_l, _i, _u, _v, _e, _w| false,
                NO_COMPUTE,
                Some(&|q: &Queue, iter: u32, out: &dyn BitmapLike<u32>| {
                    if iter < 3 {
                        let _ = q;
                        out.insert_host(0);
                    }
                }),
            )
            .unwrap();
        // steps at iter 0,1,2 re-seed; step at iter 3 produces nothing;
        // step at iter 4 sees an empty frontier and converges.
        assert_eq!(iters, 4);
    }

    #[test]
    fn rotate_retaining_keeps_levels() {
        let q = queue();
        let g = chain(&q, 5);
        let tuning = inspect(q.profile(), &OptConfig::all(), 5);
        let fin = Box::new(TwoLayerFrontier::<u32>::new(&q, 5).unwrap());
        let fout = Box::new(TwoLayerFrontier::<u32>::new(&q, 5).unwrap());
        fin.insert_host(0);
        let seen = q.malloc_device::<u32>(5).unwrap();
        let mut engine = SuperstepEngine::new(&q, &g, tuning, fin, fout);
        let mut levels: Vec<Box<dyn BitmapLike<u32>>> = Vec::new();
        while engine.step(
            |l, _i, _u, v, _e, _w| l.fetch_or(&seen, v as usize, 1) == 0,
            NO_COMPUTE,
        ) {
            let fresh = Box::new(TwoLayerFrontier::<u32>::new(&q, 5).unwrap());
            levels.push(engine.rotate_retaining(fresh));
        }
        assert_eq!(levels.len(), 5, "every level retained, deepest included");
        for (d, level) in levels.iter().enumerate() {
            assert_eq!(level.to_sorted_vec(), vec![d as u32]);
        }
    }

    #[test]
    fn bucketed_engine_matches_and_pools_buffers() {
        use crate::inspector::Balancing;
        let q = queue();
        // Hub 0 → 1..=40, then a chain off vertex 1: several supersteps,
        // the first of which is hub-dominated.
        let mut edges: Vec<(u32, u32)> = (1..=40).map(|v| (0, v)).collect();
        edges.extend([(1, 41), (41, 42), (42, 43)]);
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(44, &edges)).unwrap();
        let bfs = |balancing: Balancing| {
            let mut t = inspect(q.profile(), &OptConfig::all(), 44);
            t.balancing = balancing;
            t.small_max_degree = 2;
            t.large_min_degree = 8;
            let dist = q.malloc_device::<u32>(44).unwrap();
            q.fill(&dist, INF_DIST);
            dist.store(0, 0);
            let fin = Box::new(TwoLayerFrontier::<u32>::new(&q, 44).unwrap());
            let fout = Box::new(TwoLayerFrontier::<u32>::new(&q, 44).unwrap());
            fin.insert_host(0);
            let mut engine = SuperstepEngine::new(&q, &g, t, fin, fout).max_iters(64, "diverged");
            let allocs_before = q.profiler().mem_events().len();
            let iters = engine
                .run(
                    |l, _i, _u, v, _e, _w| l.load(&dist, v as usize) == INF_DIST,
                    Some(&|l, i, v| l.store(&dist, v as usize, i + 1)),
                )
                .unwrap();
            let allocs = q.profiler().mem_events().len() - allocs_before;
            (dist.to_vec(), iters, allocs)
        };
        let (d_wg, i_wg, _) = bfs(Balancing::WorkgroupMapped);
        let (d_bk, i_bk, allocs_bk) = bfs(Balancing::Bucketed);
        assert_eq!(d_wg, d_bk, "balancing must not change BFS results");
        assert_eq!(i_wg, i_bk);
        assert!(
            allocs_bk <= 5,
            "bucket pool allocated once per engine (5 buffers), not per \
             superstep; saw {allocs_bk} allocations"
        );
    }

    /// BFS over `edges` with the frontier pair matching the requested
    /// representation policy (mirroring what `make_frontier` hands the
    /// algorithms). Returns distances, superstep count, switch count and
    /// the profiler's per-superstep representation trace.
    fn bfs_with_rep(
        rep: crate::inspector::Representation,
        edges: &[(u32, u32)],
        n: usize,
    ) -> (Vec<u32>, u32, u32, Vec<sygraph_sim::RepEvent>) {
        use crate::frontier::{HybridFrontier, SparseFrontier};
        use crate::inspector::Representation;
        let q = queue();
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(n, edges)).unwrap();
        let tuning = inspect(q.profile(), &OptConfig::with_representation(rep), n);
        let dist = q.malloc_device::<u32>(n).unwrap();
        q.fill(&dist, INF_DIST);
        dist.store(0, 0);
        let (fin, fout): (Box<dyn BitmapLike<u32>>, Box<dyn BitmapLike<u32>>) = match rep {
            Representation::Dense => (
                Box::new(TwoLayerFrontier::<u32>::new(&q, n).unwrap()),
                Box::new(TwoLayerFrontier::<u32>::new(&q, n).unwrap()),
            ),
            Representation::Sparse => (
                Box::new(SparseFrontier::<u32>::new(&q, n).unwrap()),
                Box::new(SparseFrontier::<u32>::new(&q, n).unwrap()),
            ),
            Representation::Auto => (
                Box::new(HybridFrontier::<u32>::new(&q, n).unwrap()),
                Box::new(HybridFrontier::<u32>::new(&q, n).unwrap()),
            ),
        };
        fin.insert_host(0);
        let mut engine =
            SuperstepEngine::new(&q, &g, tuning, fin, fout).max_iters(n + 2, "rep BFS diverged");
        engine
            .run(
                |l, _i, _u, v, _e, _w| l.load(&dist, v as usize) == INF_DIST,
                Some(&|l, i, v| l.store(&dist, v as usize, i + 1)),
            )
            .unwrap();
        let switches = engine.rep_switches();
        let iters = engine.iteration();
        (dist.to_vec(), iters, switches, q.profiler().rep_events())
    }

    /// Chain into a 4-way split whose branches each fan 10 wide, staying
    /// 40 wide one more level: the frontier sequence is 1, 1, 4, 40, 40
    /// with max degree 10, small enough that the one-word hub guard never
    /// forces dense — only the exact count of 40 > 640/32 does, at the
    /// hysteresis exit.
    fn fan_edges() -> (Vec<(u32, u32)>, usize) {
        let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
        edges.extend((2..6).map(|v| (1u32, v)));
        for v in 2..6u32 {
            edges.extend((0..10).map(|t| (v, 10 + (v - 2) * 10 + t)));
        }
        edges.extend((10..50).map(|v| (v, v + 100)));
        (edges, 640)
    }

    #[test]
    fn representation_policies_are_bit_identical() {
        use crate::inspector::Representation;
        let (edges, n) = fan_edges();
        let (d_dense, i_dense, s_dense, _) = bfs_with_rep(Representation::Dense, &edges, n);
        let (d_sparse, i_sparse, s_sparse, ev_sparse) =
            bfs_with_rep(Representation::Sparse, &edges, n);
        let (d_auto, i_auto, s_auto, _) = bfs_with_rep(Representation::Auto, &edges, n);
        assert_eq!(d_dense, d_sparse, "sparse BFS must be bit-identical");
        assert_eq!(d_dense, d_auto, "auto BFS must be bit-identical");
        assert_eq!(i_dense, i_sparse);
        assert_eq!(i_dense, i_auto);
        assert_eq!(s_dense, 0, "dense policy never switches");
        assert_eq!(s_sparse, 0, "forced sparse never switches");
        assert!(s_auto >= 1, "auto must switch on the widening fan");
        assert!(ev_sparse.iter().all(|e| e.rep == "sparse"));
    }

    #[test]
    fn auto_representation_switches_at_the_hysteresis_exit() {
        use crate::inspector::Representation;
        let (edges, n) = fan_edges();
        let (_, iters, switches, events) = bfs_with_rep(Representation::Auto, &edges, n);
        // Supersteps 0–3 run sparse (populations 1, 1, 4 and 40 — the
        // 40-wide step still *enters* on the lagged estimate); the exact
        // count of 40 > 640/32 then forces dense for superstep 4.
        assert_eq!(iters, 5);
        assert_eq!(switches, 1);
        let reps: Vec<&str> = events.iter().map(|e| e.rep.as_str()).collect();
        assert_eq!(reps, vec!["sparse", "sparse", "sparse", "sparse", "dense"]);
        assert_eq!(
            events.iter().filter(|e| e.switched).count(),
            switches as usize,
            "profiler switch trace must agree with the engine counter"
        );
        assert!(events[4].switched && events[4].superstep == 4);
    }

    #[test]
    fn auto_handles_list_overflow_by_falling_back_dense() {
        use crate::inspector::Representation;
        // 33 mid-degree parents — wider than one word, so the hub guard
        // stays out of it — fan to 3300 targets. The output estimate
        // (33 ≤ n/32) keeps the output's list live, the 3300 inserts
        // overflow its n/8 = 512 slots, and the next adoption refuses
        // sparse on the overflow proof alone: the wide superstep runs
        // dense and correctness is unaffected.
        let n = 4096usize;
        let mut edges: Vec<(u32, u32)> = vec![(0, 1)];
        edges.extend((2..35).map(|v| (1u32, v)));
        for p in 2..35u32 {
            edges.extend((0..100).map(|t| (p, 100 + (p - 2) * 100 + t)));
        }
        let (d_auto, _, _, events) = bfs_with_rep(Representation::Auto, &edges, n);
        let (d_dense, _, _, _) = bfs_with_rep(Representation::Dense, &edges, n);
        assert_eq!(d_auto, d_dense);
        assert_eq!(
            events.last().map(|e| e.rep.as_str()),
            Some("dense"),
            "the 3300-wide superstep must have run dense after overflow"
        );
    }

    #[test]
    fn max_iters_guard_errors() {
        let q = queue();
        // Self-loop keeps the frontier alive forever.
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(2, &[(0, 0)])).unwrap();
        let tuning = inspect(q.profile(), &OptConfig::all(), 2);
        let fin = Box::new(TwoLayerFrontier::<u32>::new(&q, 2).unwrap());
        let fout = Box::new(TwoLayerFrontier::<u32>::new(&q, 2).unwrap());
        fin.insert_host(0);
        let mut engine =
            SuperstepEngine::new(&q, &g, tuning, fin, fout).max_iters(5, "went forever");
        let err = engine
            .run(|_l, _i, _u, _v, _e, _w| true, NO_COMPUTE)
            .unwrap_err();
        assert!(matches!(err, SimError::Algorithm(m) if m == "went forever"));
    }

    #[test]
    fn fixed_point_runs_until_body_stops() {
        let q = queue();
        let mut sum = 0u32;
        let iters = fixed_point(&q, 100, "fp_iter", |_q, i| {
            sum += i;
            Ok(i < 4)
        })
        .unwrap();
        assert_eq!(iters, 5);
        assert_eq!(sum, 10, "0+1+2+3+4");
        assert!(q.profiler().markers().iter().any(|m| m.label == "fp_iter4"));
    }

    #[test]
    fn fixed_point_respects_max_iters() {
        let q = queue();
        let iters = fixed_point(&q, 3, "fp", |_q, _i| Ok(true)).unwrap();
        assert_eq!(iters, 3);
    }

    // --- engine-level direction optimization ---

    use crate::graph::Graph;

    /// Deterministic fan-out graph (3 out-edges per vertex) whose BFS
    /// wavefront explodes past `n / alpha` within a few supersteps.
    fn wide_host(n: u32) -> CsrHost {
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|v| {
                [
                    (v, (v * 7 + 3) % n),
                    (v, (v * 13 + 11) % n),
                    (v, (v + 1) % n),
                ]
            })
            .collect();
        CsrHost::from_edges(n as usize, &edges)
    }

    /// BFS through the engine with an explicit direction policy and the
    /// `Unvisited` pull scope. Returns (distances, supersteps, switches).
    fn bfs_direction<G: DeviceGraphView + ?Sized>(
        q: &Queue,
        g: &G,
        n: usize,
        direction: Direction,
    ) -> (Vec<u32>, u32, u32) {
        let mut tuning = inspect(q.profile(), &OptConfig::all(), n);
        tuning.direction = direction;
        let dist = q.malloc_device::<u32>(n).unwrap();
        q.fill(&dist, INF_DIST);
        dist.store(0, 0);
        let fin = Box::new(TwoLayerFrontier::<u32>::new(q, n).unwrap());
        let fout = Box::new(TwoLayerFrontier::<u32>::new(q, n).unwrap());
        fin.insert_host(0);
        let mut engine = SuperstepEngine::new(q, g, tuning, fin, fout)
            .mark_prefix("dirbfs_iter")
            .max_iters(n + 1, "direction-test BFS diverged")
            .pull_scope(PullCandidates::Unvisited);
        let iters = engine
            .run(
                |l, _i, _u, v, _e, _w| l.load_atomic(&dist, v as usize) == INF_DIST,
                Some(&|l, i, v| l.store_atomic(&dist, v as usize, i + 1)),
            )
            .unwrap();
        (dist.to_vec(), iters, engine.direction_switches())
    }

    #[test]
    fn all_direction_policies_are_bit_identical() {
        let q = queue();
        let host = wide_host(256);
        let g = Graph::with_pull(&q, &host).unwrap();
        let (push, ip, _) = bfs_direction(&q, &g, 256, Direction::Push);
        let (pull, il, _) = bfs_direction(&q, &g, 256, Direction::Pull);
        let (auto, ia, _) = bfs_direction(&q, &g, 256, Direction::Auto);
        assert_eq!(push, pull);
        assert_eq!(push, auto);
        assert_eq!(ip, il);
        assert_eq!(ip, ia);
    }

    #[test]
    fn auto_pulls_on_the_wide_supersteps_and_traces() {
        let q = queue();
        let host = wide_host(256);
        let g = Graph::with_pull(&q, &host).unwrap();
        let t0 = q.profiler().direction_events().len();
        let (_, iters, switches) = bfs_direction(&q, &g, 256, Direction::Auto);
        let dirs = &q.profiler().direction_events()[t0..];
        // The final (empty) superstep converges before recording and is
        // not counted: the trace covers exactly the live supersteps.
        assert_eq!(dirs.len() as u32, iters);
        assert!(
            dirs.windows(2)
                .all(|w| w[0].superstep + 1 == w[1].superstep),
            "trace must be per-superstep: {dirs:?}"
        );
        assert_eq!(dirs[0].direction, "push", "single-seed superstep pushes");
        assert!(
            dirs.iter().any(|e| e.direction == "pull"),
            "the exploded wavefront must pull: {dirs:?}"
        );
        assert_eq!(
            switches as usize,
            dirs.iter().filter(|e| e.switched).count(),
            "engine counter must agree with the profiler trace"
        );
        // Hysteresis: push→pull (and possibly back for the tail), never
        // per-superstep flapping.
        assert!(switches <= 2, "direction flapped: {dirs:?}");
    }

    #[test]
    fn forced_pull_uses_pull_kernels_only() {
        let q = queue();
        let host = wide_host(128);
        let g = Graph::with_pull(&q, &host).unwrap();
        let (_, iters, switches) = bfs_direction(&q, &g, 128, Direction::Pull);
        assert_eq!(switches, 0);
        let dirs = q.profiler().direction_events();
        assert_eq!(dirs.len() as u32, iters);
        assert!(dirs.iter().all(|e| e.direction == "pull"), "{dirs:?}");
        assert!(
            q.profiler()
                .kernels()
                .iter()
                .any(|k| k.name.starts_with("advance_pull")),
            "pull supersteps must launch the pull kernel family"
        );
    }

    #[test]
    fn engine_without_pull_view_degrades_to_push() {
        // Forcing pull on a plain CSR must not error: the engine pins
        // itself to push and the traversal completes unchanged.
        let q = queue();
        let host = wide_host(96);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let (dist, _, switches) = bfs_direction(&q, &g, 96, Direction::Pull);
        let g2 = Graph::with_pull(&q, &host).unwrap();
        let (want, _, _) = bfs_direction(&q, &g2, 96, Direction::Push);
        assert_eq!(dist, want);
        assert_eq!(switches, 0);
        let dirs = q.profiler().direction_events();
        assert!(dirs.iter().all(|e| e.direction == "push"), "{dirs:?}");
    }

    #[test]
    fn unvisited_set_stays_exact_across_push_supersteps() {
        // Chain: Auto never reaches the pull threshold, so every
        // superstep pushes — but the engine must still keep the seeded
        // unvisited set in sync (subtracting each output), because a
        // later explosion could engage pull at any superstep.
        let q = queue();
        let edges: Vec<(u32, u32)> = (0..99).map(|v| (v, v + 1)).collect();
        let host = CsrHost::from_edges(100, &edges);
        let g = Graph::with_pull(&q, &host).unwrap();

        let tuning = inspect(q.profile(), &OptConfig::all(), 100);
        let dist = q.malloc_device::<u32>(100).unwrap();
        q.fill(&dist, INF_DIST);
        dist.store(0, 0);
        let fin = Box::new(TwoLayerFrontier::<u32>::new(&q, 100).unwrap());
        let fout = Box::new(TwoLayerFrontier::<u32>::new(&q, 100).unwrap());
        fin.insert_host(0);
        let mut engine = SuperstepEngine::new(&q, &g, tuning, fin, fout)
            .mark_prefix("unv_iter")
            .max_iters(101, "diverged")
            .pull_scope(PullCandidates::Unvisited);
        let mut steps = 0u32;
        while engine.step(
            |l, _i, _u, v, _e, _w| l.load_atomic(&dist, v as usize) == INF_DIST,
            Some(&|l, i, v| l.store_atomic(&dist, v as usize, i + 1)),
        ) {
            steps += 1;
            // Superstep k discovers vertex k+1, so after the k-th step
            // (1-based `steps`) the unvisited set is exactly steps+1..n.
            let unv = engine
                .unvisited
                .as_ref()
                .expect("seeded at superstep 0")
                .to_sorted_vec();
            assert_eq!(
                unv,
                (steps + 1..100).collect::<Vec<u32>>(),
                "after step {steps}"
            );
            engine.rotate();
        }
    }

    // ---- batched multi-source mode -------------------------------------

    use crate::frontier::{lane_words, LaneFrontier};

    /// Single-source engine BFS from an arbitrary source (the serial
    /// reference the batched runs are checked against).
    fn bfs_from(q: &Queue, g: &DeviceCsr, n: usize, src: u32) -> Vec<u32> {
        let tuning = inspect(q.profile(), &OptConfig::all(), n);
        let dist = q.malloc_device::<u32>(n).unwrap();
        q.fill(&dist, INF_DIST);
        dist.store(src as usize, 0);
        let fin = Box::new(TwoLayerFrontier::<u32>::new(q, n).unwrap());
        let fout = Box::new(TwoLayerFrontier::<u32>::new(q, n).unwrap());
        fin.insert_host(src);
        let mut engine = SuperstepEngine::new(q, g, tuning, fin, fout)
            .mark_prefix("sbfs_iter")
            .max_iters(n + 1, "serial BFS diverged");
        engine
            .run(
                |l, _i, _u, v, _e, _w| l.load_atomic(&dist, v as usize) == INF_DIST,
                Some(&|l, i, v| l.store_atomic(&dist, v as usize, i + 1)),
            )
            .unwrap();
        dist.to_vec()
    }

    /// Batched engine BFS: per-lane depths in a `n × width` buffer plus a
    /// lane-packed visited array (the same shape `algos::multi` uses).
    struct MultiBfs {
        depth: DeviceBuffer<u32>,
        vis: DeviceBuffer<u64>,
        width: u32,
        live: u64,
    }

    impl MultiBfs {
        fn seed(q: &Queue, n: usize, sources: &[u32], width: u32) -> (Self, LaneFrontier<u32>) {
            assert!(sources.len() <= width as usize);
            let depth = q.malloc_device::<u32>(n * width as usize).unwrap();
            q.fill(&depth, INF_DIST);
            let vis = q.malloc_device::<u64>(lane_words(n, width).max(1)).unwrap();
            q.fill(&vis, 0u64);
            let fin = LaneFrontier::<u32>::new(q, n, width).unwrap();
            let mut live = 0u64;
            for (i, &s) in sources.iter().enumerate() {
                live |= 1 << i;
                fin.insert_host_masked(s, 1 << i);
                depth.store(s as usize * width as usize + i, 0);
                let (vw, vs) = lane_locate(s, width);
                vis.fetch_or(vw, 1u64 << (vs + i as u32));
            }
            (
                MultiBfs {
                    depth,
                    vis,
                    width,
                    live,
                },
                fin,
            )
        }

        fn run(&self, engine: &mut SuperstepEngine<'_, u32, DeviceCsr>) -> SimResult<u32> {
            let width = self.width;
            let vis_a = self.vis.alias();
            let vis_c = self.vis.alias();
            let depth_c = self.depth.alias();
            engine.run_multi(
                move |l, _i, _u, v, _e, _w, m| {
                    let (vw, vs) = lane_locate(v, width);
                    m & !((l.load_atomic::<u64>(&vis_a, vw) >> vs) & LaneView::mask_all(width))
                },
                Some(&move |l, i, v, fresh| {
                    let (vw, vs) = lane_locate(v, width);
                    l.fetch_or(&vis_c, vw, fresh << vs);
                    let mut f = fresh;
                    while f != 0 {
                        let b = f.trailing_zeros();
                        l.store_atomic(&depth_c, v as usize * width as usize + b as usize, i + 1);
                        f &= f - 1;
                    }
                }),
            )
        }

        /// Lane `i`'s distance vector.
        fn lane(&self, n: usize, i: usize) -> Vec<u32> {
            let all = self.depth.to_vec();
            (0..n).map(|v| all[v * self.width as usize + i]).collect()
        }
    }

    #[test]
    fn multi_source_bfs_matches_serial_runs() {
        let q = queue();
        let host = wide_host(256);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let sources = [0u32, 17, 99, 100, 255];
        for width in [8u32, 32] {
            let q2 = queue();
            let g2 = DeviceCsr::upload(&q2, &host).unwrap();
            let (mb, fin) = MultiBfs::seed(&q2, 256, &sources, width);
            let fout = LaneFrontier::<u32>::new(&q2, 256, width).unwrap();
            let tuning = inspect(q2.profile(), &OptConfig::all(), 256);
            let mut engine = SuperstepEngine::new(&q2, &g2, tuning, Box::new(fin), Box::new(fout))
                .mark_prefix("mbfs_iter")
                .max_iters(257, "multi BFS diverged")
                .multi_source(width, mb.live)
                .unwrap();
            mb.run(&mut engine).unwrap();
            assert_eq!(engine.live_lanes(), 0, "every lane must retire");
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(
                    mb.lane(256, i),
                    bfs_from(&q, &g, 256, s),
                    "lane {i} (source {s}, width {width})"
                );
            }
        }
    }

    #[test]
    fn lane_census_is_monotone_and_retires_every_lane() {
        let q = queue();
        let g = chain(&q, 64);
        // Sources at different depths from the chain end retire at
        // different supersteps.
        let sources = [56u32, 32, 0];
        let (mb, fin) = MultiBfs::seed(&q, 64, &sources, 8);
        let fout = LaneFrontier::<u32>::new(&q, 64, 8).unwrap();
        let tuning = inspect(q.profile(), &OptConfig::all(), 64);
        let mut engine = SuperstepEngine::new(&q, &g, tuning, Box::new(fin), Box::new(fout))
            .mark_prefix("census_iter")
            .max_iters(65, "diverged")
            .multi_source(8, mb.live)
            .unwrap();
        mb.run(&mut engine).unwrap();
        let events = q.profiler().lane_events();
        assert!(!events.is_empty());
        let mut prev = u32::MAX;
        for e in &events {
            assert!(e.active <= prev, "active lanes must be non-increasing");
            prev = e.active;
        }
        assert_eq!(events.last().unwrap().active, 0);
        assert_eq!(
            events.iter().map(|e| e.retired).sum::<u32>(),
            3,
            "each lane retires exactly once"
        );
        // The chain tails differ by 24 supersteps, so the census must
        // show staggered retirement, not one mass exit.
        assert!(events.iter().filter(|e| e.retired > 0).count() >= 2);
        assert_eq!(engine.live_lanes(), 0);
    }

    #[test]
    fn lane_checkpoint_restores_mid_batch() {
        let q = queue();
        let host = wide_host(128);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let sources = [0u32, 5, 77];
        let (mb, fin) = MultiBfs::seed(&q, 128, &sources, 8);
        let fout = LaneFrontier::<u32>::new(&q, 128, 8).unwrap();
        let tuning = inspect(q.profile(), &OptConfig::all(), 128);
        let ckpt_bufs: [&dyn CheckpointState; 2] = [&mb.depth, &mb.vis];
        let mut engine = SuperstepEngine::new(&q, &g, tuning, Box::new(fin), Box::new(fout))
            .mark_prefix("ck_iter")
            .max_iters(129, "diverged")
            .checkpoint_state(&ckpt_bufs)
            .multi_source(8, mb.live)
            .unwrap();

        // Run two supersteps by hand, checkpoint, finish, and keep the
        // converged depths as the baseline.
        let width = mb.width;
        let vis_a = mb.vis.alias();
        let vis_c = mb.vis.alias();
        let depth_c = mb.depth.alias();
        let adv = move |l: &mut ItemCtx<'_>,
                        _i: u32,
                        _u: VertexId,
                        v: VertexId,
                        _e: EdgeId,
                        _w: Weight,
                        m: u64| {
            let (vw, vs) = lane_locate(v, width);
            m & !((l.load_atomic::<u64>(&vis_a, vw) >> vs) & LaneView::mask_all(width))
        };
        let cmp = move |l: &mut ItemCtx<'_>, i: u32, v: VertexId, fresh: u64| {
            let (vw, vs) = lane_locate(v, width);
            l.fetch_or(&vis_c, vw, fresh << vs);
            let mut f = fresh;
            while f != 0 {
                let b = f.trailing_zeros();
                l.store_atomic(&depth_c, v as usize * width as usize + b as usize, i + 1);
                f &= f - 1;
            }
        };
        for _ in 0..2 {
            assert!(engine.step_multi(&adv, Some(&cmp)));
            engine.rotate();
        }
        let ck = engine.take_checkpoint();
        assert_eq!(ck.iteration, 2);
        let lanes = ck.lanes.as_ref().expect("multi engines checkpoint lanes");
        assert_eq!(lanes.masks.len(), ck.frontier.len());
        assert!(lanes.masks.iter().all(|&m| m != 0));
        let frontier_at_ck = ck.frontier.clone();
        let live_at_ck = lanes.live;
        while engine.step_multi(&adv, Some(&cmp)) {
            engine.rotate();
        }
        let baseline: Vec<u32> = mb.depth.to_vec();

        // Restore: frontier membership, masks and live lanes rewind, and
        // re-running converges to bit-identical depths.
        engine.restore_checkpoint(&ck);
        assert_eq!(engine.iteration(), 2);
        assert_eq!(engine.live_lanes(), live_at_ck);
        let (fin_now, _) = engine.frontiers();
        assert_eq!(fin_now.to_sorted_vec(), frontier_at_ck);
        let view = fin_now.lane_view().unwrap();
        for (v, m) in frontier_at_ck.iter().zip(&lanes.masks) {
            assert_eq!(view.host_mask(*v), *m, "vertex {v} mask");
        }
        while engine.step_multi(&adv, Some(&cmp)) {
            engine.rotate();
        }
        assert_eq!(mb.depth.to_vec(), baseline);
        assert_eq!(engine.live_lanes(), 0);
    }
}
