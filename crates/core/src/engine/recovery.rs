//! Self-healing policy for the superstep engine: retry, OOM degradation
//! and checkpoint/resume.
//!
//! A [`RecoveryPolicy`] (carried on [`Tuning`](crate::inspector::Tuning),
//! overridable per engine) tells [`SuperstepEngine`] how to respond to the
//! three fault classes the simulator can surface:
//!
//! * **Transient** launch failures — re-run the superstep from its input
//!   frontier, which is immutable until `rotate`. Inserts are idempotent
//!   bitmap ORs and the algorithms' functors are monotone, so re-running
//!   unions correctly with whatever the failed attempt already did.
//! * **OutOfMemory** — degrade along a ladder, re-attempting after each
//!   rung: (1) drop the bucketed-balancing pools and fall back to
//!   workgroup-mapped advance, (2) force the dense representation (no
//!   sparse list maintenance, the layout minimizing `device_bytes`),
//!   (3) shrink coarsening to 1.
//! * **DeviceLost** (sticky) — revive the queue and resume from the most
//!   recent [`EngineCheckpoint`], taken every `checkpoint_every`
//!   supersteps. Checkpoints capture the input frontier, the iteration
//!   counter and every algorithm buffer registered through
//!   [`CheckpointState`] — entirely host-side, so an idle policy has zero
//!   effect on the simulated clock or the profiler's kernel stream.
//!
//! [`SuperstepEngine`]: crate::engine::SuperstepEngine

use serde::{Deserialize, Serialize};
use sygraph_sim::{DeviceBuffer, DeviceScalar};

use crate::types::VertexId;

/// How the engine responds to faults. The default is all-disabled: every
/// fault propagates as an error, exactly as before this layer existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Transient-fault retries per superstep (0 = propagate immediately).
    pub max_retries: u32,
    /// Simulated-time backoff before retry `k`: `backoff_ns << (k-1)`.
    pub backoff_ns: u64,
    /// Walk the degradation ladder on OOM instead of propagating.
    pub degrade_on_oom: bool,
    /// Take an [`EngineCheckpoint`] every `k` supersteps (0 = never);
    /// required for `DeviceLost` recovery.
    pub checkpoint_every: u32,
}

impl RecoveryPolicy {
    /// A policy with every recovery mechanism on: `retries` transient
    /// retries (1 µs base backoff), the OOM ladder, and a checkpoint
    /// every `checkpoint_every` supersteps.
    pub fn resilient(retries: u32, checkpoint_every: u32) -> Self {
        RecoveryPolicy {
            max_retries: retries,
            backoff_ns: 1_000,
            degrade_on_oom: true,
            checkpoint_every,
        }
    }

    /// Whether any recovery mechanism is enabled.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0 || self.degrade_on_oom || self.checkpoint_every > 0
    }
}

/// Algorithm state that must survive a `DeviceLost`: the distance/label
/// buffers of BFS/SSSP/CC implement this (via the blanket impl for any
/// `DeviceBuffer`) and are registered with
/// [`SuperstepEngine::checkpoint_state`](crate::engine::SuperstepEngine::checkpoint_state).
/// Snapshot and restore are host-side word copies — no kernels run.
pub trait CheckpointState: Sync {
    fn snapshot(&self) -> Vec<u64>;
    fn restore(&self, words: &[u64]);
}

impl<T: DeviceScalar> CheckpointState for DeviceBuffer<T> {
    fn snapshot(&self) -> Vec<u64> {
        self.snapshot_words()
    }

    fn restore(&self, words: &[u64]) {
        self.restore_words(words)
    }
}

/// A consistent engine snapshot taken at a superstep boundary (before the
/// superstep ran): enough to deterministically re-execute from
/// `iteration` after the device is lost.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    /// Superstep the engine was about to run.
    pub iteration: u32,
    /// The input frontier's members at that boundary.
    pub frontier: Vec<VertexId>,
    /// Whether the previous superstep ran in the pull direction (feeds
    /// the Beamer hysteresis after a resume).
    pub pulling: bool,
    /// Members of the engine-maintained unvisited set, when the engine
    /// was tracking one (direction optimization with
    /// [`PullCandidates::Unvisited`](crate::engine::PullCandidates)).
    pub unvisited: Option<Vec<VertexId>>,
    /// Word images of every registered [`CheckpointState`] buffer, in
    /// registration order.
    pub state: Vec<Vec<u64>>,
    /// Lane state of a batched multi-source engine (None for
    /// single-source runs): the live-lane set plus each frontier member's
    /// source-lane mask, parallel to `frontier`.
    pub lanes: Option<LaneCheckpoint>,
}

/// Per-lane engine state captured alongside the frontier membership when
/// the engine runs in batched multi-source mode.
#[derive(Debug, Clone)]
pub struct LaneCheckpoint {
    /// Bitmask of lanes not yet retired at the checkpoint boundary.
    pub live: u64,
    /// `frontier[i]`'s source-lane mask, in the same order.
    pub masks: Vec<u64>,
}
