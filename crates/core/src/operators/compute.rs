//! The `compute` primitive (§3.1): applies a functor to every frontier
//! element. Kept separate from `advance` because it has no load-balancing
//! problem — memory access is regular — so it maps to a plain SYCL `range`
//! kernel (§3.3, §3.5).

use sygraph_sim::{Event, ItemCtx, Queue};

use crate::frontier::word::{locate, Word};
use crate::frontier::BitmapLike;
use crate::types::VertexId;

/// The compute functor: `(lane, vertex)`, matching `Functor(id)`.
pub trait ComputeFunctor: Fn(&mut ItemCtx<'_>, VertexId) + Sync {}
impl<F> ComputeFunctor for F where F: Fn(&mut ItemCtx<'_>, VertexId) + Sync {}

/// `compute::execute(G, Frontier, Functor)`: applies `functor` to each
/// active vertex.
pub fn execute<W: Word>(
    q: &Queue,
    frontier: &dyn BitmapLike<W>,
    functor: impl ComputeFunctor,
) -> Event {
    let words = frontier.words();
    q.parallel_for("compute", frontier.capacity(), |lane, v| {
        let (wi, b) = locate::<W>(v as u32);
        let w = lane.load(words, wi);
        if w.test_bit(b) {
            functor(lane, v as u32);
        }
    })
}

/// Applies `functor` to *every* vertex `0..n` (initialization passes,
/// e.g. setting all BFS distances to ∞).
pub fn execute_all(q: &Queue, n: usize, functor: impl ComputeFunctor) -> Event {
    q.parallel_for("compute_all", n, |lane, v| functor(lane, v as u32))
}

/// Like [`execute`], but sized by the frontier's compaction: instead of
/// scanning all `capacity()` bit slots, only the non-zero words reported
/// by [`BitmapLike::compact`] are visited (the superstep engine's unfused
/// compute path). Falls back to [`execute`] for layouts without a
/// compaction step.
pub fn over_compacted<W: Word>(
    q: &Queue,
    frontier: &dyn BitmapLike<W>,
    functor: impl ComputeFunctor,
) -> Event {
    let Some((nz, offsets)) = frontier.compact(q) else {
        return execute(q, frontier, functor);
    };
    if nz == 0 {
        let now = q.now_ns();
        return Event {
            start_ns: now,
            end_ns: now,
        };
    }
    let words = frontier.words();
    let n = frontier.capacity() as u32;
    let bits = W::BITS as usize;
    q.parallel_for("compute_compacted", nz * bits, |lane, i| {
        let wi = lane.load(offsets, i / bits) as usize;
        let b = (i % bits) as u32;
        let v = wi as u32 * W::BITS + b;
        if v < n && lane.load(words, wi).test_bit(b) {
            functor(lane, v);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{Frontier, TwoLayerFrontier};
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn execute_touches_only_active() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 100).unwrap();
        let vals = q.malloc_device::<u32>(100).unwrap();
        f.insert_host(10);
        f.insert_host(90);
        execute(&q, &f, |l, v| {
            l.store(&vals, v as usize, v + 1);
        });
        assert_eq!(vals.load(10), 11);
        assert_eq!(vals.load(90), 91);
        assert_eq!(vals.load(50), 0, "inactive untouched");
    }

    #[test]
    fn execute_all_covers_range() {
        let q = queue();
        let vals = q.malloc_device::<u32>(500).unwrap();
        execute_all(&q, 500, |l, v| l.store(&vals, v as usize, 7));
        assert!(vals.to_vec().iter().all(|&x| x == 7));
    }

    #[test]
    fn over_compacted_matches_execute() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 1000).unwrap();
        for v in (0..1000).step_by(97) {
            f.insert_host(v);
        }
        let a = q.malloc_device::<u32>(1000).unwrap();
        let b = q.malloc_device::<u32>(1000).unwrap();
        execute(&q, &f, |l, v| l.store(&a, v as usize, v + 1));
        over_compacted(&q, &f, |l, v| l.store(&b, v as usize, v + 1));
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn over_compacted_falls_back_without_compaction() {
        let q = queue();
        let f = crate::frontier::BitmapFrontier::<u32>::new(&q, 100).unwrap();
        f.insert_host(42);
        let hits = q.malloc_device::<u32>(1).unwrap();
        over_compacted(&q, &f, |l, _v| {
            l.fetch_add(&hits, 0, 1);
        });
        assert_eq!(hits.load(0), 1);
    }

    #[test]
    fn over_compacted_empty_frontier_launches_nothing() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 100).unwrap();
        let before = q.profiler().kernel_count();
        over_compacted(&q, &f, |_l, _v| {});
        // only the compaction kernel ran; no compute kernel
        assert_eq!(q.profiler().kernel_count(), before + 1);
    }

    #[test]
    fn bfs_distance_update_pattern() {
        // The Listing 1 compute step: dist[v] = iter + 1 over the output
        // frontier.
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 64).unwrap();
        let dist = q.malloc_device::<u32>(64).unwrap();
        q.fill(&dist, u32::MAX);
        f.insert_host(3);
        f.insert_host(4);
        let iter = 5u32;
        execute(&q, &f, |l, v| {
            l.store(&dist, v as usize, iter + 1);
        });
        assert_eq!(dist.load(3), 6);
        assert_eq!(dist.load(4), 6);
        assert_eq!(dist.load(5), u32::MAX);
    }
}
