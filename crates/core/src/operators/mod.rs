//! The SYgraph primitives (Table 2): `advance`, `filter`, `compute`.
//!
//! Each primitive launches one or more kernels on the queue and returns an
//! [`sygraph_sim::Event`] for host-side waits, exactly like the paper's
//! `sygraph::operators::` namespace.

pub mod advance;
pub mod compute;
pub mod filter;
