//! The `advance` primitive (§3.1, §4.2): expands a frontier by visiting
//! every out-edge of every active vertex, applying a user functor per edge
//! and inserting accepted destinations into the output frontier.
//!
//! ## Load balancing (workgroup-mapped, §4.2)
//!
//! Each workgroup owns `subgroups_per_wg × coarsening` bitmap words. Every
//! subgroup processes its words in two stages (Figure 4b):
//!
//! 1. **Compaction** — subgroup collectives (ballot + exclusive scan)
//!    compact the word's set bits (active vertices) into local memory;
//! 2. **Cooperative expansion** — for each compacted vertex, all lanes of
//!    the subgroup stride over its neighbor list together, so a
//!    high-degree vertex is processed by the full SIMD width without any
//!    cross-subgroup synchronization (Figure 4c).
//!
//! With the two-layer layout the word list comes pre-compacted from
//! [`crate::frontier::BitmapLike::compact`], so no workgroup is ever
//! scheduled onto an all-zero word (Figure 5a).

use sygraph_sim::{
    full_mask, DeviceBuffer, Event, ItemCtx, LaunchConfig, Queue, SubgroupCtx, MAX_SUBGROUP,
};

use crate::frontier::bucket::{self, BucketPool, BucketSpec};
use crate::frontier::word::{locate, Word};
use crate::frontier::BitmapLike;
use crate::graph::traits::DeviceGraphView;
use crate::inspector::{inspect, Balancing, OptConfig, Tuning};
use crate::types::{EdgeId, VertexId, Weight};

/// The advance functor: `(lane, src, dst, edge, weight) -> bool`,
/// mirroring the paper's `Functor(src, dst, edge_id, weight) -> Bool`.
/// The lane context gives the lambda accounted access to user data
/// (e.g. the BFS distance array).
pub trait AdvanceFunctor:
    Fn(&mut ItemCtx<'_>, VertexId, VertexId, EdgeId, Weight) -> bool + Sync
{
}
impl<F> AdvanceFunctor for F where
    F: Fn(&mut ItemCtx<'_>, VertexId, VertexId, EdgeId, Weight) -> bool + Sync
{
}

/// A compute functor fused into the advance kernel: runs on each vertex the
/// moment its frontier bit is first set, inside the expanding kernel — the
/// superstep engine's replacement for a separate full-range `compute` pass.
pub type FusedCompute<'a> = &'a (dyn Fn(&mut ItemCtx<'_>, VertexId) + Sync);

/// Candidate enumeration for a pull-direction advance (§3.4, Beamer-style
/// bottom-up traversal): which vertices scan their in-edges against the
/// input frontier bitmap.
pub enum PullScope<'a, W: Word> {
    /// Scan only the given candidate set (typically the engine-maintained
    /// unvisited bitmap). Each candidate *adopts* on its first accepted
    /// frontier in-edge — the scan early-exits and the candidate is
    /// removed from the set in-kernel. Only valid for visit-once
    /// algorithms whose functor is read-only (BFS-style): edges after the
    /// first accepted one are never offered to the functor.
    Unvisited(&'a dyn BitmapLike<W>),
    /// Scan every vertex's in-edges with no early exit: the functor sees
    /// exactly the edge set a push step would offer (every edge whose
    /// source is in the frontier), so this scope is safe for any functor —
    /// label-propagation style algorithms (CC) use it.
    AllVertices,
}

/// Unified builder over every vertex-frontier advance variant — the one
/// entry point that replaces the old `frontier` / `frontier_discard` /
/// `frontier_counted` / `frontier_discard_counted` quartet.
///
/// ```ignore
/// let (ev, words) = Advance::new(&q, &g, &input)
///     .output(&out)            // omit to discard accepted destinations
///     .tuning(&t)              // omit to let the inspector tune
///     .fuse(&|l, v| { ... })   // optional: compute fused into the kernel
///     .run(|l, src, dst, e, w| ...);
/// ```
///
/// `run` always reports the counted compaction result: `Some(n_nonzero)`
/// under the two-layer layout (`Some(0)` ⇒ the input frontier was empty, so
/// superstep loops converge without a separate count kernel), `None` for
/// single-layer bitmaps.
pub struct Advance<'a, W: Word, G: DeviceGraphView + ?Sized> {
    q: &'a Queue,
    graph: &'a G,
    /// `None` means "treat every vertex as active" (the old `vertices`).
    input: Option<&'a dyn BitmapLike<W>>,
    output: Option<&'a dyn BitmapLike<W>>,
    tuning: Option<&'a Tuning>,
    fused: Option<FusedCompute<'a>>,
    pool: Option<&'a BucketPool>,
    pull: Option<PullScope<'a, W>>,
}

impl<'a, W: Word, G: DeviceGraphView + ?Sized> Advance<'a, W, G> {
    /// An advance expanding `input` over the out-edges of `graph`.
    pub fn new(q: &'a Queue, graph: &'a G, input: &'a dyn BitmapLike<W>) -> Self {
        Advance {
            q,
            graph,
            input: Some(input),
            output: None,
            tuning: None,
            fused: None,
            pool: None,
            pull: None,
        }
    }

    /// An advance treating *every* vertex as active (e.g. PageRank's
    /// scatter sweep, or Betweenness Centrality initialization).
    pub fn all_vertices(q: &'a Queue, graph: &'a G) -> Self {
        Advance {
            q,
            graph,
            input: None,
            output: None,
            tuning: None,
            fused: None,
            pool: None,
            pull: None,
        }
    }

    /// Stores accepted destinations in `out`. Without an output, the
    /// functor still runs per edge but destinations are discarded.
    pub fn output(mut self, out: &'a dyn BitmapLike<W>) -> Self {
        self.output = Some(out);
        self
    }

    /// Uses explicit tuning instead of the inspector's default.
    pub fn tuning(mut self, t: &'a Tuning) -> Self {
        self.tuning = Some(t);
        self
    }

    /// Reuses caller-owned bucket buffers for the degree-bucketed dispatch
    /// (the superstep engine pools these across supersteps). Without a
    /// pool, a bucketed advance allocates transient buffers; if even that
    /// fails the advance silently degrades to the workgroup-mapped path,
    /// which needs no extra memory and computes the same result.
    pub fn pool(mut self, pool: Option<&'a BucketPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Fuses a compute functor into the advance kernel: it runs exactly
    /// once per *newly inserted* output vertex (first-setter wins via
    /// [`BitmapLike::insert_lane_checked`]), eliminating the separate
    /// full-capacity `compute` kernel and its host sync. Requires an
    /// [`output`](Advance::output) frontier to deduplicate against.
    pub fn fuse(mut self, compute: FusedCompute<'a>) -> Self {
        self.fused = Some(compute);
        self
    }

    /// Runs this advance in the *pull* direction: instead of expanding the
    /// input frontier's out-edges, the `scope`'s candidate vertices scan
    /// their in-edges against the input frontier's membership bitmap (a
    /// single bit probe per edge under the 2LB layout). The functor sees
    /// `(src, dst)` exactly as in push — `src` is the frontier-resident
    /// in-neighbor, `dst` the candidate — but `edge` is the pull view's
    /// edge id, not the push view's id for the same logical edge.
    ///
    /// The graph's pull view must already be resident
    /// ([`DeviceGraphView::ensure_pull`] returned `Ok(true)`); the counted
    /// result still reports the *input* frontier's compaction, so
    /// superstep convergence works unchanged.
    pub fn pull(mut self, scope: PullScope<'a, W>) -> Self {
        self.pull = Some(scope);
        self
    }

    /// Launches the advance. Returns the completion event plus the counted
    /// compaction result (see the type-level docs).
    pub fn run(self, functor: impl AdvanceFunctor) -> (Event, Option<usize>) {
        assert!(
            self.fused.is_none() || self.output.is_some(),
            "Advance::fuse requires an output frontier to deduplicate against"
        );
        let derived;
        let tuning = match self.tuning {
            Some(t) => t,
            None => {
                derived = inspect(
                    self.q.profile(),
                    &OptConfig::all(),
                    self.graph.vertex_count(),
                );
                &derived
            }
        };
        if let Some(scope) = self.pull {
            let input = self
                .input
                .expect("a pull advance needs an input frontier to probe");
            return pull_impl(
                self.q,
                self.graph,
                input,
                scope,
                self.output,
                tuning,
                self.pool,
                self.fused,
                &functor,
            );
        }
        match self.input {
            Some(input) => frontier_impl(
                self.q,
                self.graph,
                input,
                self.output,
                tuning,
                self.pool,
                self.fused,
                &functor,
            ),
            None => (
                vertices_impl(
                    self.q,
                    self.graph,
                    self.output,
                    tuning,
                    self.fused,
                    &functor,
                ),
                None,
            ),
        }
    }
}

/// A zero-duration event for advances that need no kernel at all (empty
/// frontier, empty bucket, zero-vertex graph): the host learns this from
/// the compaction count, so no empty grid is ever launched.
fn no_launch(q: &Queue) -> Event {
    let now = q.now_ns();
    Event {
        start_ns: now,
        end_ns: now,
    }
}

/// The per-edge tail every expansion path shares: load the edge, run the
/// functor, insert accepted destinations, fire the fused compute on the
/// first-setter lane. Keeping this in one place is what guarantees the
/// balancing strategies are bit-identical — they only differ in *which
/// lane* reaches an edge, never in what happens to it.
#[inline]
fn visit_edge<W: Word, G: DeviceGraphView + ?Sized>(
    item: &mut ItemCtx<'_>,
    graph: &G,
    src: VertexId,
    eid: EdgeId,
    output: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) {
    let dst = graph.edge_dest(item, eid);
    let w = graph.edge_weight(item, eid);
    item.compute(2);
    if functor(item, src, dst, eid, w) {
        if let Some(out) = output {
            // The fused compute runs only on the lane whose atomic OR
            // first set the destination bit, giving the same
            // exactly-once-per-vertex semantics as a separate compute
            // pass over the output frontier.
            if out.insert_lane_checked(item, dst) {
                if let Some(fc) = fused {
                    fc(item, dst);
                }
            }
        }
    }
}

/// Stage ① + ② for the bit range `[bit_lo, bit_hi)` of one bitmap word.
/// `local_base` is this range's region of local memory (one u32 slot per
/// bit). Under MSI the range is the whole word (one subgroup per word);
/// without MSI a workgroup owns the word and its subgroups each take a
/// slice of the bits — wasting lanes whenever the slice is narrower than
/// the subgroup (the inefficiency MSI removes).
#[allow(clippy::too_many_arguments)]
fn process_word<W: Word, G: DeviceGraphView + ?Sized>(
    sg: &mut SubgroupCtx<'_, '_>,
    graph: &G,
    word_idx: usize,
    word: W,
    bit_lo: u32,
    bit_hi: u32,
    local_base: usize,
    output: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) {
    let sgw = sg.width();
    let first_vertex = word_idx as u32 * W::BITS;
    let n = graph.vertex_count() as u32;

    // Stage ①: compact active bits into local memory; multiple passes
    // when the bit range is wider than the subgroup.
    let passes = (bit_hi - bit_lo).div_ceil(sgw);
    let mut count = 0u32;
    let mut positions = [0u32; MAX_SUBGROUP];
    for p in 0..passes {
        let bit_base = bit_lo + p * sgw;
        let active = sg.ballot(|lane| {
            let bit = bit_base + lane;
            bit < bit_hi && word.test_bit(bit) && first_vertex + bit < n
        });
        if active == 0 {
            continue;
        }
        let pass_count = sg.exclusive_scan_add(
            full_mask(sgw),
            |lane| (active >> lane & 1) as u32,
            &mut positions,
        );
        let base = local_base as u32 + count;
        sg.local_scatter(active, |lane| {
            (
                (base + positions[lane as usize]) as usize,
                first_vertex + bit_base + lane,
            )
        });
        count += pass_count;
    }

    // Stage ②: all lanes cooperatively expand each compacted vertex.
    for k in 0..count {
        let v = sg.local_read(local_base + k as usize);
        let (lo, hi) = graph.row_bounds_uniform(sg, v);
        let mut e = lo;
        while e < hi {
            let lanes = (hi - e).min(sgw);
            let mask = full_mask(lanes);
            sg.lanes(mask, |lane, item| {
                visit_edge(item, graph, v, e + lane, output, fused, functor);
            });
            e += lanes;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn launch_advance<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    tuning: &Tuning,
    n_words: usize,
    resolve: impl Fn(&mut SubgroupCtx<'_, '_>, usize) -> (usize, W) + Sync,
    output: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> Event {
    debug_assert_eq!(tuning.sg_size.min(64), tuning.sg_size);
    // MSI on (word fits a subgroup): every subgroup owns whole words.
    // MSI off: a workgroup owns each word and its subgroups split the
    // bits (§4.2's base mapping, Figure 5b's inefficiency).
    let subgroup_mapped = tuning.word_bits <= tuning.sg_size;
    let sgs = tuning.subgroups_per_wg as usize;
    let coarsening = tuning.coarsening as usize;
    let wpg = if subgroup_mapped {
        sgs * coarsening
    } else {
        coarsening
    };
    let groups = n_words.div_ceil(wpg.max(1));
    if groups == 0 {
        // Zero-vertex graph or empty word list: nothing to schedule.
        return no_launch(q);
    }
    let word_slots = W::BITS as usize;
    let cfg = LaunchConfig::new("advance", groups, tuning.wg_size(), tuning.sg_size)
        .with_local_mem((wpg * word_slots * 4) as u32);
    q.launch(cfg, |ctx| {
        let base = ctx.group_id * wpg;
        ctx.for_each_subgroup(|sg| {
            if subgroup_mapped {
                for c in 0..coarsening {
                    let slot = sg.sg_id() as usize * coarsening + c;
                    let word_pos = base + slot;
                    if word_pos >= n_words {
                        break;
                    }
                    let (word_idx, word) = resolve(sg, word_pos);
                    if word.is_zero() {
                        // Figure 5a: a scheduled subgroup with no work.
                        sg.compute(1);
                        continue;
                    }
                    process_word(
                        sg,
                        graph,
                        word_idx,
                        word,
                        0,
                        W::BITS,
                        slot * word_slots,
                        output,
                        fused,
                        functor,
                    );
                }
            } else {
                // Workgroup-per-word: subgroup `i` covers bit slice `i`.
                let bits_per_sg = W::BITS.div_ceil(sgs as u32);
                for c in 0..coarsening {
                    let word_pos = base + c;
                    if word_pos >= n_words {
                        break;
                    }
                    let (word_idx, word) = resolve(sg, word_pos);
                    if word.is_zero() {
                        sg.compute(1);
                        continue;
                    }
                    let bit_lo = sg.sg_id() * bits_per_sg;
                    let bit_hi = (bit_lo + bits_per_sg).min(W::BITS);
                    if bit_lo >= W::BITS {
                        continue;
                    }
                    process_word(
                        sg,
                        graph,
                        word_idx,
                        word,
                        bit_lo,
                        bit_hi,
                        c * word_slots + bit_lo as usize,
                        output,
                        fused,
                        functor,
                    );
                }
            }
        });
    })
}

// ---------------------------------------------------------------------------
// Degree-bucketed dispatch (§4.2 hybrid load balancing)
// ---------------------------------------------------------------------------

/// What the binning kernel reads: the compacted non-zero words of a dense
/// frontier, or a sparse frontier's duplicate-free item list. Either way
/// the pool ends up holding the same three degree buckets, so the
/// expansion kernels downstream cannot tell the representations apart —
/// the load-balancing and representation axes compose freely.
enum BinInput<'a, W: Word> {
    Compacted {
        words: &'a DeviceBuffer<W>,
        offsets: &'a DeviceBuffer<u32>,
        nz: usize,
    },
    List {
        items: &'a DeviceBuffer<u32>,
        len: usize,
    },
}

/// The bucketed advance: bin the active vertices by degree, then run
/// up to three kernels, each shaped for its degree band. Returns `None`
/// when no bucket buffers could be obtained (caller falls back to the
/// workgroup-mapped path).
#[allow(clippy::too_many_arguments)]
fn bucketed_impl<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    bin: BinInput<'_, W>,
    output: Option<&dyn BitmapLike<W>>,
    tuning: &Tuning,
    pool: Option<&BucketPool>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> Option<Event> {
    let spec = BucketSpec::from_tuning(tuning);
    let n = graph.vertex_count();
    let m = graph.edge_count();
    // Caller-provided pool when it fits, else a transient allocation for
    // this advance only; allocation failure degrades, never errors.
    let transient;
    let pool = match pool {
        Some(p) if p.fits(n, m, &spec) => p,
        _ => {
            transient = BucketPool::new(q, n, m, &spec).ok()?;
            &transient
        }
    };
    let nv = n as u32;
    let degree_of = |lane: &mut ItemCtx<'_>, v: VertexId| -> u32 {
        if v >= nv {
            return 0; // tail bits past the last vertex
        }
        let (lo, hi) = graph.row_bounds(lane, v);
        hi - lo
    };
    let counts = match bin {
        BinInput::Compacted { words, offsets, nz } => {
            bucket::bin_compacted(q, words, offsets, nz, pool, &degree_of, &spec)
        }
        BinInput::List { items, len } => bucket::bin_list(q, items, len, pool, &degree_of, &spec),
    };
    let mut last = no_launch(q);
    if counts.small > 0 {
        last = launch_small(q, graph, tuning, pool, counts.small, output, fused, functor);
    }
    if counts.medium > 0 {
        last = launch_list(
            q,
            graph,
            tuning,
            "advance_medium",
            &pool.medium,
            counts.medium,
            output,
            fused,
            functor,
        );
    }
    if counts.large > 0 {
        last = launch_large(
            q,
            graph,
            tuning,
            pool,
            counts.large,
            &spec,
            output,
            fused,
            functor,
        );
    }
    Some(last)
}

/// Small bucket: one lane per vertex, walking its whole (≤ `small_max`)
/// adjacency serially — cooperative expansion would idle `sg_size − 1`
/// lanes per leaf vertex.
#[allow(clippy::too_many_arguments)]
fn launch_small<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    tuning: &Tuning,
    pool: &BucketPool,
    count: u32,
    output: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> Event {
    let sgw = tuning.sg_size as usize;
    let sgs = tuning.subgroups_per_wg as usize;
    let coarsening = tuning.coarsening as usize;
    // Each subgroup covers `coarsening` lane-wide slabs of vertices.
    let per_sg = sgw * coarsening;
    let vpg = per_sg * sgs;
    let n_items = count as usize;
    let groups = n_items.div_ceil(vpg.max(1));
    let small = &pool.small;
    let cfg = LaunchConfig::new("advance_small", groups, tuning.wg_size(), tuning.sg_size);
    q.launch(cfg, |ctx| {
        let base = ctx.group_id * vpg;
        ctx.for_each_subgroup(|sg| {
            for c in 0..coarsening {
                let slab = base + sg.sg_id() as usize * per_sg + c * sgw;
                if slab >= n_items {
                    break;
                }
                let lanes = (n_items - slab).min(sgw) as u32;
                sg.lanes(full_mask(lanes), |lane, item| {
                    let v = item.load(small, slab + lane as usize);
                    let (lo, hi) = graph.row_bounds(item, v);
                    for e in lo..hi {
                        visit_edge(item, graph, v, e, output, fused, functor);
                    }
                });
            }
        });
    })
}

/// Subgroup-per-vertex expansion over an explicit vertex list: all lanes
/// stride the adjacency together — the same cooperative expansion as the
/// workgroup-mapped path, minus the bitmap walk. Serves two callers that
/// differ only in where the list came from: the medium degree bucket
/// ("advance_medium") and a sparse frontier's item list ("advance_sparse").
#[allow(clippy::too_many_arguments)]
fn launch_list<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    tuning: &Tuning,
    name: &'static str,
    items: &DeviceBuffer<u32>,
    count: u32,
    output: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> Event {
    let sgw = tuning.sg_size;
    let sgs = tuning.subgroups_per_wg as usize;
    let coarsening = tuning.coarsening as usize;
    let vpg = sgs * coarsening;
    let n_items = count as usize;
    let groups = n_items.div_ceil(vpg.max(1));
    let cfg = LaunchConfig::new(name, groups, tuning.wg_size(), tuning.sg_size);
    q.launch(cfg, |ctx| {
        let base = ctx.group_id * vpg;
        ctx.for_each_subgroup(|sg| {
            for c in 0..coarsening {
                let pos = base + sg.sg_id() as usize * coarsening + c;
                if pos >= n_items {
                    break;
                }
                let v = sg.load_uniform(items, pos);
                let (lo, hi) = graph.row_bounds_uniform(sg, v);
                let mut e = lo;
                while e < hi {
                    let lanes = (hi - e).min(sgw);
                    sg.lanes(full_mask(lanes), |lane, item| {
                        visit_edge(item, graph, v, e + lane, output, fused, functor);
                    });
                    e += lanes;
                }
            }
        });
    })
}

/// Large bucket: one *workgroup* per neighbor chunk. A hub's edge mass
/// was pre-split into `chunk`-sized ranges by the binning kernel, so its
/// chunks land on different workgroups — and, under the cyclic
/// workgroup→CU striping, on different compute units — instead of
/// serializing one subgroup (the Figure 4c pathology on power-law
/// graphs). All subgroups of the group stride the chunk together.
#[allow(clippy::too_many_arguments)]
fn launch_large<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    tuning: &Tuning,
    pool: &BucketPool,
    count: u32,
    spec: &BucketSpec,
    output: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> Event {
    let sgw = tuning.sg_size;
    let wg_stride = tuning.wg_size();
    let chunk = spec.chunk;
    let large_v = &pool.large_v;
    let large_c = &pool.large_c;
    let cfg = LaunchConfig::new(
        "advance_large",
        count as usize,
        tuning.wg_size(),
        tuning.sg_size,
    );
    q.launch(cfg, |ctx| {
        let entry = ctx.group_id;
        ctx.for_each_subgroup(|sg| {
            let v = sg.load_uniform(large_v, entry);
            let ci = sg.load_uniform(large_c, entry);
            let (lo, hi) = graph.row_bounds_uniform(sg, v);
            let clo = lo + ci * chunk;
            let chi = (clo + chunk).min(hi);
            // Subgroup `i` starts at lane-slab `i`; the whole workgroup
            // advances `wg_size` edges per round.
            let mut e = clo + sg.sg_id() * sgw;
            while e < chi {
                let lanes = (chi - e).min(sgw);
                sg.lanes(full_mask(lanes), |lane, item| {
                    visit_edge(item, graph, v, e + lane, output, fused, functor);
                });
                e += wg_stride;
            }
        });
    })
}

#[allow(clippy::too_many_arguments)]
fn frontier_impl<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    input: &dyn BitmapLike<W>,
    output: Option<&dyn BitmapLike<W>>,
    tuning: &Tuning,
    pool: Option<&BucketPool>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> (Event, Option<usize>) {
    // Sparse (item-list) dispatch: when the input presents a valid list,
    // skip the bitmap scan entirely — the list length *is* the frontier
    // population, read back with no kernel at all. The counted result
    // reports entries instead of non-zero words; `Some(0)` still means
    // "converged" to superstep loops.
    if let Some(view) = input.sparse_view(q) {
        let entries = view.len;
        if entries == 0 {
            return (no_launch(q), Some(0));
        }
        // The balancing bar is keyed on non-zero words; entries compress
        // into at least ⌈entries/word_bits⌉ of them.
        let est_words = entries.div_ceil(tuning.word_bits.max(1) as usize);
        let strategy = tuning.effective_balancing(est_words, graph.degree_profile());
        if strategy == Balancing::Bucketed {
            let bin = BinInput::List {
                items: view.items,
                len: entries,
            };
            if let Some(ev) = bucketed_impl(q, graph, bin, output, tuning, pool, fused, functor) {
                return (ev, Some(entries));
            }
        }
        let ev = launch_list(
            q,
            graph,
            tuning,
            "advance_sparse",
            view.items,
            entries as u32,
            output,
            fused,
            functor,
        );
        return (ev, Some(entries));
    }
    match input.compact(q) {
        Some((n_nonzero, offsets)) => {
            if n_nonzero == 0 {
                // The host reads the compaction count to size the launch
                // (§4.3); an empty frontier needs no advance kernel at all.
                return (no_launch(q), Some(0));
            }
            // Bucketed dispatch only exists on the counted-compaction
            // path: the binning kernel runs over the offsets buffer.
            let strategy = tuning.effective_balancing(n_nonzero, graph.degree_profile());
            if strategy == Balancing::Bucketed {
                let bin = BinInput::Compacted {
                    words: input.words(),
                    offsets,
                    nz: n_nonzero,
                };
                if let Some(ev) = bucketed_impl(q, graph, bin, output, tuning, pool, fused, functor)
                {
                    return (ev, Some(n_nonzero));
                }
                // Bucket buffers unavailable (allocation failed): fall
                // through to the workgroup-mapped path, which computes
                // the identical result with no extra memory.
            }
            // Two-layer path: workgroups iterate the offsets buffer.
            let words = input.words();
            let ev = launch_advance(
                q,
                graph,
                tuning,
                n_nonzero,
                |sg, pos| {
                    let word_idx = sg.load_uniform(offsets, pos) as usize;
                    (word_idx, sg.load_uniform(words, word_idx))
                },
                output,
                fused,
                functor,
            );
            (ev, Some(n_nonzero))
        }
        None => {
            // Single-layer path: visit every word, including zeros.
            let words = input.words();
            let ev = launch_advance(
                q,
                graph,
                tuning,
                input.num_words(),
                |sg, pos| (pos, sg.load_uniform(words, pos)),
                output,
                fused,
                functor,
            );
            (ev, None)
        }
    }
}

fn vertices_impl<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    output: Option<&dyn BitmapLike<W>>,
    tuning: &Tuning,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> Event {
    let n = graph.vertex_count();
    let n_words = n.div_ceil(W::BITS as usize);
    launch_advance(
        q,
        graph,
        tuning,
        n_words,
        |_sg, pos| (pos, W::ZERO.not()),
        output,
        fused,
        functor,
    )
}

// ---------------------------------------------------------------------------
// Pull-direction advance (§3.4 direction optimization, Beamer bottom-up)
// ---------------------------------------------------------------------------

/// The per-candidate tail every pull path shares (the pull-side analog of
/// [`visit_edge`]): one lane serially scans `v`'s in-edges, probes each
/// source against the input frontier bitmap (one word load + bit test
/// under 2LB), and on an accepted frontier edge inserts `v` into the
/// output — early-exiting and retiring the candidate under adopt-once
/// semantics. Keeping this in one place guarantees the pull balancing
/// strategies stay bit-identical, exactly like the push side.
#[allow(clippy::too_many_arguments)]
#[inline]
fn pull_vertex<W: Word, G: DeviceGraphView + ?Sized>(
    item: &mut ItemCtx<'_>,
    graph: &G,
    v: VertexId,
    e_lo: u32,
    e_hi: u32,
    fin_words: &DeviceBuffer<W>,
    output: Option<&dyn BitmapLike<W>>,
    unvisited: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
    adopt_once: bool,
) {
    for e in e_lo..e_hi {
        let u = graph.in_edge_src(item, e);
        let (wi, b) = locate::<W>(u);
        item.compute(2);
        if !item.load(fin_words, wi).test_bit(b) {
            continue;
        }
        let w = graph.in_edge_weight(item, e);
        if functor(item, u, v, e, w) {
            pull_adopt(item, v, output, unvisited, fused);
            if adopt_once {
                break;
            }
        }
    }
}

/// Insert an adopting candidate into the output (first-setter fires the
/// fused compute, as in push) and retire it from the unvisited set.
#[inline]
fn pull_adopt<W: Word>(
    item: &mut ItemCtx<'_>,
    v: VertexId,
    output: Option<&dyn BitmapLike<W>>,
    unvisited: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
) {
    if let Some(out) = output {
        if out.insert_lane_checked(item, v) {
            if let Some(fc) = fused {
                fc(item, v);
            }
        }
    }
    if let Some(unv) = unvisited {
        unv.remove_lane(item, v);
    }
}

/// Subgroup-cooperative in-edge scan for one candidate: all lanes stride
/// the range `[clo, chi)` together in `stride`-wide rounds. Under
/// adopt-once, each round's frontier hits are balloted and the lowest
/// hitting lane adopts — the subgroup then abandons the rest of the range
/// (the cooperative form of Beamer's early exit).
#[allow(clippy::too_many_arguments)]
fn pull_scan_cooperative<W: Word, G: DeviceGraphView + ?Sized>(
    sg: &mut SubgroupCtx<'_, '_>,
    graph: &G,
    v: VertexId,
    clo: u32,
    chi: u32,
    stride: u32,
    fin_words: &DeviceBuffer<W>,
    output: Option<&dyn BitmapLike<W>>,
    unvisited: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
    adopt_once: bool,
) {
    let sgw = sg.width();
    let mut e = clo;
    while e < chi {
        let lanes = (chi - e).min(sgw);
        let mut hits = [false; MAX_SUBGROUP];
        sg.lanes(full_mask(lanes), |lane, item| {
            let eid = e + lane;
            let u = graph.in_edge_src(item, eid);
            let (wi, b) = locate::<W>(u);
            item.compute(2);
            if !item.load(fin_words, wi).test_bit(b) {
                return;
            }
            let w = graph.in_edge_weight(item, eid);
            if adopt_once {
                // Accepted edges only vote here; the winning lane adopts
                // after the ballot so exactly one adoption happens.
                hits[lane as usize] = functor(item, u, v, eid, w);
            } else if functor(item, u, v, eid, w) {
                pull_adopt(item, v, output, unvisited, fused);
            }
        });
        if adopt_once {
            let mask = sg.ballot(|lane| hits[lane as usize]);
            if mask != 0 {
                sg.lanes(1u64 << mask.trailing_zeros(), |_lane, item| {
                    pull_adopt(item, v, output, unvisited, fused);
                });
                return;
            }
        }
        e += stride.max(1);
    }
}

/// Lane-per-candidate pull over bitmap words: the workgroup/subgroup→word
/// mapping of [`launch_advance`], but each set bit is scanned serially by
/// its own lane (Beamer's standard bottom-up shape — the early exit keeps
/// the expected scan short on scale-free graphs).
#[allow(clippy::too_many_arguments)]
fn launch_pull<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    tuning: &Tuning,
    n_words: usize,
    resolve: impl Fn(&mut SubgroupCtx<'_, '_>, usize) -> (usize, W) + Sync,
    fin_words: &DeviceBuffer<W>,
    output: Option<&dyn BitmapLike<W>>,
    unvisited: Option<&dyn BitmapLike<W>>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
    adopt_once: bool,
) -> Event {
    let subgroup_mapped = tuning.word_bits <= tuning.sg_size;
    let sgs = tuning.subgroups_per_wg as usize;
    let coarsening = tuning.coarsening as usize;
    let wpg = if subgroup_mapped {
        sgs * coarsening
    } else {
        coarsening
    };
    let groups = n_words.div_ceil(wpg.max(1));
    if groups == 0 {
        return no_launch(q);
    }
    let n = graph.vertex_count() as u32;
    let cfg = LaunchConfig::new("advance_pull", groups, tuning.wg_size(), tuning.sg_size);
    let process =
        |sg: &mut SubgroupCtx<'_, '_>, word_idx: usize, word: W, bit_lo: u32, bit_hi: u32| {
            let sgw = sg.width();
            let first_vertex = word_idx as u32 * W::BITS;
            let passes = (bit_hi - bit_lo).div_ceil(sgw);
            for p in 0..passes {
                let bit_base = bit_lo + p * sgw;
                let active = sg.ballot(|lane| {
                    let bit = bit_base + lane;
                    bit < bit_hi && word.test_bit(bit) && first_vertex + bit < n
                });
                if active == 0 {
                    continue;
                }
                sg.lanes(active, |lane, item| {
                    let v = first_vertex + bit_base + lane;
                    let (lo, hi) = graph.in_row_bounds(item, v);
                    pull_vertex(
                        item, graph, v, lo, hi, fin_words, output, unvisited, fused, functor,
                        adopt_once,
                    );
                });
            }
        };
    q.launch(cfg, |ctx| {
        let base = ctx.group_id * wpg;
        ctx.for_each_subgroup(|sg| {
            if subgroup_mapped {
                for c in 0..coarsening {
                    let slot = sg.sg_id() as usize * coarsening + c;
                    let word_pos = base + slot;
                    if word_pos >= n_words {
                        break;
                    }
                    let (word_idx, word) = resolve(sg, word_pos);
                    if word.is_zero() {
                        sg.compute(1);
                        continue;
                    }
                    process(sg, word_idx, word, 0, W::BITS);
                }
            } else {
                let bits_per_sg = W::BITS.div_ceil(sgs as u32);
                for c in 0..coarsening {
                    let word_pos = base + c;
                    if word_pos >= n_words {
                        break;
                    }
                    let (word_idx, word) = resolve(sg, word_pos);
                    if word.is_zero() {
                        sg.compute(1);
                        continue;
                    }
                    let bit_lo = sg.sg_id() * bits_per_sg;
                    let bit_hi = (bit_lo + bits_per_sg).min(W::BITS);
                    if bit_lo >= W::BITS {
                        continue;
                    }
                    process(sg, word_idx, word, bit_lo, bit_hi);
                }
            }
        });
    })
}

/// In-degree-bucketed pull (the pull side of §4.2's hybrid balancing):
/// candidates are binned by *in*-degree into the same three-bucket pool
/// the push side uses, then expanded by three pull-shaped kernels —
/// lane-serial for leaves, subgroup-cooperative with balloted early exit
/// for the middle band, and workgroup-chunked for in-hubs (chunks of one
/// hub adopt independently; `insert_lane_checked` dedups the insertions).
/// Returns `None` when no bucket buffers could be obtained.
#[allow(clippy::too_many_arguments)]
fn pull_bucketed<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    bin: BinInput<'_, W>,
    fin_words: &DeviceBuffer<W>,
    output: Option<&dyn BitmapLike<W>>,
    unvisited: Option<&dyn BitmapLike<W>>,
    tuning: &Tuning,
    pool: Option<&BucketPool>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
    adopt_once: bool,
) -> Option<Event> {
    let spec = BucketSpec::from_tuning(tuning);
    let n = graph.vertex_count();
    let m = graph.edge_count();
    let transient;
    let pool = match pool {
        Some(p) if p.fits(n, m, &spec) => p,
        _ => {
            transient = BucketPool::new(q, n, m, &spec).ok()?;
            &transient
        }
    };
    let nv = n as u32;
    let degree_of = |lane: &mut ItemCtx<'_>, v: VertexId| -> u32 {
        if v >= nv {
            return 0;
        }
        let (lo, hi) = graph.in_row_bounds(lane, v);
        hi - lo
    };
    let counts = match bin {
        BinInput::Compacted { words, offsets, nz } => {
            bucket::bin_compacted(q, words, offsets, nz, pool, &degree_of, &spec)
        }
        BinInput::List { items, len } => bucket::bin_list(q, items, len, pool, &degree_of, &spec),
    };
    let mut last = no_launch(q);
    if counts.small > 0 {
        // Small in-degree: lane-per-candidate serial scan, same shape as
        // the workgroup-mapped pull but over the compacted list.
        let sgw = tuning.sg_size as usize;
        let sgs = tuning.subgroups_per_wg as usize;
        let coarsening = tuning.coarsening as usize;
        let per_sg = sgw * coarsening;
        let vpg = per_sg * sgs;
        let n_items = counts.small as usize;
        let groups = n_items.div_ceil(vpg.max(1));
        let small = &pool.small;
        let cfg = LaunchConfig::new(
            "advance_pull_small",
            groups,
            tuning.wg_size(),
            tuning.sg_size,
        );
        last = q.launch(cfg, |ctx| {
            let base = ctx.group_id * vpg;
            ctx.for_each_subgroup(|sg| {
                for c in 0..coarsening {
                    let slab = base + sg.sg_id() as usize * per_sg + c * sgw;
                    if slab >= n_items {
                        break;
                    }
                    let lanes = (n_items - slab).min(sgw) as u32;
                    sg.lanes(full_mask(lanes), |lane, item| {
                        let v = item.load(small, slab + lane as usize);
                        let (lo, hi) = graph.in_row_bounds(item, v);
                        pull_vertex(
                            item, graph, v, lo, hi, fin_words, output, unvisited, fused, functor,
                            adopt_once,
                        );
                    });
                }
            });
        });
    }
    if counts.medium > 0 {
        // Medium band: subgroup per candidate, cooperative rounds with a
        // balloted early exit.
        let sgs = tuning.subgroups_per_wg as usize;
        let coarsening = tuning.coarsening as usize;
        let vpg = sgs * coarsening;
        let n_items = counts.medium as usize;
        let groups = n_items.div_ceil(vpg.max(1));
        let medium = &pool.medium;
        let cfg = LaunchConfig::new(
            "advance_pull_medium",
            groups,
            tuning.wg_size(),
            tuning.sg_size,
        );
        last = q.launch(cfg, |ctx| {
            let base = ctx.group_id * vpg;
            ctx.for_each_subgroup(|sg| {
                for c in 0..coarsening {
                    let pos = base + sg.sg_id() as usize * coarsening + c;
                    if pos >= n_items {
                        break;
                    }
                    let v = sg.load_uniform(medium, pos);
                    let (lo, hi) = graph.in_row_bounds_uniform(sg, v);
                    pull_scan_cooperative(
                        sg,
                        graph,
                        v,
                        lo,
                        hi,
                        sg.width(),
                        fin_words,
                        output,
                        unvisited,
                        fused,
                        functor,
                        adopt_once,
                    );
                }
            });
        });
    }
    if counts.large > 0 {
        // In-hubs: one workgroup per neighbor chunk. Chunks of one hub
        // cannot coordinate an early exit across workgroups; each adopts
        // independently and the checked insert keeps it exactly-once.
        let sgw = tuning.sg_size;
        let wg_stride = tuning.wg_size();
        let chunk = spec.chunk;
        let large_v = &pool.large_v;
        let large_c = &pool.large_c;
        let cfg = LaunchConfig::new(
            "advance_pull_large",
            counts.large as usize,
            tuning.wg_size(),
            tuning.sg_size,
        );
        last = q.launch(cfg, |ctx| {
            let entry = ctx.group_id;
            ctx.for_each_subgroup(|sg| {
                let v = sg.load_uniform(large_v, entry);
                let ci = sg.load_uniform(large_c, entry);
                let (lo, hi) = graph.in_row_bounds_uniform(sg, v);
                let clo = lo + ci * chunk;
                let chi = (clo + chunk).min(hi);
                let start = clo + sg.sg_id() * sgw;
                if start < chi {
                    pull_scan_cooperative(
                        sg, graph, v, start, chi, wg_stride, fin_words, output, unvisited, fused,
                        functor, adopt_once,
                    );
                }
            });
        });
    }
    Some(last)
}

/// The pull dispatch: count the input frontier (the same single host
/// readback the push path's counted compaction does — this also refreshes
/// the metadata its lazy clear will use), enumerate candidates, and
/// launch the pull kernel family over them.
#[allow(clippy::too_many_arguments)]
fn pull_impl<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    input: &dyn BitmapLike<W>,
    scope: PullScope<'_, W>,
    output: Option<&dyn BitmapLike<W>>,
    tuning: &Tuning,
    pool: Option<&BucketPool>,
    fused: Option<FusedCompute<'_>>,
    functor: &impl AdvanceFunctor,
) -> (Event, Option<usize>) {
    // The counted result keeps the push path's contract: the *input*
    // frontier's population measure (list entries when sparse, non-zero
    // words when dense, `None` on single-layer bitmaps).
    let counted = if let Some(view) = input.sparse_view(q) {
        Some(view.len)
    } else {
        input.compact(q).map(|(nz, _)| nz)
    };
    if counted == Some(0) {
        return (no_launch(q), Some(0));
    }
    let fin_words = input.words();
    match scope {
        PullScope::Unvisited(cand) => match cand.compact(q) {
            Some((nz, offsets)) => {
                if nz == 0 {
                    // No candidate can adopt: the pull kernel is free.
                    return (no_launch(q), counted);
                }
                let strategy = tuning.effective_balancing(nz, graph.in_degree_profile());
                if strategy == Balancing::Bucketed {
                    let bin = BinInput::Compacted {
                        words: cand.words(),
                        offsets,
                        nz,
                    };
                    if let Some(ev) = pull_bucketed(
                        q,
                        graph,
                        bin,
                        fin_words,
                        output,
                        Some(cand),
                        tuning,
                        pool,
                        fused,
                        functor,
                        true,
                    ) {
                        return (ev, counted);
                    }
                }
                let cand_words = cand.words();
                let ev = launch_pull(
                    q,
                    graph,
                    tuning,
                    nz,
                    |sg, pos| {
                        let word_idx = sg.load_uniform(offsets, pos) as usize;
                        (word_idx, sg.load_uniform(cand_words, word_idx))
                    },
                    fin_words,
                    output,
                    Some(cand),
                    fused,
                    functor,
                    true,
                );
                (ev, counted)
            }
            None => {
                // Single-layer candidate bitmap: sweep every word.
                let cand_words = cand.words();
                let ev = launch_pull(
                    q,
                    graph,
                    tuning,
                    cand.num_words(),
                    |sg, pos| (pos, sg.load_uniform(cand_words, pos)),
                    fin_words,
                    output,
                    Some(cand),
                    fused,
                    functor,
                    true,
                );
                (ev, counted)
            }
        },
        PullScope::AllVertices => {
            let n_words = graph.vertex_count().div_ceil(W::BITS as usize);
            let ev = launch_pull(
                q,
                graph,
                tuning,
                n_words,
                |_sg, pos| (pos, W::ZERO.not()),
                fin_words,
                output,
                None,
                fused,
                functor,
                false,
            );
            (ev, counted)
        }
    }
}

// ---------------------------------------------------------------------------
// Edge-frontier advance (the paper's edge frontier view)
// ---------------------------------------------------------------------------

/// `advance::edges(G, InEdges, OutVertices, src_of, Functor)` — expands an
/// *edge* frontier: every set bit is an edge id; the functor sees the
/// edge's endpoints and decides whether the destination joins the output
/// *vertex* frontier.
///
/// Edge frontiers trade the per-vertex neighborhood imbalance of vertex
/// frontiers for perfectly uniform lanes (one edge each) plus an
/// edge→source lookup — build it once with
/// [`crate::graph::DeviceCsr::build_edge_sources`] and pass
/// `|l, e| l.load(&srcs, e as usize)` as `src_of`.
pub fn edges<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    graph: &G,
    input: &dyn BitmapLike<W>,
    output: &dyn BitmapLike<W>,
    tuning: &Tuning,
    src_of: impl Fn(&mut ItemCtx<'_>, EdgeId) -> VertexId + Sync,
    functor: impl AdvanceFunctor,
) -> (Event, Option<usize>) {
    let m = graph.edge_count() as u32;
    let process = |sg: &mut SubgroupCtx<'_, '_>, word_idx: usize, word: W| {
        // One lane per set bit: edge frontiers are uniform by design.
        let first_edge = word_idx as u32 * W::BITS;
        let passes = W::BITS.div_ceil(sg.width());
        for p in 0..passes {
            let bit_base = p * sg.width();
            let mask = sg.ballot(|lane| {
                let bit = bit_base + lane;
                bit < W::BITS && word.test_bit(bit) && first_edge + bit < m
            });
            if mask == 0 {
                continue;
            }
            sg.lanes(mask, |lane, item| {
                let e = first_edge + bit_base + lane;
                let src = src_of(item, e);
                let dst = graph.edge_dest(item, e);
                let w = graph.edge_weight(item, e);
                item.compute(2);
                if functor(item, src, dst, e, w) {
                    output.insert_lane(item, dst);
                }
            });
        }
    };
    match input.compact(q) {
        Some((nz, offsets)) => {
            if nz == 0 {
                return (no_launch(q), Some(0));
            }
            let words = input.words();
            let ev = launch_edges(
                q,
                tuning,
                nz,
                |sg, pos| {
                    let word_idx = sg.load_uniform(offsets, pos) as usize;
                    (word_idx, sg.load_uniform(words, word_idx))
                },
                &process,
            );
            (ev, Some(nz))
        }
        None => {
            let words = input.words();
            let ev = launch_edges(
                q,
                tuning,
                input.num_words(),
                |sg, pos| (pos, sg.load_uniform(words, pos)),
                &process,
            );
            (ev, None)
        }
    }
}

/// Shared launch shell for [`edges`]: `resolve` maps a schedule position to
/// a `(word_idx, word)` pair — from the compaction offsets buffer under the
/// two-layer layout, or the position itself for flat bitmaps — and
/// `process` expands one non-zero word.
fn launch_edges<W: Word>(
    q: &Queue,
    tuning: &Tuning,
    n_positions: usize,
    resolve: impl Fn(&mut SubgroupCtx<'_, '_>, usize) -> (usize, W) + Sync,
    process: &(impl Fn(&mut SubgroupCtx<'_, '_>, usize, W) + Sync),
) -> Event {
    let sgs = tuning.subgroups_per_wg as usize;
    let coarsening = tuning.coarsening as usize;
    let wpg = sgs * coarsening;
    let groups = n_positions.div_ceil(wpg.max(1));
    if groups == 0 {
        return no_launch(q);
    }
    let cfg = LaunchConfig::new("advance_edges", groups, tuning.wg_size(), tuning.sg_size);
    q.launch(cfg, |ctx| {
        let base = ctx.group_id * wpg;
        ctx.for_each_subgroup(|sg| {
            for c in 0..coarsening {
                let pos = base + sg.sg_id() as usize * coarsening + c;
                if pos >= n_positions {
                    break;
                }
                let (word_idx, word) = resolve(sg, pos);
                if word.is_zero() {
                    // Only reachable on the flat path: compacted positions
                    // always resolve to non-zero words.
                    sg.compute(1);
                    continue;
                }
                process(sg, word_idx, word);
            }
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{BitmapFrontier, Frontier, SparseFrontier, TwoLayerFrontier};
    use crate::graph::device::DeviceCsr;
    use crate::graph::host::CsrHost;
    use crate::inspector::{inspect, OptConfig};
    use sygraph_sim::{Device, DeviceProfile};

    /// Kernel names launched on `q` after the first `skip` records.
    fn kernel_names_after(q: &Queue, skip: usize) -> Vec<String> {
        q.profiler().kernels()[skip..]
            .iter()
            .map(|k| k.name.clone())
            .collect()
    }

    /// Tuning forcing the bucketed path with test-sized thresholds:
    /// degree ≤ 2 small, 3..=7 medium, ≥ 8 large (chunks of 8).
    fn bucket_tuning(q: &Queue, n: usize) -> Tuning {
        let mut t = inspect(q.profile(), &OptConfig::all(), n);
        t.balancing = Balancing::Bucketed;
        t.small_max_degree = 2;
        t.large_min_degree = 8;
        t
    }

    /// Hub 0 → 1..=20 (large), 1 → 2 (small), 2 → {3,4,5} (medium).
    fn mixed_degree_graph(q: &Queue) -> DeviceCsr {
        let mut edges: Vec<(u32, u32)> = (1..=20).map(|v| (0, v)).collect();
        edges.push((1, 2));
        edges.extend([(2, 3), (2, 4), (2, 5)]);
        DeviceCsr::upload(q, &CsrHost::from_edges(22, &edges)).unwrap()
    }

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn tuning(q: &Queue, n: usize) -> Tuning {
        inspect(q.profile(), &OptConfig::all(), n)
    }

    fn star_graph(q: &Queue) -> DeviceCsr {
        // 0 -> 1..=20 (high-degree hub), 21 isolated
        let edges: Vec<(u32, u32)> = (1..=20).map(|v| (0, v)).collect();
        DeviceCsr::upload(q, &CsrHost::from_edges(22, &edges)).unwrap()
    }

    #[test]
    fn advance_expands_neighbors_two_layer() {
        let q = queue();
        let g = star_graph(&q);
        let mut t = tuning(&q, 22);
        t.word_bits = 32;
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        output.check_invariant().unwrap();
        assert_eq!(output.to_sorted_vec(), (1..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn advance_expands_neighbors_plain_bitmap() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let input = BitmapFrontier::<u32>::new(&q, 22).unwrap();
        let output = BitmapFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(output.to_sorted_vec(), (1..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn functor_filters_destinations() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, d, _e, _w| d % 2 == 0);
        assert_eq!(
            output.to_sorted_vec(),
            (1..=20).filter(|v| v % 2 == 0).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn functor_sees_src_edge_and_weight() {
        let q = queue();
        let h = CsrHost::from_edges_weighted(3, &[(0, 1), (1, 2)], Some(&[2.5, 7.5]));
        let g = DeviceCsr::upload(&q, &h).unwrap();
        let t = tuning(&q, 3);
        let input = TwoLayerFrontier::<u32>::new(&q, 3).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 3).unwrap();
        input.insert_host(1);
        let seen = q.malloc_device::<f32>(1).unwrap();
        let srcs = q.malloc_device::<u32>(1).unwrap();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|l, s, _d, e, w| {
                l.fetch_add_f32(&seen, 0, w + e as f32);
                l.fetch_add(&srcs, 0, s);
                true
            });
        assert_eq!(seen.load(0), 7.5 + 1.0);
        assert_eq!(srcs.load(0), 1);
        assert_eq!(output.to_sorted_vec(), vec![2]);
    }

    #[test]
    fn duplicate_discoveries_coalesce_into_one_bit() {
        // Two sources both point at vertex 3: bitmap output holds it once.
        let q = queue();
        let h = CsrHost::from_edges(4, &[(0, 3), (1, 3)]);
        let g = DeviceCsr::upload(&q, &h).unwrap();
        let t = tuning(&q, 4);
        let input = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
        input.insert_host(0);
        input.insert_host(1);
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(output.count(&q), 1);
        output.check_invariant().unwrap();
    }

    #[test]
    fn discard_variant_runs_functor_without_output() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        let visits = q.malloc_device::<u32>(1).unwrap();
        Advance::new(&q, &g, &input)
            .tuning(&t)
            .run(|l, _s, _d, _e, _w| {
                l.fetch_add(&visits, 0, 1);
                false
            });
        assert_eq!(visits.load(0), 20);
    }

    #[test]
    fn vertices_advance_covers_all() {
        let q = queue();
        // chain 0 -> 1 -> 2 -> ... -> 9
        let edges: Vec<(u32, u32)> = (0..9).map(|v| (v, v + 1)).collect();
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(10, &edges)).unwrap();
        let t = tuning(&q, 10);
        let output = TwoLayerFrontier::<u32>::new(&q, 10).unwrap();
        Advance::all_vertices(&q, &g)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(output.to_sorted_vec(), (1..10).collect::<Vec<u32>>());
        let visits = q.malloc_device::<u32>(1).unwrap();
        Advance::<u32, _>::all_vertices(&q, &g)
            .tuning(&t)
            .run(|l, _s, _d, _e, _w| {
                l.fetch_add(&visits, 0, 1);
                false
            });
        assert_eq!(visits.load(0), 9, "one visit per edge");
    }

    #[test]
    fn wide_word_with_narrow_subgroup_multi_pass() {
        // 64-bit words on an 8-lane subgroup: 8 compaction passes.
        let q = queue();
        let edges: Vec<(u32, u32)> = (0..63).map(|v| (v, v + 1)).collect();
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(64, &edges)).unwrap();
        let t = tuning(&q, 64); // host device: sg 8; MSI gives word_bits 8? no: min(sg,64)=8 -> but W is u64 here
        let input = BitmapFrontier::<u64>::new(&q, 64).unwrap();
        let output = BitmapFrontier::<u64>::new(&q, 64).unwrap();
        for v in 0..64 {
            input.insert_host(v);
        }
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(output.to_sorted_vec(), (1..64).collect::<Vec<u32>>());
    }

    #[test]
    fn counted_advance_reports_nonzero_words() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        // empty input: Some(0), no kernels beyond the compaction
        let (_, words) = Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(words, Some(0));
        input.insert_host(0);
        input.insert_host(21); // same 32-bit word as vertex 0
        let (_, words) = Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(words, Some(1));
        // plain bitmaps have no compaction: None
        let flat_in = BitmapFrontier::<u32>::new(&q, 22).unwrap();
        let flat_out = BitmapFrontier::<u32>::new(&q, 22).unwrap();
        let (_, words) = Advance::new(&q, &g, &flat_in)
            .output(&flat_out)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(words, None);
    }

    #[test]
    fn edge_frontier_advance() {
        let q = queue();
        // 0->1 (e0), 0->2 (e1), 1->3 (e2), 2->3 (e3)
        let h = CsrHost::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g = DeviceCsr::upload(&q, &h).unwrap();
        let srcs = g.build_edge_sources(&q).unwrap();
        assert_eq!(srcs.to_vec(), vec![0, 0, 1, 2]);
        let t = tuning(&q, 4);
        // frontier over EDGES (4 of them)
        let edge_in = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
        let vert_out = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
        edge_in.insert_host(1); // edge 0->2
        edge_in.insert_host(2); // edge 1->3
        let seen_srcs = q.malloc_device::<u32>(1).unwrap();
        let (_, nz) = edges(
            &q,
            &g,
            &edge_in,
            &vert_out,
            &t,
            |l, e| l.load(&srcs, e as usize),
            |l, s, _d, _e, _w| {
                l.fetch_add(&seen_srcs, 0, s);
                true
            },
        );
        assert_eq!(nz, Some(1));
        assert_eq!(vert_out.to_sorted_vec(), vec![2, 3]);
        assert_eq!(
            seen_srcs.load(0),
            1,
            "functor saw both sources (ids 0 and 1)"
        );
    }

    #[test]
    fn edge_frontier_advance_plain_bitmap_and_filter() {
        let q = queue();
        let edges_list: Vec<(u32, u32)> = (0..50).map(|v| (v, (v + 1) % 50)).collect();
        let h = CsrHost::from_edges(50, &edges_list);
        let g = DeviceCsr::upload(&q, &h).unwrap();
        let srcs = g.build_edge_sources(&q).unwrap();
        let t = tuning(&q, 50);
        let edge_in = BitmapFrontier::<u64>::new(&q, 50).unwrap();
        let vert_out = BitmapFrontier::<u64>::new(&q, 50).unwrap();
        for e in 0..50 {
            edge_in.insert_host(e);
        }
        let (_, nz) = edges(
            &q,
            &g,
            &edge_in,
            &vert_out,
            &t,
            |l, e| l.load(&srcs, e as usize),
            |_l, _s, d, _e, _w| d % 2 == 0,
        );
        assert_eq!(nz, None, "plain bitmap has no compaction");
        assert_eq!(
            vert_out.to_sorted_vec(),
            (0..50).filter(|v| v % 2 == 0).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn two_queues_advance_independently() {
        // §3.1: "some operations can run asynchronously, such as two
        // advance functions on separate graphs" — two queues have
        // independent timelines and state.
        let qa = queue();
        let qb = queue();
        let ga = star_graph(&qa);
        let gb = star_graph(&qb);
        let t = tuning(&qa, 22);
        let (ia, oa) = (
            TwoLayerFrontier::<u32>::new(&qa, 22).unwrap(),
            TwoLayerFrontier::<u32>::new(&qa, 22).unwrap(),
        );
        let (ib, ob) = (
            TwoLayerFrontier::<u32>::new(&qb, 22).unwrap(),
            TwoLayerFrontier::<u32>::new(&qb, 22).unwrap(),
        );
        ia.insert_host(0);
        ib.insert_host(0);
        let (ea, _) = Advance::new(&qa, &ga, &ia)
            .output(&oa)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        let (eb, _) = Advance::new(&qb, &gb, &ib)
            .output(&ob)
            .tuning(&t)
            .run(|_l, _s, d, _e, _w| d < 10);
        ea.wait();
        eb.wait();
        assert_eq!(oa.to_sorted_vec().len(), 20);
        assert_eq!(ob.to_sorted_vec().len(), 9);
        // each queue only saw its own kernels
        assert!(qa.profiler().kernel_count() >= 1);
        assert!(qb.profiler().kernel_count() >= 1);
    }

    #[test]
    fn empty_frontier_is_cheap_with_two_layer() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert!(output.is_empty(&q));
    }

    #[test]
    fn builder_defaults_tuning_via_inspector() {
        let q = queue();
        let g = star_graph(&q);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        Advance::new(&q, &g, &input)
            .output(&output)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(output.to_sorted_vec(), (1..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn fused_compute_runs_once_per_new_vertex() {
        let q = queue();
        // Two sources both point at 3; a chain edge reaches 2: the fused
        // functor must fire once for 3 (despite two discovering edges) and
        // once for 2.
        let h = CsrHost::from_edges(4, &[(0, 3), (1, 3), (0, 2)]);
        let g = DeviceCsr::upload(&q, &h).unwrap();
        let t = tuning(&q, 4);
        let input = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
        input.insert_host(0);
        input.insert_host(1);
        let fired = q.malloc_device::<u32>(4).unwrap();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .fuse(&|l, v| {
                l.fetch_add(&fired, v as usize, 1);
            })
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(fired.to_vec(), vec![0, 0, 1, 1]);
        assert_eq!(output.to_sorted_vec(), vec![2, 3]);
    }

    #[test]
    fn fused_skips_already_set_destinations() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        // Pre-populate half the destinations: fused compute must not fire
        // for them (their bits were already set).
        for v in (1..=20).filter(|v| v % 2 == 0) {
            output.insert_host(v);
        }
        let fired = q.malloc_device::<u32>(1).unwrap();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .fuse(&|l, _v| {
                l.fetch_add(&fired, 0, 1);
            })
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(fired.load(0), 10, "only first-time insertions fire");
    }

    #[test]
    #[should_panic(expected = "output frontier")]
    fn fuse_without_output_panics() {
        let q = queue();
        let g = star_graph(&q);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        Advance::new(&q, &g, &input)
            .fuse(&|_l, _v| {})
            .run(|_l, _s, _d, _e, _w| true);
    }

    #[test]
    fn bucketed_matches_workgroup_mapped() {
        let q = queue();
        let g = mixed_degree_graph(&q);
        let t_wg = tuning(&q, 22);
        let t_bk = bucket_tuning(&q, 22);
        let run = |t: &Tuning| {
            let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
            let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
            for v in [0, 1, 2] {
                input.insert_host(v);
            }
            let (_, nz) = Advance::new(&q, &g, &input)
                .output(&output)
                .tuning(t)
                .run(|_l, _s, d, _e, _w| d != 7);
            (output.words().to_vec(), nz)
        };
        let (wg_words, wg_nz) = run(&t_wg);
        let (bk_words, bk_nz) = run(&t_bk);
        assert_eq!(wg_words, bk_words, "output frontiers bit-identical");
        assert_eq!(wg_nz, bk_nz);
    }

    #[test]
    fn bucketed_launches_only_nonempty_buckets() {
        let q = queue();
        let g = mixed_degree_graph(&q);
        let t = bucket_tuning(&q, 22);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(1); // degree 1 → small bucket only
        let before = q.profiler().kernel_count();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        let names = kernel_names_after(&q, before);
        assert!(names.contains(&"advance_bucket_bin".to_string()));
        assert!(names.contains(&"advance_small".to_string()));
        assert!(!names.contains(&"advance_medium".to_string()));
        assert!(!names.contains(&"advance_large".to_string()));
        assert_eq!(output.to_sorted_vec(), vec![2]);
    }

    #[test]
    fn bucketed_large_chunks_cover_whole_adjacency() {
        let q = queue();
        // hub with degree 100 → 13 chunks of 8 under bucket_tuning
        let edges: Vec<(u32, u32)> = (1..=100).map(|v| (0, v)).collect();
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(101, &edges)).unwrap();
        let t = bucket_tuning(&q, 101);
        let input = TwoLayerFrontier::<u32>::new(&q, 101).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 101).unwrap();
        input.insert_host(0);
        let visits = q.malloc_device::<u32>(1).unwrap();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|l, _s, _d, _e, _w| {
                l.fetch_add(&visits, 0, 1);
                true
            });
        assert_eq!(visits.load(0), 100, "each edge visited exactly once");
        assert_eq!(output.to_sorted_vec(), (1..=100).collect::<Vec<u32>>());
    }

    #[test]
    fn auto_needs_skew_and_frontier_volume() {
        let q = queue();
        // hub 0 → 1..=30 plus leaves scattered over five bitmap words;
        // enough quiet words (n = 512 → 16 windows) that the hub's window
        // clears the Auto clustering bar.
        let mut edges: Vec<(u32, u32)> = (1..=30).map(|v| (0, v)).collect();
        for v in [33u32, 65, 97, 129] {
            edges.push((v, v + 1));
        }
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(512, &edges)).unwrap();
        let mut t = tuning(&q, 512);
        t.word_bits = 32;
        t.balancing = Balancing::Auto;
        t.small_max_degree = 2;
        t.large_min_degree = 16; // hub (30) qualifies
        let run_and_names = |actives: &[u32]| {
            let input = TwoLayerFrontier::<u32>::new(&q, 512).unwrap();
            let output = TwoLayerFrontier::<u32>::new(&q, 512).unwrap();
            for &v in actives {
                input.insert_host(v);
            }
            let before = q.profiler().kernel_count();
            Advance::new(&q, &g, &input)
                .output(&output)
                .tuning(&t)
                .run(|_l, _s, _d, _e, _w| true);
            kernel_names_after(&q, before)
        };
        // 5 non-zero words on a skewed graph: Auto goes bucketed.
        let names = run_and_names(&[0, 33, 65, 97, 129]);
        assert!(names.contains(&"advance_bucket_bin".to_string()));
        // 1 word: stays workgroup-mapped, no binning launch.
        let names = run_and_names(&[0]);
        assert!(!names.contains(&"advance_bucket_bin".to_string()));
        assert!(names.contains(&"advance".to_string()));
    }

    #[test]
    fn empty_frontier_launches_only_the_compaction() {
        let q = queue();
        let g = star_graph(&q);
        for t in [tuning(&q, 22), bucket_tuning(&q, 22)] {
            let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
            let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
            let before = q.profiler().kernel_count();
            let (_, nz) = Advance::new(&q, &g, &input)
                .output(&output)
                .tuning(&t)
                .run(|_l, _s, _d, _e, _w| true);
            assert_eq!(nz, Some(0));
            assert_eq!(
                kernel_names_after(&q, before),
                vec!["frontier_compact".to_string()],
                "no empty advance grid may be launched"
            );
        }
    }

    #[test]
    fn zero_vertex_graph_launches_nothing() {
        let q = queue();
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(0, &[])).unwrap();
        let t = tuning(&q, 1);
        let output = TwoLayerFrontier::<u32>::new(&q, 1).unwrap();
        let before = q.profiler().kernel_count();
        Advance::<u32, _>::all_vertices(&q, &g)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(q.profiler().kernel_count(), before);
    }

    #[test]
    fn fused_fires_once_per_vertex_across_buckets() {
        let q = queue();
        // 0 → 2..=21 (large bucket), 1 → 2 (small bucket): vertex 2 is
        // discovered by both paths but the fused compute runs once.
        let mut edges: Vec<(u32, u32)> = (2..=21).map(|v| (0, v)).collect();
        edges.push((1, 2));
        let g = DeviceCsr::upload(&q, &CsrHost::from_edges(22, &edges)).unwrap();
        let t = bucket_tuning(&q, 22);
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        input.insert_host(1);
        let fired = q.malloc_device::<u32>(22).unwrap();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .fuse(&|l, v| {
                l.fetch_add(&fired, v as usize, 1);
            })
            .run(|_l, _s, _d, _e, _w| true);
        let fired = fired.to_vec();
        for (v, &count) in fired.iter().enumerate().take(22).skip(2) {
            assert_eq!(count, 1, "vertex {v} fused exactly once");
        }
    }

    #[test]
    fn pooled_buffers_are_reused() {
        let q = queue();
        let g = mixed_degree_graph(&q);
        let t = bucket_tuning(&q, 22);
        let spec = BucketSpec::from_tuning(&t);
        let pool = BucketPool::new(&q, 22, g.edge_count(), &spec).unwrap();
        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        for v in [0, 1, 2] {
            input.insert_host(v);
        }
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .pool(Some(&pool))
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(output.to_sorted_vec(), (1..=20).collect::<Vec<u32>>());
        let counts = pool.read_counts();
        assert_eq!(counts.small, 1, "pool holds the last binning result");
        assert_eq!(counts.medium, 1);
        assert!(counts.large >= 3, "hub split into ≥3 chunks of 8");
    }

    #[test]
    fn sparse_input_skips_compaction_and_matches_dense() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let dense_in = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let dense_out = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        dense_in.insert_host(0);
        Advance::new(&q, &g, &dense_in)
            .output(&dense_out)
            .tuning(&t)
            .run(|_l, _s, d, _e, _w| d != 7);

        let sparse_in = SparseFrontier::<u32>::new(&q, 22).unwrap();
        let sparse_out = SparseFrontier::<u32>::new(&q, 22).unwrap();
        sparse_in.insert_host(0);
        let before = q.profiler().kernel_count();
        let (_, counted) = Advance::new(&q, &g, &sparse_in)
            .output(&sparse_out)
            .tuning(&t)
            .run(|_l, _s, d, _e, _w| d != 7);
        let names = kernel_names_after(&q, before);
        assert_eq!(counted, Some(1), "counted result is the list length");
        assert!(names.contains(&"advance_sparse".to_string()));
        assert!(
            !names
                .iter()
                .any(|n| n == "frontier_compact" || n == "advance"),
            "sparse dispatch must skip the bitmap scan: {names:?}"
        );
        assert_eq!(sparse_out.words().to_vec(), dense_out.words().to_vec());
    }

    #[test]
    fn sparse_empty_input_launches_nothing() {
        let q = queue();
        let g = star_graph(&q);
        let t = tuning(&q, 22);
        let input = SparseFrontier::<u32>::new(&q, 22).unwrap();
        let output = SparseFrontier::<u32>::new(&q, 22).unwrap();
        let before = q.profiler().kernel_count();
        let (_, counted) = Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(counted, Some(0));
        assert_eq!(
            q.profiler().kernel_count(),
            before,
            "an empty sparse frontier costs zero kernels — not even a compaction"
        );
    }

    #[test]
    fn sparse_input_through_bucketed_path_matches() {
        let q = queue();
        let g = mixed_degree_graph(&q);
        let t = bucket_tuning(&q, 22);
        let run_dense = || {
            let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
            let output = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
            for v in [0, 1, 2] {
                input.insert_host(v);
            }
            let (_, nz) = Advance::new(&q, &g, &input)
                .output(&output)
                .tuning(&t)
                .run(|_l, _s, d, _e, _w| d != 7);
            (output.words().to_vec(), nz)
        };
        let run_sparse = || {
            let input = SparseFrontier::<u32>::new(&q, 22).unwrap();
            let output = SparseFrontier::<u32>::new(&q, 22).unwrap();
            for v in [0, 1, 2] {
                input.insert_host(v);
            }
            let before = q.profiler().kernel_count();
            let (_, counted) = Advance::new(&q, &g, &input)
                .output(&output)
                .tuning(&t)
                .run(|_l, _s, d, _e, _w| d != 7);
            let names = kernel_names_after(&q, before);
            assert!(names.contains(&"advance_bucket_bin".to_string()));
            assert!(!names.contains(&"frontier_compact".to_string()));
            (output.words().to_vec(), counted)
        };
        let (dense_words, _) = run_dense();
        let (sparse_words, counted) = run_sparse();
        assert_eq!(dense_words, sparse_words, "bit-identical across reps");
        assert_eq!(counted, Some(3), "three active vertices in the list");
    }

    /// A pull-capable graph (CSR + CSC) over the given edges, with the
    /// CSC view already resident (the engine does this lazily via
    /// `ensure_pull_ready`; a bare operator test does it up front).
    fn pull_graph(q: &Queue, n: usize, edges: &[(u32, u32)]) -> crate::graph::Graph {
        let g = crate::graph::Graph::with_pull(q, &CsrHost::from_edges(n, edges)).unwrap();
        assert!(matches!(g.ensure_pull(q), Ok(true)));
        g
    }

    #[test]
    fn pull_all_vertices_matches_push() {
        let q = queue();
        let edges: Vec<(u32, u32)> = (1..=20).map(|v| (0, v)).collect();
        let g = pull_graph(&q, 22, &edges);
        let t = tuning(&q, 22);

        let input = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        input.insert_host(0);
        let push_out = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        Advance::new(&q, &g, &input)
            .output(&push_out)
            .tuning(&t)
            .run(|_l, _s, _d, _e, _w| true);

        let pull_out = TwoLayerFrontier::<u32>::new(&q, 22).unwrap();
        let before = q.profiler().kernel_count();
        Advance::new(&q, &g, &input)
            .output(&pull_out)
            .tuning(&t)
            .pull(PullScope::AllVertices)
            .run(|_l, _s, _d, _e, _w| true);
        assert!(
            kernel_names_after(&q, before)
                .iter()
                .any(|n| n.starts_with("advance_pull")),
            "the pull kernel family must carry the scan"
        );
        pull_out.check_invariant().unwrap();
        assert_eq!(pull_out.to_sorted_vec(), push_out.to_sorted_vec());
    }

    #[test]
    fn pull_unvisited_adopts_and_removes_candidates() {
        // Frontier {0}; candidates {1, 2, 3, 6}. Only 1 and 2 have a
        // frontier parent: they adopt (into the output) and leave the
        // candidate set in-kernel; 3 (no in-edges) and 6 (parent 5 not in
        // the frontier) stay candidates.
        let q = queue();
        let g = pull_graph(&q, 8, &[(0, 1), (0, 2), (5, 6)]);
        let t = tuning(&q, 8);
        let input = TwoLayerFrontier::<u32>::new(&q, 8).unwrap();
        input.insert_host(0);
        let unvisited = TwoLayerFrontier::<u32>::new(&q, 8).unwrap();
        for v in [1, 2, 3, 6] {
            unvisited.insert_host(v);
        }
        let output = TwoLayerFrontier::<u32>::new(&q, 8).unwrap();
        Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .pull(PullScope::Unvisited(&unvisited))
            .run(|_l, _s, _d, _e, _w| true);
        output.check_invariant().unwrap();
        unvisited.check_invariant().unwrap();
        assert_eq!(output.to_sorted_vec(), vec![1, 2]);
        assert_eq!(unvisited.to_sorted_vec(), vec![3, 6]);
    }

    #[test]
    fn pull_counted_result_is_the_input_compaction() {
        // The pull contract counts the INPUT frontier's compaction (the
        // number read back to size nothing — it rides along so the engine
        // can test convergence and feed its estimates without an extra
        // sync): two set bits in different words count two nonzero words.
        let q = queue();
        let g = pull_graph(&q, 200, &[(0, 1), (130, 131)]);
        let t = tuning(&q, 200);
        let input = TwoLayerFrontier::<u64>::new(&q, 200).unwrap();
        input.insert_host(0);
        input.insert_host(130);
        let output = TwoLayerFrontier::<u64>::new(&q, 200).unwrap();
        let (_, counted) = Advance::new(&q, &g, &input)
            .output(&output)
            .tuning(&t)
            .pull(PullScope::AllVertices)
            .run(|_l, _s, _d, _e, _w| true);
        assert_eq!(counted, Some(2), "two nonzero input words");
        assert_eq!(output.to_sorted_vec(), vec![1, 131]);
    }

    #[test]
    fn bucketed_pull_matches_wg_mapped_pull() {
        // In-degree spread across all three buckets: vertex 0 is an
        // in-hub (20), vertex 7 is medium (3), vertex 3 is a leaf (1).
        let q = queue();
        let mut edges: Vec<(u32, u32)> = (1..=20).map(|v| (v, 0)).collect();
        edges.push((1, 3));
        edges.extend([(8, 7), (9, 7), (10, 7)]);
        let g = pull_graph(&q, 21, &edges);

        let run_with = |t: &Tuning| {
            let input = TwoLayerFrontier::<u32>::new(&q, 21).unwrap();
            for v in 1..=20 {
                input.insert_host(v);
            }
            let unvisited = TwoLayerFrontier::<u32>::new(&q, 21).unwrap();
            for v in [0, 3, 7] {
                unvisited.insert_host(v);
            }
            let output = TwoLayerFrontier::<u32>::new(&q, 21).unwrap();
            let before = q.profiler().kernel_count();
            Advance::new(&q, &g, &input)
                .output(&output)
                .tuning(t)
                .pull(PullScope::Unvisited(&unvisited))
                .run(|_l, _s, _d, _e, _w| true);
            output.check_invariant().unwrap();
            assert_eq!(unvisited.count(&q), 0, "every candidate adopts");
            (output.to_sorted_vec(), kernel_names_after(&q, before))
        };

        let (plain, _) = run_with(&tuning(&q, 21));
        let (bucketed, names) = run_with(&bucket_tuning(&q, 21));
        assert_eq!(plain, bucketed, "balancing must not change adoptions");
        assert_eq!(plain, vec![0, 3, 7]);
        for k in [
            "advance_pull_small",
            "advance_pull_medium",
            "advance_pull_large",
        ] {
            assert!(names.contains(&k.to_string()), "missing {k} in {names:?}");
        }
    }
}
