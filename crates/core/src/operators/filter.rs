//! The `filter` primitive (§3.1): removes frontier elements failing a
//! predicate, either in place or into a new frontier. Implemented with a
//! SYCL `range` kernel (the paper leaves blocking to the compiler for
//! filter/compute, §3.3).

use sygraph_sim::{Event, ItemCtx, Queue};

use crate::frontier::word::{locate, Word};
use crate::frontier::BitmapLike;
use crate::types::VertexId;

/// The filter functor: `(lane, vertex) -> bool` — `true` keeps the vertex,
/// matching the paper's `Functor(id) -> Bool`.
pub trait FilterFunctor: Fn(&mut ItemCtx<'_>, VertexId) -> bool + Sync {}
impl<F> FilterFunctor for F where F: Fn(&mut ItemCtx<'_>, VertexId) -> bool + Sync {}

/// `filter::inplace(G, Frontier, Functor)`: removes elements failing
/// `functor` from `frontier`.
pub fn inplace<W: Word>(
    q: &Queue,
    frontier: &dyn BitmapLike<W>,
    functor: impl FilterFunctor,
) -> Event {
    let words = frontier.words();
    q.parallel_for("filter_inplace", frontier.capacity(), |lane, v| {
        let (wi, b) = locate::<W>(v as u32);
        let w = lane.load(words, wi);
        if w.test_bit(b) {
            lane.compute(1);
            if !functor(lane, v as u32) {
                frontier.remove_lane(lane, v as u32);
            }
        }
    })
}

/// `filter::external(G, In, Out, Functor)`: copies elements of `input`
/// passing `functor` into `output` (which is cleared by the caller).
pub fn external<W: Word>(
    q: &Queue,
    input: &dyn BitmapLike<W>,
    output: &dyn BitmapLike<W>,
    functor: impl FilterFunctor,
) -> Event {
    let words = input.words();
    q.parallel_for("filter_external", input.capacity(), |lane, v| {
        let (wi, b) = locate::<W>(v as u32);
        let w = lane.load(words, wi);
        if w.test_bit(b) {
            lane.compute(1);
            if functor(lane, v as u32) {
                output.insert_lane(lane, v as u32);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{Frontier, TwoLayerFrontier};
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn inplace_removes_failures() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 300).unwrap();
        for v in 0..300 {
            f.insert_host(v);
        }
        inplace(&q, &f, |_l, v| v % 3 == 0);
        assert_eq!(f.count(&q), 100);
        f.check_invariant().unwrap();
        assert_eq!(f.to_sorted_vec(), (0..300).step_by(3).collect::<Vec<u32>>());
    }

    #[test]
    fn inplace_clearing_everything_resets_layer2() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 128).unwrap();
        f.insert_host(5);
        f.insert_host(100);
        inplace(&q, &f, |_l, _v| false);
        assert!(f.is_empty(&q));
        f.check_invariant().unwrap();
        let (nz, _) = f.compact(&q).unwrap();
        assert_eq!(nz, 0);
    }

    #[test]
    fn external_copies_passers() {
        let q = queue();
        let input = TwoLayerFrontier::<u32>::new(&q, 200).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 200).unwrap();
        for v in [1u32, 50, 51, 150] {
            input.insert_host(v);
        }
        external(&q, &input, &output, |_l, v| v >= 50);
        assert_eq!(output.to_sorted_vec(), vec![50, 51, 150]);
        // input untouched
        assert_eq!(input.count(&q), 4);
        output.check_invariant().unwrap();
    }

    #[test]
    fn functor_can_read_device_data() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 64).unwrap();
        let keep = q.malloc_device::<u32>(64).unwrap();
        for v in 0..64 {
            f.insert_host(v);
            keep.store(v as usize, v % 2);
        }
        inplace(&q, &f, |l, v| l.load(&keep, v as usize) != 0);
        assert_eq!(f.count(&q), 32);
    }
}
