//! The `filter` primitive (§3.1): removes frontier elements failing a
//! predicate, either in place or into a new frontier. Implemented with a
//! SYCL `range` kernel (the paper leaves blocking to the compiler for
//! filter/compute, §3.3).

use sygraph_sim::{Event, ItemCtx, Queue};

use crate::frontier::word::{locate, Word};
use crate::frontier::BitmapLike;
use crate::types::VertexId;

/// The filter functor: `(lane, vertex) -> bool` — `true` keeps the vertex,
/// matching the paper's `Functor(id) -> Bool`.
pub trait FilterFunctor: Fn(&mut ItemCtx<'_>, VertexId) -> bool + Sync {}
impl<F> FilterFunctor for F where F: Fn(&mut ItemCtx<'_>, VertexId) -> bool + Sync {}

/// A zero-duration event for filters with nothing to scan (an empty
/// sparse list needs no kernel at all).
fn no_launch(q: &Queue) -> Event {
    let now = q.now_ns();
    Event {
        start_ns: now,
        end_ns: now,
    }
}

/// `filter::inplace(G, Frontier, Functor)`: removes elements failing
/// `functor` from `frontier`.
///
/// When the frontier presents a sparse view, the kernel runs over the
/// item list — population-proportional instead of capacity-proportional,
/// the same asymptotic win the sparse advance gets. Removals go through
/// [`BitmapLike::remove_lane`] either way, so the bitmap stays the source
/// of truth in both representations.
pub fn inplace<W: Word>(
    q: &Queue,
    frontier: &dyn BitmapLike<W>,
    functor: impl FilterFunctor,
) -> Event {
    if let Some(view) = frontier.sparse_view(q) {
        if view.len == 0 {
            return no_launch(q);
        }
        let items = view.items;
        return q.parallel_for("filter_inplace_sparse", view.len, |lane, i| {
            let v = lane.load(items, i);
            lane.compute(1);
            if !functor(lane, v) {
                frontier.remove_lane(lane, v);
            }
        });
    }
    let words = frontier.words();
    q.parallel_for("filter_inplace", frontier.capacity(), |lane, v| {
        let (wi, b) = locate::<W>(v as u32);
        // Atomic read: other lanes remove bits from this same word via
        // fetch_and in this launch.
        let w = lane.load_atomic(words, wi);
        if w.test_bit(b) {
            lane.compute(1);
            if !functor(lane, v as u32) {
                frontier.remove_lane(lane, v as u32);
            }
        }
    })
}

/// `filter::external(G, In, Out, Functor)`: copies elements of `input`
/// passing `functor` into `output` (which is cleared by the caller).
///
/// A sparse input is scanned through its item list
/// ("filter_external_sparse"); insertions use the output's own insert
/// path, so a sparse output keeps its list exact.
pub fn external<W: Word>(
    q: &Queue,
    input: &dyn BitmapLike<W>,
    output: &dyn BitmapLike<W>,
    functor: impl FilterFunctor,
) -> Event {
    if let Some(view) = input.sparse_view(q) {
        if view.len == 0 {
            return no_launch(q);
        }
        let items = view.items;
        return q.parallel_for("filter_external_sparse", view.len, |lane, i| {
            let v = lane.load(items, i);
            lane.compute(1);
            if functor(lane, v) {
                output.insert_lane(lane, v);
            }
        });
    }
    let words = input.words();
    q.parallel_for("filter_external", input.capacity(), |lane, v| {
        let (wi, b) = locate::<W>(v as u32);
        let w = lane.load(words, wi);
        if w.test_bit(b) {
            lane.compute(1);
            if functor(lane, v as u32) {
                output.insert_lane(lane, v as u32);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{Frontier, RepKind, SparseFrontier, TwoLayerFrontier};
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn inplace_removes_failures() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 300).unwrap();
        for v in 0..300 {
            f.insert_host(v);
        }
        inplace(&q, &f, |_l, v| v % 3 == 0);
        assert_eq!(f.count(&q), 100);
        f.check_invariant().unwrap();
        assert_eq!(f.to_sorted_vec(), (0..300).step_by(3).collect::<Vec<u32>>());
    }

    #[test]
    fn inplace_clearing_everything_resets_layer2() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 128).unwrap();
        f.insert_host(5);
        f.insert_host(100);
        inplace(&q, &f, |_l, _v| false);
        assert!(f.is_empty(&q));
        f.check_invariant().unwrap();
        let (nz, _) = f.compact(&q).unwrap();
        assert_eq!(nz, 0);
    }

    #[test]
    fn external_copies_passers() {
        let q = queue();
        let input = TwoLayerFrontier::<u32>::new(&q, 200).unwrap();
        let output = TwoLayerFrontier::<u32>::new(&q, 200).unwrap();
        for v in [1u32, 50, 51, 150] {
            input.insert_host(v);
        }
        external(&q, &input, &output, |_l, v| v >= 50);
        assert_eq!(output.to_sorted_vec(), vec![50, 51, 150]);
        // input untouched
        assert_eq!(input.count(&q), 4);
        output.check_invariant().unwrap();
    }

    #[test]
    fn sparse_inplace_scans_only_the_list() {
        let q = queue();
        let f = SparseFrontier::<u32>::new(&q, 100_000).unwrap();
        for v in [3u32, 10, 12, 28] {
            f.insert_host(v);
        }
        let before = q.profiler().kernel_count();
        inplace(&q, &f, |_l, v| v % 3 == 0);
        let names: Vec<String> = q.profiler().kernels()[before..]
            .iter()
            .map(|k| k.name.clone())
            .collect();
        assert_eq!(names, vec!["filter_inplace_sparse".to_string()]);
        assert_eq!(f.to_sorted_vec(), vec![3, 12]);
    }

    #[test]
    fn sparse_inplace_matches_dense_result() {
        let q = queue();
        let dense = TwoLayerFrontier::<u32>::new(&q, 300).unwrap();
        let sparse = SparseFrontier::<u32>::new(&q, 300).unwrap();
        for v in 0..300 {
            dense.insert_host(v);
            sparse.insert_host(v);
        }
        inplace(&q, &dense, |_l, v| v % 3 == 0);
        inplace(&q, &sparse, |_l, v| v % 3 == 0);
        assert_eq!(dense.to_sorted_vec(), sparse.to_sorted_vec());
        // Removals staled the list; re-adopting sparse rebuilds it.
        assert_eq!(sparse.adopt_rep(&q, RepKind::Sparse), RepKind::Sparse);
        assert_eq!(sparse.sparse_view(&q).unwrap().len, 100);
    }

    #[test]
    fn sparse_external_copies_passers() {
        let q = queue();
        let input = SparseFrontier::<u32>::new(&q, 200).unwrap();
        let output = SparseFrontier::<u32>::new(&q, 200).unwrap();
        for v in [1u32, 50, 51, 150] {
            input.insert_host(v);
        }
        let before = q.profiler().kernel_count();
        external(&q, &input, &output, |_l, v| v >= 50);
        let names: Vec<String> = q.profiler().kernels()[before..]
            .iter()
            .map(|k| k.name.clone())
            .collect();
        assert_eq!(names, vec!["filter_external_sparse".to_string()]);
        assert_eq!(output.to_sorted_vec(), vec![50, 51, 150]);
        assert_eq!(input.count(&q), 4, "input untouched");
        // The output's list was maintained through its insert path.
        assert_eq!(output.sparse_view(&q).unwrap().len, 3);
    }

    #[test]
    fn sparse_empty_filter_launches_nothing() {
        let q = queue();
        let f = SparseFrontier::<u32>::new(&q, 64).unwrap();
        let before = q.profiler().kernel_count();
        inplace(&q, &f, |_l, _v| true);
        let out = SparseFrontier::<u32>::new(&q, 64).unwrap();
        external(&q, &f, &out, |_l, _v| true);
        assert_eq!(q.profiler().kernel_count(), before);
    }

    #[test]
    fn functor_can_read_device_data() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 64).unwrap();
        let keep = q.malloc_device::<u32>(64).unwrap();
        for v in 0..64 {
            f.insert_host(v);
            keep.store(v as usize, v % 2);
        }
        inplace(&q, &f, |l, v| l.load(&keep, v as usize) != 0);
        assert_eq!(f.count(&q), 32);
    }
}
