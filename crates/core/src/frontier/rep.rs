//! Frontier representation descriptors.
//!
//! The two-layer bitmap (§4.3) is duplicate-free and cache-friendly, but
//! its compaction kernel scans `⌈n/b²⌉` second-layer words every superstep
//! regardless of how many vertices are active — on high-diameter road
//! graphs that fixed scan dominates thousands of near-empty supersteps.
//! Gunrock keeps multiple frontier layouts behind one object and
//! GraphBLAST switches between sparse and dense masks per iteration; the
//! types here let our frontiers do the same: a frontier *representation*
//! is how the active set is handed to `advance` — as bitmap words (dense)
//! or as an explicit, duplicate-free item list (sparse).

use sygraph_sim::DeviceBuffer;

/// Which representation a frontier currently presents to the operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepKind {
    /// Bitmap words; `advance` walks (compacted) words.
    Dense,
    /// Explicit item list; `advance` walks list entries — no per-word
    /// scan, cost proportional to the frontier population.
    Sparse,
}

impl RepKind {
    /// Short label for profiler records and reports.
    pub fn label(self) -> &'static str {
        match self {
            RepKind::Dense => "dense",
            RepKind::Sparse => "sparse",
        }
    }
}

/// A borrowed view of a frontier's sparse (item-list) representation.
///
/// The list is duplicate-free and mirrors the bitmap exactly — every set
/// bit appears once in `items[..len]`. Frontiers only hand out a view
/// while that invariant holds (no removals or overflow since the list was
/// last rebuilt), so consumers may skip per-item membership checks.
pub struct SparseView<'a> {
    /// Active vertex ids, `len` valid entries.
    pub items: &'a DeviceBuffer<u32>,
    /// Number of valid entries (read back from the device counter — the
    /// same single host sync the dense path spends on its compaction
    /// count).
    pub len: usize,
}
