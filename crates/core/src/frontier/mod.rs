//! Frontier data layouts.
//!
//! The frontier — the set of active vertices of a superstep — is the
//! paper's central data structure. Four layouts are provided:
//!
//! * [`TwoLayerFrontier`] — the paper's contribution (§4.3): a bitmap plus
//!   a second bitmap layer marking non-empty words, compacted into an
//!   offsets buffer before each `advance` so workgroups only visit
//!   non-zero words.
//! * [`BitmapFrontier`] — the single-layer bitmap of §4.1 (the ablation
//!   baseline of Figure 7).
//! * [`BoolmapFrontier`] — one byte per vertex, as in Grus; 8× the memory
//!   of a bitmap (§4.1 discussion).
//! * [`VectorFrontier`] — the Gunrock-style append vector used by the
//!   baseline frameworks (duplicates allowed, post-processing required).
//! * [`SparseFrontier`] — a duplicate-free item list (dedup-on-insert via a
//!   visited bitmap): advance cost proportional to the frontier population
//!   instead of the bitmap extent.
//! * [`HybridFrontier`] — two-layer bitmap plus a bounded item list,
//!   switching representation per superstep (GraphBLAST-style
//!   sparse/dense masks behind Gunrock's one-frontier-object API).

pub mod bitmap;
pub mod boolmap;
pub mod bucket;
pub mod convert;
pub mod exchange;
pub mod hybrid;
pub mod lanes;
pub mod ops;
pub mod rep;
pub mod sparse;
pub mod two_layer;
pub mod vector;
pub mod word;

pub use bitmap::BitmapFrontier;
pub use boolmap::BoolmapFrontier;
pub use bucket::{BucketCounts, BucketPool, BucketSpec};
pub use exchange::{ChannelMail, ExchangeConfig, ExchangeTally, FrontierExchange, HaloMsg};
pub use hybrid::HybridFrontier;
pub use lanes::{lane_locate, lane_words, LaneFrontier, LaneView};
pub use rep::{RepKind, SparseView};
pub use sparse::SparseFrontier;
pub use two_layer::TwoLayerFrontier;
pub use vector::VectorFrontier;
pub use word::{locate, words_for, Word};

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue};

use crate::types::VertexId;

/// Operations common to every frontier layout.
pub trait Frontier: Sync {
    /// Number of representable vertices.
    fn capacity(&self) -> usize;
    /// Host-side insert (setup; e.g. seeding the BFS source).
    fn insert_host(&self, v: VertexId);
    /// Host-side membership test.
    fn contains_host(&self, v: VertexId) -> bool;
    /// Clears all elements (device kernel — its cost is part of the
    /// algorithm, as in Listing 1 line 19).
    fn clear(&self, q: &Queue);
    /// Number of active elements (device kernel + host read-back).
    fn count(&self, q: &Queue) -> usize;
    /// `count(q) == 0`.
    fn is_empty(&self, q: &Queue) -> bool {
        self.count(q) == 0
    }
    /// Sorted, deduplicated active vertices (host-side; verification).
    fn to_sorted_vec(&self) -> Vec<VertexId>;
    /// Activates every vertex (device kernel) — e.g. the initial frontier
    /// of label-propagation Connected Components.
    fn fill_all(&self, q: &Queue);
}

/// Bitmap-shaped frontiers usable as `advance` input/output: expose their
/// word array, per-lane insert/remove, and (for the two-layer layout) the
/// pre-advance compaction step.
pub trait BitmapLike<W: Word>: Frontier {
    /// Words in the first layer.
    fn num_words(&self) -> usize;
    /// The first-layer word array.
    fn words(&self) -> &DeviceBuffer<W>;
    /// Device-side insert from a kernel lane (atomic OR; updates the
    /// second layer when present).
    fn insert_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId);
    /// Like [`BitmapLike::insert_lane`], but reports whether this lane's
    /// atomic OR was the one that set the bit. Exactly one inserting lane
    /// observes `true` per vertex per superstep — the property the fused
    /// advance+compute path relies on to run the compute functor exactly
    /// once per newly-activated vertex.
    fn insert_lane_checked(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool;
    /// Device-side remove from a kernel lane (atomic AND-NOT; clears the
    /// second-layer bit when the word empties).
    fn remove_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId);
    /// Runs the pre-advance compaction (second layer → offsets buffer).
    /// Returns `Some((nonzero_word_count, offsets))` for two-layer
    /// frontiers, `None` when the advance must visit every word.
    fn compact(&self, q: &Queue) -> Option<(usize, &DeviceBuffer<u32>)>;
    /// Clears the frontier touching only the words the last [`compact`]
    /// found non-zero (the superstep engine's lazy clear). **Precondition:**
    /// no insertions since the last `compact` call — the engine satisfies
    /// this because a superstep's inserts all go to the *other* frontier.
    /// Layouts without a compaction step fall back to a full clear.
    ///
    /// [`compact`]: BitmapLike::compact
    fn lazy_clear(&self, q: &Queue) {
        self.clear(q);
    }

    /// The representation this frontier currently presents to the
    /// operators. Bitmap layouts are always dense; [`SparseFrontier`] and
    /// [`HybridFrontier`] override.
    fn rep_kind(&self) -> RepKind {
        RepKind::Dense
    }

    /// The frontier's sparse item-list view, when it maintains one that is
    /// currently exact (duplicate-free and mirroring the bitmap). `None`
    /// means the consumer must take the dense (word-walking) path. Reading
    /// the list length costs the one host sync the dense path would have
    /// spent on its compaction count.
    fn sparse_view(&self, q: &Queue) -> Option<SparseView<'_>> {
        let _ = q;
        None
    }

    /// Asks the frontier to present `kind` for the upcoming superstep,
    /// running a conversion kernel if its current state requires one.
    /// Returns the representation actually adopted — a frontier may
    /// refuse (pure bitmaps are always dense; a hybrid whose population
    /// overflowed its list capacity stays dense).
    fn adopt_rep(&self, q: &Queue, kind: RepKind) -> RepKind {
        let _ = (q, kind);
        RepKind::Dense
    }

    /// Re-derives secondary state (second bitmap layer, sparse item list)
    /// after the first-layer words were rewritten wholesale — the
    /// obligation frontier set-operators discharge on their output (see
    /// [`ops::apply`]). Plain bitmaps have nothing to rebuild.
    fn rebuild_from_words(&self, q: &Queue) {
        let _ = q;
    }

    /// The frontier's packed per-vertex source-lane masks, when it carries
    /// them beside the union bitmap ([`LaneFrontier`]); `None` for
    /// single-source layouts. The view's buffers are non-owning aliases,
    /// safe to move into advance functors.
    fn lane_view(&self) -> Option<LaneView> {
        None
    }

    /// Host-side insert carrying a source-lane mask (multi-source
    /// seeding). Single-source layouts ignore the mask and insert the
    /// vertex plainly.
    fn insert_host_masked(&self, v: VertexId, mask: u64) {
        let _ = mask;
        self.insert_host(v);
    }
}

/// Swaps two frontiers (Listing 1 line 18: `frontier::swap(in, out)`).
pub fn swap<F>(a: &mut F, b: &mut F) {
    std::mem::swap(a, b);
}
