//! Frontier set operators (§4.1 "Frontiers Operators", Figure 3).
//!
//! With bitmap layouts these run as embarrassingly parallel bitwise
//! kernels: intersection is AND, union is OR, symmetric difference is XOR
//! and subtraction is AND-NOT, one GPU thread per bitmap word.

use sygraph_sim::Queue;

use crate::frontier::word::Word;
use crate::frontier::{BitmapLike, TwoLayerFrontier};

/// The bitwise combiner applied word-by-word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `a ∩ b` — the paper's **intersection** (segmented intersection in
    /// Figure 3 when applied to neighborhood frontiers).
    Intersection,
    /// `a ∪ b` — **union** (e.g. graph machine-learning frontiers).
    Union,
    /// `a Δ b` — **symmetric difference** via XOR.
    SymmetricDifference,
    /// `a \ b` — **subtraction** via AND-NOT (data cleaning).
    Subtraction,
}

impl SetOp {
    fn apply<W: Word>(self, a: W, b: W) -> W {
        match self {
            SetOp::Intersection => a.and(b),
            SetOp::Union => a.or(b),
            SetOp::SymmetricDifference => a.xor(b),
            SetOp::Subtraction => a.and(b.not()),
        }
    }

    fn kernel_name(self) -> &'static str {
        match self {
            SetOp::Intersection => "frontier_intersect",
            SetOp::Union => "frontier_union",
            SetOp::SymmetricDifference => "frontier_symdiff",
            SetOp::Subtraction => "frontier_subtract",
        }
    }
}

/// Applies `op` word-wise: `out = a <op> b`. All three frontiers must
/// cover the same vertex range.
///
/// Operands may mix representations freely: every layout keeps its word
/// array authoritative, so the sparse side needs no materialization pass.
/// Only the *output* needs fixing up — the word-wise stores bypass its
/// insert path, so [`BitmapLike::rebuild_from_words`] runs at the end
/// (layer-2 rebuild for the two-layer layouts, a stale-list mark for the
/// sparse ones; a no-op for plain bitmaps).
pub fn apply<W: Word, A, B, O>(q: &Queue, op: SetOp, a: &A, b: &B, out: &O)
where
    A: BitmapLike<W>,
    B: BitmapLike<W>,
    O: BitmapLike<W>,
{
    assert_eq!(a.num_words(), b.num_words());
    assert_eq!(a.num_words(), out.num_words());
    let aw = a.words();
    let bw = b.words();
    let ow = out.words();
    q.parallel_for(op.kernel_name(), a.num_words(), |lane, i| {
        let x = lane.load(aw, i);
        let y = lane.load(bw, i);
        lane.store(ow, i, op.apply(x, y));
        lane.compute(1);
    });
    out.rebuild_from_words(q);
}

/// `out = a ∩ b`.
pub fn intersection<W: Word, A: BitmapLike<W>, B: BitmapLike<W>, O: BitmapLike<W>>(
    q: &Queue,
    a: &A,
    b: &B,
    out: &O,
) {
    apply(q, SetOp::Intersection, a, b, out);
}

/// `out = a ∪ b`.
pub fn union<W: Word, A: BitmapLike<W>, B: BitmapLike<W>, O: BitmapLike<W>>(
    q: &Queue,
    a: &A,
    b: &B,
    out: &O,
) {
    apply(q, SetOp::Union, a, b, out);
}

/// `out = a Δ b` (XOR).
pub fn symmetric_difference<W: Word, A: BitmapLike<W>, B: BitmapLike<W>, O: BitmapLike<W>>(
    q: &Queue,
    a: &A,
    b: &B,
    out: &O,
) {
    apply(q, SetOp::SymmetricDifference, a, b, out);
}

/// `out = a \ b`.
pub fn subtraction<W: Word, A: BitmapLike<W>, B: BitmapLike<W>, O: BitmapLike<W>>(
    q: &Queue,
    a: &A,
    b: &B,
    out: &O,
) {
    apply(q, SetOp::Subtraction, a, b, out);
}

/// Rebuilds a two-layer frontier's second layer from its first layer
/// (needed after word-wise writes bypass the insert path).
pub fn rebuild_layer2<W: Word>(q: &Queue, f: &TwoLayerFrontier<W>) {
    q.fill(f.layer2(), W::ZERO);
    let words = f.words();
    let layer2 = f.layer2();
    q.parallel_for("layer2_rebuild", f.num_words(), |lane, i| {
        let w = lane.load(words, i);
        if !w.is_zero() {
            let (l2i, l2b) = crate::frontier::word::locate::<W>(i as u32);
            lane.fetch_or(layer2, l2i, W::one_bit(l2b));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{BitmapFrontier, Frontier};
    use std::collections::BTreeSet;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn setup(
        q: &Queue,
        a: &[u32],
        b: &[u32],
    ) -> (
        BitmapFrontier<u32>,
        BitmapFrontier<u32>,
        BitmapFrontier<u32>,
    ) {
        let n = 200;
        let fa = BitmapFrontier::<u32>::new(q, n).unwrap();
        let fb = BitmapFrontier::<u32>::new(q, n).unwrap();
        let fo = BitmapFrontier::<u32>::new(q, n).unwrap();
        for &v in a {
            fa.insert_host(v);
        }
        for &v in b {
            fb.insert_host(v);
        }
        (fa, fb, fo)
    }

    fn reference(op: SetOp, a: &[u32], b: &[u32]) -> Vec<u32> {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        match op {
            SetOp::Intersection => sa.intersection(&sb).copied().collect(),
            SetOp::Union => sa.union(&sb).copied().collect(),
            SetOp::SymmetricDifference => sa.symmetric_difference(&sb).copied().collect(),
            SetOp::Subtraction => sa.difference(&sb).copied().collect(),
        }
    }

    #[test]
    fn all_ops_match_set_reference() {
        let q = queue();
        let a = [1u32, 5, 64, 65, 150];
        let b = [5u32, 64, 99, 150, 151];
        for op in [
            SetOp::Intersection,
            SetOp::Union,
            SetOp::SymmetricDifference,
            SetOp::Subtraction,
        ] {
            let (fa, fb, fo) = setup(&q, &a, &b);
            apply(&q, op, &fa, &fb, &fo);
            assert_eq!(fo.to_sorted_vec(), reference(op, &a, &b), "{op:?}");
        }
    }

    #[test]
    fn two_layer_output_with_rebuild() {
        let q = queue();
        let n = 500;
        let fa = TwoLayerFrontier::<u32>::new(&q, n).unwrap();
        let fb = TwoLayerFrontier::<u32>::new(&q, n).unwrap();
        let fo = TwoLayerFrontier::<u32>::new(&q, n).unwrap();
        for v in [3u32, 100, 301] {
            fa.insert_host(v);
        }
        for v in [100u32, 301, 400] {
            fb.insert_host(v);
        }
        union(&q, &fa, &fb, &fo);
        rebuild_layer2(&q, &fo);
        fo.check_invariant().unwrap();
        assert_eq!(fo.to_sorted_vec(), vec![3, 100, 301, 400]);
        let (nz, _) = fo.compact(&q).unwrap();
        assert_eq!(nz, 4, "words 0, 3, 9, 12");
    }

    #[test]
    fn mixed_representation_operands_and_output() {
        let q = queue();
        let n = 500;
        // Sparse ∪ two-layer → hybrid: the sparse operand's words are read
        // directly (no materialization kernel), and the hybrid output
        // comes back with a valid layer2 and a stale list that the next
        // sparse adoption rebuilds.
        let fa = crate::frontier::SparseFrontier::<u32>::new(&q, n).unwrap();
        let fb = TwoLayerFrontier::<u32>::new(&q, n).unwrap();
        let fo = crate::frontier::HybridFrontier::<u32>::new(&q, n).unwrap();
        for v in [3u32, 100, 301] {
            fa.insert_host(v);
        }
        for v in [100u32, 301, 400] {
            fb.insert_host(v);
        }
        union(&q, &fa, &fb, &fo);
        assert_eq!(fo.to_sorted_vec(), vec![3, 100, 301, 400]);
        assert_eq!(fo.count(&q), 4);
        // layer2 was rebuilt: the counted compaction sees all four words.
        let (nz, _) = fo.compact(&q).unwrap();
        assert_eq!(nz, 4);
        // The word-wise stores bypassed the list: it must not be trusted
        // until re-adopted, and re-adoption recovers the exact contents.
        assert!(fo.sparse_view(&q).is_none());
        assert_eq!(
            fo.adopt_rep(&q, crate::frontier::RepKind::Sparse),
            crate::frontier::RepKind::Sparse
        );
        assert_eq!(fo.sparse_view(&q).unwrap().len, 4);

        // Sparse output: the stale mark applies there too.
        let fs = crate::frontier::SparseFrontier::<u32>::new(&q, n).unwrap();
        subtraction(&q, &fb, &fa, &fs);
        assert_eq!(fs.to_sorted_vec(), vec![400]);
        assert!(fs.sparse_view(&q).is_none(), "list stale after set op");
        fs.adopt_rep(&q, crate::frontier::RepKind::Sparse);
        assert_eq!(fs.sparse_view(&q).unwrap().len, 1);
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let q = queue();
        let (fa, fb, fo) = setup(&q, &[0, 1, 2], &[100, 101]);
        intersection(&q, &fa, &fb, &fo);
        assert!(fo.is_empty(&q));
    }
}
