//! Single-layer bitmap frontier (§4.1) and the shared bitmap machinery.

use sygraph_sim::{DeviceBuffer, ItemCtx, LaunchConfig, Queue, MAX_SUBGROUP};

use crate::frontier::word::{locate, words_for, Word};
use crate::frontier::{BitmapLike, Frontier};
use crate::types::VertexId;

/// Shared storage and kernels for bitmap-shaped frontiers.
pub(crate) struct BitmapStorage<W: Word> {
    n: usize,
    pub(crate) words: DeviceBuffer<W>,
    count_buf: DeviceBuffer<u32>,
}

impl<W: Word> BitmapStorage<W> {
    pub(crate) fn new(q: &Queue, n: usize) -> sygraph_sim::SimResult<Self> {
        Ok(BitmapStorage {
            n,
            words: q.malloc_device::<W>(words_for::<W>(n))?,
            count_buf: q.malloc_device::<u32>(1)?,
        })
    }

    pub(crate) fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Popcount over the word array, as a hierarchical-reduction kernel:
    /// each lane popcounts one word, each subgroup reduces and issues a
    /// single atomic add.
    pub(crate) fn count_kernel(&self, q: &Queue, name: &str) -> usize {
        self.count_buf.store(0, 0);
        let words = self.num_words();
        let sgw = q.profile().preferred_subgroup;
        let wg_size = (sgw * 4).min(q.profile().max_workgroup_size);
        let per_group = wg_size as usize;
        let groups = words.div_ceil(per_group);
        let cfg = LaunchConfig::new(name, groups, wg_size, sgw);
        let buf = &self.words;
        let count_buf = &self.count_buf;
        q.launch(cfg, |ctx| {
            let base = ctx.group_id * per_group;
            ctx.for_each_subgroup(|sg| {
                let w = sg.width();
                let start = base + (sg.sg_id() * w) as usize;
                let mut mask = 0u64;
                for lane in 0..w {
                    if start + (lane as usize) < words {
                        mask |= 1 << lane;
                    }
                }
                if mask == 0 {
                    return;
                }
                let mut pops = [0u32; MAX_SUBGROUP];
                sg.load(
                    buf,
                    mask,
                    |lane| start + lane as usize,
                    |lane, word| pops[lane as usize] = word.count_ones(),
                );
                let total = sg.reduce_add_u64(mask, |lane| pops[lane as usize] as u64);
                if total > 0 {
                    sg.atomic_add(count_buf, 0b1, |_| (0, total as u32), |_, _| {});
                }
            });
        });
        self.count_buf.load(0) as usize
    }

    pub(crate) fn clear_kernel(&self, q: &Queue) {
        q.fill(&self.words, W::ZERO);
    }

    /// Sets the bit of every valid vertex: all-ones words with the tail
    /// word masked to `n % BITS` bits.
    pub(crate) fn fill_all_kernel(&self, q: &Queue) {
        let n = self.n as u32;
        let words = &self.words;
        q.parallel_for("frontier_fill_all", self.num_words(), |lane, i| {
            let first = i as u32 * W::BITS;
            let full = W::ZERO.not();
            let w = if first + W::BITS <= n {
                full
            } else if first >= n {
                W::ZERO
            } else {
                // tail: keep only the low (n - first) bits
                let mut m = W::ZERO;
                for b in 0..(n - first) {
                    m = m.or(W::one_bit(b));
                }
                m
            };
            lane.store(words, i, w);
        });
    }

    pub(crate) fn insert_host(&self, v: VertexId) -> W {
        let (wi, b) = locate::<W>(v);
        self.words.fetch_or(wi, W::one_bit(b))
    }

    pub(crate) fn contains_host(&self, v: VertexId) -> bool {
        let (wi, b) = locate::<W>(v);
        self.words.load(wi).test_bit(b)
    }

    pub(crate) fn to_sorted_vec(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        for (wi, w) in self.words.to_vec().into_iter().enumerate() {
            let mut w = w;
            while !w.is_zero() {
                let b = w.trailing_zeros();
                let v = wi as u32 * W::BITS + b;
                if (v as usize) < self.n {
                    out.push(v);
                }
                w = w.and(W::one_bit(b).not());
            }
        }
        out
    }

    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// Device bytes held: the word array plus the 4-byte count scratch.
    pub(crate) fn device_bytes(&self) -> u64 {
        self.words.bytes() + self.count_buf.bytes()
    }
}

/// The plain single-layer bitmap frontier of §4.1: one bit per vertex,
/// duplicate-free inserts via `atomic_or`, but every word — including
/// all-zero ones — is visited during `advance` (Figure 5a's waste, which
/// the two-layer layout removes).
pub struct BitmapFrontier<W: Word> {
    storage: BitmapStorage<W>,
}

impl<W: Word> BitmapFrontier<W> {
    /// Creates an empty frontier over `n` vertices.
    pub fn new(q: &Queue, n: usize) -> sygraph_sim::SimResult<Self> {
        Ok(BitmapFrontier {
            storage: BitmapStorage::new(q, n)?,
        })
    }

    /// Device bytes held by this frontier.
    pub fn device_bytes(&self) -> u64 {
        self.storage.device_bytes()
    }
}

impl<W: Word> Frontier for BitmapFrontier<W> {
    fn capacity(&self) -> usize {
        self.storage.len()
    }

    fn insert_host(&self, v: VertexId) {
        self.storage.insert_host(v);
    }

    fn contains_host(&self, v: VertexId) -> bool {
        self.storage.contains_host(v)
    }

    fn clear(&self, q: &Queue) {
        self.storage.clear_kernel(q);
    }

    fn count(&self, q: &Queue) -> usize {
        self.storage.count_kernel(q, "frontier_count")
    }

    fn to_sorted_vec(&self) -> Vec<VertexId> {
        self.storage.to_sorted_vec()
    }

    fn fill_all(&self, q: &Queue) {
        self.storage.fill_all_kernel(q);
    }
}

impl<W: Word> BitmapLike<W> for BitmapFrontier<W> {
    fn num_words(&self) -> usize {
        self.storage.num_words()
    }

    fn words(&self) -> &DeviceBuffer<W> {
        &self.storage.words
    }

    fn insert_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        let (wi, b) = locate::<W>(v);
        lane.fetch_or(&self.storage.words, wi, W::one_bit(b));
    }

    fn insert_lane_checked(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool {
        let (wi, b) = locate::<W>(v);
        let old = lane.fetch_or(&self.storage.words, wi, W::one_bit(b));
        !old.test_bit(b)
    }

    fn remove_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        let (wi, b) = locate::<W>(v);
        lane.fetch_and(&self.storage.words, wi, W::one_bit(b).not());
    }

    fn compact(&self, _q: &Queue) -> Option<(usize, &DeviceBuffer<u32>)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn insert_contains_count() {
        let q = queue();
        let f = BitmapFrontier::<u32>::new(&q, 100).unwrap();
        assert!(f.is_empty(&q));
        f.insert_host(0);
        f.insert_host(31);
        f.insert_host(32);
        f.insert_host(99);
        assert!(f.contains_host(31));
        assert!(!f.contains_host(30));
        assert_eq!(f.count(&q), 4);
        assert_eq!(f.to_sorted_vec(), vec![0, 31, 32, 99]);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let q = queue();
        let f = BitmapFrontier::<u64>::new(&q, 64).unwrap();
        for _ in 0..10 {
            f.insert_host(7);
        }
        assert_eq!(f.count(&q), 1);
    }

    #[test]
    fn clear_empties() {
        let q = queue();
        let f = BitmapFrontier::<u32>::new(&q, 1000).unwrap();
        for v in (0..1000).step_by(7) {
            f.insert_host(v);
        }
        assert!(!f.is_empty(&q));
        f.clear(&q);
        assert!(f.is_empty(&q));
        assert!(f.to_sorted_vec().is_empty());
    }

    #[test]
    fn count_large_population() {
        let q = queue();
        let n = 10_000;
        let f = BitmapFrontier::<u32>::new(&q, n).unwrap();
        let mut expect = 0;
        for v in (0..n as u32).step_by(3) {
            f.insert_host(v);
            expect += 1;
        }
        assert_eq!(f.count(&q), expect);
    }

    #[test]
    fn device_insert_via_lane() {
        let q = queue();
        let f = BitmapFrontier::<u32>::new(&q, 256).unwrap();
        q.parallel_for("ins", 256, |ctx, v| {
            if v % 2 == 0 {
                f.insert_lane(ctx, v as u32);
            }
        });
        assert_eq!(f.count(&q), 128);
        q.parallel_for("rem", 256, |ctx, v| {
            if v % 4 == 0 {
                f.remove_lane(ctx, v as u32);
            }
        });
        assert_eq!(f.count(&q), 64);
    }

    #[test]
    fn memory_is_one_bit_per_vertex() {
        let q = queue();
        let f = BitmapFrontier::<u64>::new(&q, 64_000).unwrap();
        assert_eq!(f.device_bytes(), 8 * 1000 + 4);
    }
}
