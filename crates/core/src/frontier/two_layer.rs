//! The Two-Layer Bitmap (2LB) frontier — the paper's §4.3 contribution.
//!
//! On top of the first-layer bitmap, a second layer holds one bit per
//! first-layer word, set whenever that word is non-zero. Before each
//! `advance`, a compaction kernel maps GPU threads onto second-layer words
//! and appends the offsets of non-zero first-layer words to a global
//! buffer; the advance then only schedules workgroups over those offsets,
//! so all-zero words (Figure 5a) never waste a workgroup.

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue};

use crate::frontier::bitmap::BitmapStorage;
use crate::frontier::bucket::{self, BucketCounts, BucketPool, BucketSpec, DegreeOf};
use crate::frontier::word::{locate, words_for, Word};
use crate::frontier::{BitmapLike, Frontier};
use crate::types::VertexId;

/// Two-layer bitmap frontier over `n` vertices.
///
/// Size: `⌈n/b⌉` first-layer words plus `⌈n/b²⌉` second-layer words plus
/// the offsets buffer — still a small constant factor over one bit per
/// vertex.
pub struct TwoLayerFrontier<W: Word> {
    storage: BitmapStorage<W>,
    layer2: DeviceBuffer<W>,
    offsets: DeviceBuffer<u32>,
    offsets_count: DeviceBuffer<u32>,
}

impl<W: Word> TwoLayerFrontier<W> {
    /// Creates an empty frontier over `n` vertices.
    pub fn new(q: &Queue, n: usize) -> sygraph_sim::SimResult<Self> {
        let storage = BitmapStorage::new(q, n)?;
        let nw = storage.num_words();
        Ok(TwoLayerFrontier {
            storage,
            layer2: q.malloc_device::<W>(words_for::<W>(nw))?,
            offsets: q.malloc_device::<u32>(nw)?,
            offsets_count: q.malloc_device::<u32>(1)?,
        })
    }

    /// Device bytes held by this frontier: the sum of every constituent
    /// buffer — first layer (words + count scratch), second layer, offsets
    /// buffer and its count.
    pub fn device_bytes(&self) -> u64 {
        self.storage.device_bytes()
            + self.layer2.bytes()
            + self.offsets.bytes()
            + self.offsets_count.bytes()
    }

    /// The second-layer word array.
    pub fn layer2(&self) -> &DeviceBuffer<W> {
        &self.layer2
    }

    /// Counted compaction extended with degree binning (§4.2 hybrid load
    /// balancing): runs [`BitmapLike::compact`], then bins the compacted
    /// vertices into `pool`'s three degree buckets. Returns the non-zero
    /// word count alongside the bucket counts; skips the binning launch
    /// entirely when the frontier is empty.
    pub fn compact_binned(
        &self,
        q: &Queue,
        pool: &BucketPool,
        degree_of: DegreeOf<'_>,
        spec: &BucketSpec,
    ) -> (usize, BucketCounts) {
        let (nz, offsets) = self.compact(q).expect("two-layer frontier always compacts");
        let counts =
            bucket::bin_compacted(q, &self.storage.words, offsets, nz, pool, degree_of, spec);
        (nz, counts)
    }

    /// The counted-compaction scratch `(offsets, count)` from the last
    /// [`BitmapLike::compact`]. The lane-frontier overlay reuses it to
    /// lazily clear exactly the lane words shadowing non-zero union words.
    pub(crate) fn compaction_buffers(&self) -> (&DeviceBuffer<u32>, &DeviceBuffer<u32>) {
        (&self.offsets, &self.offsets_count)
    }

    /// Checks the 2LB invariant host-side: second-layer bit `i` is set iff
    /// first-layer word `i` is non-zero. Used by tests and debug builds.
    pub fn check_invariant(&self) -> Result<(), String> {
        let words = self.storage.words.to_vec();
        let l2 = self.layer2.to_vec();
        for (wi, w) in words.iter().enumerate() {
            let (l2i, l2b) = locate::<W>(wi as u32);
            let marked = l2[l2i].test_bit(l2b);
            if !w.is_zero() && !marked {
                return Err(format!("word {wi} non-zero but layer2 bit clear"));
            }
            if w.is_zero() && marked {
                return Err(format!("word {wi} zero but layer2 bit set"));
            }
        }
        Ok(())
    }
}

impl<W: Word> Frontier for TwoLayerFrontier<W> {
    fn capacity(&self) -> usize {
        self.storage.len()
    }

    fn insert_host(&self, v: VertexId) {
        let old = self.storage.insert_host(v);
        if old.is_zero() {
            let (wi, _) = locate::<W>(v);
            let (l2i, l2b) = locate::<W>(wi as u32);
            self.layer2.fetch_or(l2i, W::one_bit(l2b));
        }
    }

    fn contains_host(&self, v: VertexId) -> bool {
        self.storage.contains_host(v)
    }

    /// Single fused kernel clearing both layers (the 2LB layout keeps
    /// frontier maintenance to one launch per superstep).
    fn clear(&self, q: &Queue) {
        let words = &self.storage.words;
        let layer2 = &self.layer2;
        let l2_len = layer2.len();
        q.parallel_for("frontier_clear", words.len(), |lane, i| {
            lane.store(words, i, W::ZERO);
            if i < l2_len {
                lane.store(layer2, i, W::ZERO);
            }
        });
    }

    fn count(&self, q: &Queue) -> usize {
        self.storage.count_kernel(q, "frontier_count")
    }

    /// Emptiness via the second layer only — `⌈n/b²⌉` words instead of
    /// `⌈n/b⌉`, one of the 2LB layout's cheap wins.
    fn is_empty(&self, q: &Queue) -> bool {
        let layer2 = &self.layer2;
        let flag = &self.offsets_count;
        flag.store(0, 0);
        q.parallel_for("frontier_empty_check", layer2.len(), |lane, i| {
            if !lane.load(layer2, i).is_zero() {
                // fetch_or: many lanes may raise the flag concurrently.
                lane.fetch_or(flag, 0, 1);
            }
        });
        flag.load(0) == 0
    }

    fn to_sorted_vec(&self) -> Vec<VertexId> {
        self.storage.to_sorted_vec()
    }

    fn fill_all(&self, q: &Queue) {
        self.storage.fill_all_kernel(q);
        // Rebuild the second layer to match: exactly the words that hold
        // at least one valid vertex are non-zero.
        let num_words = (self.storage.len() as u32).div_ceil(W::BITS);
        let layer2 = &self.layer2;
        q.parallel_for("layer2_fill_all", self.layer2.len(), |lane, i| {
            let first = i as u32 * W::BITS;
            let w = if first + W::BITS <= num_words {
                W::ZERO.not()
            } else if first >= num_words {
                W::ZERO
            } else {
                let mut m = W::ZERO;
                for b in 0..(num_words - first) {
                    m = m.or(W::one_bit(b));
                }
                m
            };
            lane.store(layer2, i, w);
        });
    }
}

impl<W: Word> BitmapLike<W> for TwoLayerFrontier<W> {
    fn num_words(&self) -> usize {
        self.storage.num_words()
    }

    fn words(&self) -> &DeviceBuffer<W> {
        &self.storage.words
    }

    fn insert_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        self.insert_lane_checked(lane, v);
    }

    fn insert_lane_checked(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool {
        let (wi, b) = locate::<W>(v);
        let old = lane.fetch_or(&self.storage.words, wi, W::one_bit(b));
        if old.is_zero() {
            // First bit of this word: mark it in the second layer.
            let (l2i, l2b) = locate::<W>(wi as u32);
            lane.fetch_or(&self.layer2, l2i, W::one_bit(l2b));
        }
        !old.test_bit(b)
    }

    fn remove_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        let (wi, b) = locate::<W>(v);
        let old = lane.fetch_and(&self.storage.words, wi, W::one_bit(b).not());
        let new = old.and(W::one_bit(b).not());
        if new.is_zero() && !old.is_zero() {
            // Word became empty: reset the second-layer bit (§4.3).
            let (l2i, l2b) = locate::<W>(wi as u32);
            lane.fetch_and(&self.layer2, l2i, W::one_bit(l2b).not());
        }
    }

    /// The pre-advance compaction kernel: one thread per second-layer
    /// word; each thread appends the offsets of its set bits (= non-zero
    /// first-layer words) to the offsets buffer with a single atomic
    /// reservation.
    fn compact(&self, q: &Queue) -> Option<(usize, &DeviceBuffer<u32>)> {
        self.offsets_count.store(0, 0);
        let layer2 = &self.layer2;
        let offsets = &self.offsets;
        let counter = &self.offsets_count;
        let num_words = self.storage.num_words() as u32;
        q.parallel_for("frontier_compact", layer2.len(), |lane, i| {
            let l2 = lane.load(layer2, i);
            if l2.is_zero() {
                return;
            }
            let cnt = l2.count_ones();
            let base = lane.fetch_add(counter, 0, cnt);
            let mut w = l2;
            let mut k = 0;
            while !w.is_zero() {
                let b = w.trailing_zeros();
                let word_idx = i as u32 * W::BITS + b;
                if word_idx < num_words {
                    lane.store(offsets, (base + k) as usize, word_idx);
                    k += 1;
                }
                w = w.and(W::one_bit(b).not());
                lane.compute(2);
            }
        });
        Some((self.offsets_count.load(0) as usize, &self.offsets))
    }

    /// Lazy clear (superstep engine, §4.3 discussion): instead of sweeping
    /// all `⌈n/b⌉` first-layer words, zero only the words the last
    /// [`BitmapLike::compact`] found non-zero, plus the (much smaller)
    /// second layer. One kernel over `max(nz, ⌈n/b²⌉)` items versus one
    /// over `⌈n/b⌉` — on sparse frontiers this clears a handful of words
    /// instead of the whole bitmap.
    fn lazy_clear(&self, q: &Queue) {
        let nz = self.offsets_count.load(0) as usize;
        let l2_len = self.layer2.len();
        let words = &self.storage.words;
        let layer2 = &self.layer2;
        let offsets = &self.offsets;
        q.parallel_for("frontier_lazy_clear", nz.max(l2_len), |lane, i| {
            if i < nz {
                let wi = lane.load(offsets, i) as usize;
                lane.store(words, wi, W::ZERO);
            }
            if i < l2_len {
                lane.store(layer2, i, W::ZERO);
            }
        });
    }

    /// Recomputes the second layer from the (rewritten) first layer.
    fn rebuild_from_words(&self, q: &Queue) {
        crate::frontier::ops::rebuild_layer2(q, self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn device_bytes_equals_sum_of_constituent_buffers() {
        let q = queue();
        let before: i64 = q
            .profiler()
            .mem_events()
            .iter()
            .map(|e| e.delta_bytes)
            .sum();
        let f = TwoLayerFrontier::<u32>::new(&q, 10_000).unwrap();
        let after: i64 = q
            .profiler()
            .mem_events()
            .iter()
            .map(|e| e.delta_bytes)
            .sum();
        assert_eq!(
            f.device_bytes(),
            (after - before) as u64,
            "device_bytes must account for every constituent allocation \
             (words + count scratch + layer2 + offsets + offsets count)"
        );
        // And against the layout formula directly: the offsets count is a
        // real u32 buffer, not a hard-coded constant.
        let nw = 10_000usize.div_ceil(32);
        let expected = (nw * 4) + 4 + (nw.div_ceil(32) * 4) + (nw * 4) + 4;
        assert_eq!(f.device_bytes(), expected as u64);
    }

    #[test]
    fn insert_maintains_layer2() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 10_000).unwrap();
        for v in [0, 1, 64, 999, 5000] {
            f.insert_host(v);
        }
        f.check_invariant().unwrap();
        assert_eq!(f.count(&q), 5);
        assert_eq!(f.to_sorted_vec(), vec![0, 1, 64, 999, 5000]);
    }

    #[test]
    fn compact_yields_nonzero_word_offsets() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 10_000).unwrap();
        // vertices in words 0, 2, and 100
        f.insert_host(5);
        f.insert_host(6);
        f.insert_host(70);
        f.insert_host(3205);
        let (n, offsets) = f.compact(&q).unwrap();
        assert_eq!(n, 3);
        let mut offs = offsets.to_vec()[..n].to_vec();
        offs.sort_unstable();
        assert_eq!(offs, vec![0, 2, 100]);
    }

    #[test]
    fn compact_empty_frontier() {
        let q = queue();
        let f = TwoLayerFrontier::<u64>::new(&q, 1000).unwrap();
        let (n, _) = f.compact(&q).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn device_insert_sets_layer2_once() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 4096).unwrap();
        q.parallel_for("ins", 4096, |ctx, v| {
            if v % 3 == 0 {
                f.insert_lane(ctx, v as u32);
            }
        });
        f.check_invariant().unwrap();
        assert_eq!(f.count(&q), 4096 / 3 + 1);
    }

    #[test]
    fn device_remove_clears_layer2_when_word_empties() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 128).unwrap();
        f.insert_host(40); // word 1, alone
        f.insert_host(0);
        f.insert_host(1); // word 0, two bits
        q.parallel_for("rm", 1, |ctx, _| {
            f.remove_lane(ctx, 40);
            f.remove_lane(ctx, 0);
        });
        f.check_invariant().unwrap();
        assert_eq!(f.to_sorted_vec(), vec![1]);
    }

    #[test]
    fn lazy_clear_after_compact_empties_frontier() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 10_000).unwrap();
        f.insert_host(5);
        f.insert_host(70);
        f.insert_host(3205);
        f.compact(&q).unwrap();
        f.lazy_clear(&q);
        f.check_invariant().unwrap();
        assert!(f.is_empty(&q));
        let (nz, _) = f.compact(&q).unwrap();
        assert_eq!(nz, 0);
        // the frontier stays fully usable afterwards
        f.insert_host(42);
        assert_eq!(f.to_sorted_vec(), vec![42]);
    }

    #[test]
    fn insert_lane_checked_reports_first_insert_only() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 128).unwrap();
        let firsts = q.malloc_device::<u32>(1).unwrap();
        q.parallel_for("ins", 8, |ctx, _| {
            if f.insert_lane_checked(ctx, 7) {
                ctx.fetch_add(&firsts, 0, 1);
            }
        });
        assert_eq!(firsts.load(0), 1, "exactly one lane saw the fresh bit");
        assert_eq!(f.to_sorted_vec(), vec![7]);
    }

    #[test]
    fn clear_resets_both_layers() {
        let q = queue();
        let f = TwoLayerFrontier::<u64>::new(&q, 5000).unwrap();
        for v in 0..1000 {
            f.insert_host(v);
        }
        f.clear(&q);
        f.check_invariant().unwrap();
        assert!(f.is_empty(&q));
        let (n, _) = f.compact(&q).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn fill_all_activates_everything() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 1000).unwrap();
        f.fill_all(&q);
        f.check_invariant().unwrap();
        assert_eq!(f.count(&q), 1000);
        let (nz, _) = f.compact(&q).unwrap();
        assert_eq!(nz, 1000_usize.div_ceil(32));
        assert!(f.contains_host(999));
    }

    #[test]
    fn fill_all_exact_word_boundary() {
        let q = queue();
        let f = TwoLayerFrontier::<u64>::new(&q, 128).unwrap();
        f.fill_all(&q);
        f.check_invariant().unwrap();
        assert_eq!(f.count(&q), 128);
    }

    #[test]
    fn compact_binned_partitions_by_degree() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 256).unwrap();
        for v in [2, 10, 40, 200] {
            f.insert_host(v);
        }
        let spec = BucketSpec {
            small_max: 4,
            large_min: 32,
            chunk: 32,
        };
        let pool = BucketPool::new(&q, 256, 4096, &spec).unwrap();
        // degree = vertex id: 2 small, 10 medium, 40 → 2 chunks,
        // 200 → 7 chunks
        let (nz, counts) = f.compact_binned(
            &q,
            &pool,
            &|lane, v| {
                lane.compute(1);
                v
            },
            &spec,
        );
        // vertices 2 and 10 share word 0; 40 is in word 1, 200 in word 6
        assert_eq!(nz, 3);
        assert_eq!(counts.small, 1);
        assert_eq!(counts.medium, 1);
        assert_eq!(counts.large, 2 + 7);
    }

    #[test]
    fn u64_locate_consistency() {
        let q = queue();
        let f = TwoLayerFrontier::<u64>::new(&q, 100_000).unwrap();
        f.insert_host(99_999);
        f.check_invariant().unwrap();
        assert!(f.contains_host(99_999));
        let (n, offsets) = f.compact(&q).unwrap();
        assert_eq!(n, 1);
        assert_eq!(offsets.load(0), 99_999 / 64);
    }
}
