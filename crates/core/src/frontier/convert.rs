//! Device-side conversion kernels between the dense (bitmap) and sparse
//! (item-list) frontier representations.
//!
//! Both directions mirror the §4.3 compaction idiom: one thread per
//! source element, atomic-reservation appends, no host round-trips beyond
//! the counter reads the callers already do. The sparse→dense direction
//! is an atomic-OR scatter; the dense→sparse direction walks set bits the
//! way `frontier_compact` walks second-layer words.

use sygraph_sim::{DeviceBuffer, Queue};

use crate::frontier::word::{locate, Word};

/// Dense → sparse ("frontier_sparsify"): appends the vertex id of every
/// set bit in `words` to `items`, reserving slots through the atomic
/// `len` counter (reset here first). Appends past `items`' capacity are
/// dropped and `overflow` is set to 1 instead — the caller must treat the
/// list as absent when the flag comes back set. Tail bits beyond the
/// vertex range never appear because the bitmap invariant keeps them
/// clear.
pub fn sparsify<W: Word>(
    q: &Queue,
    words: &DeviceBuffer<W>,
    items: &DeviceBuffer<u32>,
    len: &DeviceBuffer<u32>,
    overflow: &DeviceBuffer<u32>,
) {
    len.store(0, 0);
    let cap = items.len();
    q.parallel_for("frontier_sparsify", words.len(), |lane, wi| {
        let w = lane.load(words, wi);
        if w.is_zero() {
            return;
        }
        let base = lane.fetch_add(len, 0, w.count_ones());
        let mut w = w;
        let mut k = 0;
        while !w.is_zero() {
            let b = w.trailing_zeros();
            let idx = (base + k) as usize;
            if idx < cap {
                lane.store(items, idx, wi as u32 * W::BITS + b);
            } else {
                // fetch_or: every overflowing lane raises the same flag.
                lane.fetch_or(overflow, 0, 1);
            }
            k += 1;
            w = w.and(W::one_bit(b).not());
            lane.compute(2);
        }
    });
}

/// Sparse → dense ("frontier_densify"): scatters `items[..len]` into the
/// bitmap with atomic ORs, maintaining the second layer when one is
/// given. Duplicate items are tolerated (the OR is idempotent; the
/// second-layer mark only fires for the winning lane).
pub fn densify<W: Word>(
    q: &Queue,
    items: &DeviceBuffer<u32>,
    len: usize,
    words: &DeviceBuffer<W>,
    layer2: Option<&DeviceBuffer<W>>,
) {
    if len == 0 {
        return;
    }
    q.parallel_for("frontier_densify", len, |lane, i| {
        let v = lane.load(items, i);
        let (wi, b) = locate::<W>(v);
        let old = lane.fetch_or(words, wi, W::one_bit(b));
        if let Some(l2) = layer2 {
            if old.is_zero() {
                let (l2i, l2b) = locate::<W>(wi as u32);
                lane.fetch_or(l2, l2i, W::one_bit(l2b));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn sparsify_collects_all_set_bits() {
        let q = queue();
        let words = q.malloc_device::<u32>(4).unwrap();
        words.store(0, 0b1010);
        words.store(3, 1 << 31);
        let items = q.malloc_device::<u32>(16).unwrap();
        let len = q.malloc_device::<u32>(1).unwrap();
        let overflow = q.malloc_device::<u32>(1).unwrap();
        overflow.store(0, 0);
        sparsify::<u32>(&q, &words, &items, &len, &overflow);
        assert_eq!(overflow.load(0), 0);
        let n = len.load(0) as usize;
        let mut got = items.to_vec()[..n].to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3, 127]);
    }

    #[test]
    fn sparsify_flags_overflow_without_corruption() {
        let q = queue();
        let words = q.malloc_device::<u32>(1).unwrap();
        words.store(0, 0xFF); // 8 set bits
        let items = q.malloc_device::<u32>(4).unwrap();
        let len = q.malloc_device::<u32>(1).unwrap();
        let overflow = q.malloc_device::<u32>(1).unwrap();
        overflow.store(0, 0);
        sparsify::<u32>(&q, &words, &items, &len, &overflow);
        assert_eq!(overflow.load(0), 1);
    }

    #[test]
    fn densify_round_trips_sparsify() {
        let q = queue();
        let words = q.malloc_device::<u64>(8).unwrap();
        for (i, bits) in [(0usize, 0x8001u64), (5, 0xF0F0)] {
            words.store(i, bits);
        }
        let items = q.malloc_device::<u32>(64).unwrap();
        let len = q.malloc_device::<u32>(1).unwrap();
        let overflow = q.malloc_device::<u32>(1).unwrap();
        overflow.store(0, 0);
        sparsify::<u64>(&q, &words, &items, &len, &overflow);
        let back = q.malloc_device::<u64>(8).unwrap();
        q.fill(&back, 0u64);
        densify::<u64>(&q, &items, len.load(0) as usize, &back, None);
        assert_eq!(words.to_vec(), back.to_vec());
    }
}
