//! Bitmap word abstraction.
//!
//! The paper's MSI optimization matches the bitmap integer width to the
//! device's subgroup width (32-bit on NVIDIA/Intel warps, 64-bit on AMD
//! wavefronts). Frontiers are therefore generic over a [`Word`] type; the
//! device inspector picks the instantiation at runtime.

use sygraph_sim::AtomicInt;

/// An unsigned integer usable as a bitmap word.
pub trait Word: AtomicInt + PartialEq + std::fmt::Debug {
    /// Bits per word (32 or 64).
    const BITS: u32;
    /// The zero word.
    const ZERO: Self;
    /// A word with only bit `i` set.
    fn one_bit(i: u32) -> Self;
    /// Population count.
    fn count_ones(self) -> u32;
    /// Whether no bits are set.
    fn is_zero(self) -> bool;
    /// Whether bit `i` is set.
    fn test_bit(self, i: u32) -> bool;
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Bitwise OR.
    fn or(self, other: Self) -> Self;
    /// Bitwise XOR.
    fn xor(self, other: Self) -> Self;
    /// Bitwise NOT.
    fn not(self) -> Self;
    /// Lowest 64 bits (for mask interop; a u32 word zero-extends).
    fn to_u64(self) -> u64;
    /// Index of the lowest set bit, or `BITS` if zero.
    fn trailing_zeros(self) -> u32;
}

macro_rules! impl_word {
    ($t:ty, $bits:expr) => {
        impl Word for $t {
            const BITS: u32 = $bits;
            const ZERO: Self = 0;
            #[inline]
            fn one_bit(i: u32) -> Self {
                debug_assert!(i < Self::BITS);
                1 << i
            }
            #[inline]
            fn count_ones(self) -> u32 {
                <$t>::count_ones(self)
            }
            #[inline]
            fn is_zero(self) -> bool {
                self == 0
            }
            #[inline]
            fn test_bit(self, i: u32) -> bool {
                self & (1 << i) != 0
            }
            #[inline]
            fn and(self, other: Self) -> Self {
                self & other
            }
            #[inline]
            fn or(self, other: Self) -> Self {
                self | other
            }
            #[inline]
            fn xor(self, other: Self) -> Self {
                self ^ other
            }
            #[inline]
            fn not(self) -> Self {
                !self
            }
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn trailing_zeros(self) -> u32 {
                <$t>::trailing_zeros(self)
            }
        }
    };
}

impl_word!(u32, 32);
impl_word!(u64, 64);

/// Number of words needed to cover `n` bits.
#[inline]
pub fn words_for<W: Word>(n: usize) -> usize {
    n.div_ceil(W::BITS as usize).max(1)
}

/// `(word index, bit index)` of vertex `v` — the paper's
/// `id(v)/b` and `id(v) mod b`.
#[inline]
pub fn locate<W: Word>(v: u32) -> (usize, u32) {
    ((v / W::BITS) as usize, v % W::BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_math_u32() {
        assert_eq!(u32::one_bit(5), 32);
        assert!(u32::one_bit(5).test_bit(5));
        assert!(!u32::one_bit(5).test_bit(4));
        assert_eq!(locate::<u32>(70), (2, 6));
        assert_eq!(words_for::<u32>(65), 3);
        assert_eq!(words_for::<u32>(0), 1);
    }

    #[test]
    fn bit_math_u64() {
        assert_eq!(locate::<u64>(70), (1, 6));
        assert_eq!(words_for::<u64>(64), 1);
        assert_eq!(words_for::<u64>(65), 2);
        assert_eq!(u64::one_bit(63), 1 << 63);
    }

    #[test]
    fn set_operations() {
        let a: u32 = 0b1100;
        let b: u32 = 0b1010;
        assert_eq!(a.and(b), 0b1000);
        assert_eq!(a.or(b), 0b1110);
        assert_eq!(a.xor(b), 0b0110);
        assert_eq!(a.and(b.not()), 0b0100);
        assert!(0u64.is_zero());
        assert_eq!(0b1000u32.trailing_zeros(), 3);
    }
}
