//! Superstep-boundary frontier exchange between partitions.
//!
//! After each partition's advance, the *halo tail* of its output frontier
//! holds the remote destinations this superstep activated. The exchange
//! harvests those bits with a **word-diff**: only non-zero halo words are
//! touched (the two-layer bitmap keeps unreached regions zero), each set
//! bit is decoded through the partition's [`HaloEntry`] table into
//! `(owner, owner_local, value)` mail, and the harvested words are zeroed
//! so halo bits never leak into the next local superstep (they would
//! re-fire halo rows forever and the global union count would never reach
//! zero).
//!
//! The value payload rides with the bit: the sender's *replica* of the
//! destination's algorithm state (BFS level, SSSP distance, CC label —
//! all merge at the owner with a `min`). Shipping the replica value keeps
//! the exchange one round per superstep; a bits-only protocol would need
//! a second round-trip to pull values back.
//!
//! Cost model: each channel pays `words·W/8 + msgs·(4 + value_bytes)`
//! bytes over a modelled interconnect; the multi-device engine advances
//! every queue's clock by the collective's transfer time at the superstep
//! barrier and records an `ExchangeEvent` per non-empty channel.

use crate::frontier::word::Word;
use crate::frontier::BitmapLike;
use crate::graph::partition::DevicePartition;

/// Exchange tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeConfig {
    /// Modelled inter-device interconnect bandwidth, GB/s. The default is
    /// deliberately far below the profiles' HBM bandwidth (NVLink-class,
    /// not DRAM-class) so exchange cost is visible in the weak-scaling
    /// ablation.
    pub interconnect_gbps: f64,
    /// Bytes of algorithm state shipped per activation (4 for the u32/f32
    /// states of BFS/SSSP/CC).
    pub value_bytes: u32,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            interconnect_gbps: 64.0,
            value_bytes: 4,
        }
    }
}

/// One delivered halo activation: the owner-local vertex and the sender's
/// replica value (u32/f32-bits widened to u64 for transport).
#[derive(Debug, Clone, Copy)]
pub struct HaloMsg {
    pub owner_local: u32,
    pub value: u64,
}

/// Per-superstep exchange tally (all channels summed).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeTally {
    /// Non-zero halo words harvested.
    pub words: u64,
    /// Halo activations delivered.
    pub msgs: u64,
    /// Modelled interconnect bytes.
    pub bytes: u64,
}

/// Per-channel result of harvesting one partition's halo tail.
pub struct ChannelMail {
    pub dst_part: u32,
    pub words: u64,
    pub msgs: u64,
    pub bytes: u64,
}

/// The exchange: per-destination mailboxes plus running totals.
///
/// Protocol per global superstep (driven by the multi-device engine):
/// 1. [`harvest`](FrontierExchange::harvest) each partition's output
///    frontier — decode + zero the halo words, fill mailboxes;
/// 2. barrier (clock sync + collective transfer cost);
/// 3. [`drain`](FrontierExchange::drain) each partition's mailbox and
///    min-merge the values into its state, activating improved vertices
///    in its *input* frontier.
pub struct FrontierExchange {
    cfg: ExchangeConfig,
    mail: Vec<Vec<HaloMsg>>,
    total: ExchangeTally,
}

impl FrontierExchange {
    pub fn new(parts: usize, cfg: ExchangeConfig) -> Self {
        FrontierExchange {
            cfg,
            mail: (0..parts).map(|_| Vec::new()).collect(),
            total: ExchangeTally::default(),
        }
    }

    pub fn config(&self) -> &ExchangeConfig {
        &self.cfg
    }

    /// Running totals across every superstep so far.
    pub fn total(&self) -> ExchangeTally {
        self.total
    }

    /// Modelled transfer time for `bytes` on the interconnect, in ns.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.cfg.interconnect_gbps
    }

    /// Harvests `part`'s halo activations out of its output frontier
    /// `fout`: scans only non-zero words of the halo tail, decodes each
    /// set bit through the halo table (reading the sender's replica value
    /// via `replica`), posts mail to the owners, and zeroes the harvested
    /// words. Returns the per-channel tallies of this harvest (empty
    /// channels omitted).
    ///
    /// The layer-2 summary still carries the zeroed words afterwards.
    /// That staleness is safe-by-direction: a stale bit can only make a
    /// later compaction visit a zero word, never hide a set one. Callers
    /// that need the summary exact (e.g. for `count`) follow up with
    /// `fout.rebuild_from_words(q)`; the multi-device engine deliberately
    /// does not, trading one near-empty drain superstep at convergence
    /// for skipping a full-bitmap sweep every boundary.
    pub fn harvest<W: Word>(
        &mut self,
        part: &DevicePartition,
        fout: &dyn BitmapLike<W>,
        replica: &dyn Fn(u32) -> u64,
    ) -> Vec<ChannelMail> {
        let k = part.owned as usize;
        let h = part.halo.len();
        if h == 0 {
            return Vec::new();
        }
        let words = fout.words();
        let lo_word = k / W::BITS as usize;
        let hi_word = (k + h).div_ceil(W::BITS as usize).min(fout.num_words());
        let mut per_dst: Vec<ChannelMail> = Vec::new();
        for wi in lo_word..hi_word {
            let w: W = words.load(wi);
            if w.is_zero() {
                continue;
            }
            // Mask out owned bits sharing the boundary word (and any slack
            // past the halo tail in the last word).
            let base = wi * W::BITS as usize;
            let mut masked = w;
            let mut keep = W::ZERO;
            let mut bits = masked;
            while !bits.is_zero() {
                let b = bits.trailing_zeros();
                bits = bits.and(W::one_bit(b).not());
                let lid = base + b as usize;
                if lid >= k && lid < k + h {
                    keep = keep.or(W::one_bit(b));
                }
            }
            masked = masked.and(keep);
            if masked.is_zero() {
                continue;
            }
            // Zero exactly the halo bits (owned bits in a boundary word
            // survive untouched).
            words.store(wi, w.and(masked.not()));
            let mut wtallied = vec![false; self.mail.len()];
            let mut bits = masked;
            while !bits.is_zero() {
                let b = bits.trailing_zeros();
                bits = bits.and(W::one_bit(b).not());
                let lid = base + b as usize;
                let entry = part.halo[lid - k];
                let value = replica((lid) as u32);
                let dst = entry.owner as usize;
                self.mail[dst].push(HaloMsg {
                    owner_local: entry.owner_local,
                    value,
                });
                let ch = match per_dst.iter_mut().find(|c| c.dst_part == entry.owner) {
                    Some(ch) => ch,
                    None => {
                        per_dst.push(ChannelMail {
                            dst_part: entry.owner,
                            words: 0,
                            msgs: 0,
                            bytes: 0,
                        });
                        per_dst.last_mut().unwrap()
                    }
                };
                ch.msgs += 1;
                ch.bytes += 4 + self.cfg.value_bytes as u64;
                if !wtallied[dst] {
                    wtallied[dst] = true;
                    ch.words += 1;
                    ch.bytes += (W::BITS / 8) as u64;
                }
            }
        }
        for ch in &per_dst {
            self.total.words += ch.words;
            self.total.msgs += ch.msgs;
            self.total.bytes += ch.bytes;
        }
        per_dst
    }

    /// Drains the mailbox of partition `p` (mail posted by every
    /// harvester this superstep).
    pub fn drain(&mut self, p: usize) -> Vec<HaloMsg> {
        std::mem::take(&mut self.mail[p])
    }

    /// Whether any mailbox still holds undelivered mail.
    pub fn pending(&self) -> bool {
        self.mail.iter().any(|m| !m.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{Frontier, TwoLayerFrontier};
    use crate::graph::partition::{PartitionSpec, PartitionedGraph};
    use crate::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile, Queue};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn harvest_moves_halo_bits_and_clears_them() {
        let q = queue();
        // 0 -> 2, 1 -> 3 with a 2-way range split: p0 owns {0,1}, halo {2,3}.
        let host = CsrHost::from_edges(4, &[(0, 2), (1, 3)]);
        let pg = PartitionedGraph::build(&host, PartitionSpec::Range, 2);
        let p0 = &pg.parts[0];
        assert_eq!(p0.halo.len(), 2);
        let f = TwoLayerFrontier::<u32>::new(&q, p0.local_len()).unwrap();
        // Activate one owned (stays) and both halo lids (harvested).
        f.insert_host(0);
        f.insert_host(p0.owned); // halo lid for global 2
        f.insert_host(p0.owned + 1); // halo lid for global 3
        let mut ex = FrontierExchange::new(2, ExchangeConfig::default());
        let channels = ex.harvest::<u32>(p0, &f, &|lid| lid as u64);
        assert_eq!(channels.len(), 1, "both halos owned by p1: one channel");
        assert_eq!(channels[0].dst_part, 1);
        assert_eq!(channels[0].msgs, 2);
        assert_eq!(channels[0].words, 1);
        // word (4 B) + 2 msgs × (4 B index + 4 B value)
        assert_eq!(channels[0].bytes, 4 + 2 * 8);
        f.rebuild_from_words(&q);
        assert!(f.contains_host(0), "owned bit survives the boundary word");
        assert!(!f.contains_host(p0.owned));
        assert_eq!(f.to_sorted_vec(), vec![0]);
        let mail = ex.drain(1);
        assert_eq!(mail.len(), 2);
        let mut owner_locals: Vec<u32> = mail.iter().map(|m| m.owner_local).collect();
        owner_locals.sort_unstable();
        assert_eq!(
            owner_locals,
            vec![pg.owner_local_of(2), pg.owner_local_of(3)]
        );
        assert!(ex.drain(0).is_empty());
        assert!(!ex.pending());
    }

    #[test]
    fn empty_halo_harvests_nothing() {
        let q = queue();
        let host = CsrHost::from_edges(4, &[(0, 1), (2, 3)]);
        let pg = PartitionedGraph::build(&host, PartitionSpec::Range, 2);
        let p0 = &pg.parts[0];
        assert!(p0.halo.is_empty());
        let f = TwoLayerFrontier::<u32>::new(&q, p0.local_len().max(1)).unwrap();
        f.insert_host(0);
        let mut ex = FrontierExchange::new(2, ExchangeConfig::default());
        assert!(ex.harvest::<u32>(p0, &f, &|_| 0).is_empty());
        assert_eq!(ex.total().bytes, 0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let ex = FrontierExchange::new(
            2,
            ExchangeConfig {
                interconnect_gbps: 64.0,
                value_bytes: 4,
            },
        );
        // 64 GB/s = 64 bytes/ns.
        assert!((ex.transfer_ns(6400) - 100.0).abs() < 1e-9);
    }
}
