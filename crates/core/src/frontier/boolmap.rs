//! Boolmap frontier: one byte per vertex, as in the Grus framework.
//!
//! The paper cites this layout as the 8×-memory alternative to bitmaps
//! (§4.1). It is provided for the memory-footprint comparisons and as a
//! baseline data point; it avoids atomics entirely (a plain byte store is
//! idempotent) at the cost of memory.

use sygraph_sim::{DeviceBuffer, ItemCtx, LaunchConfig, Queue, MAX_SUBGROUP};

use crate::frontier::Frontier;
use crate::types::VertexId;

/// One-byte-per-vertex frontier.
pub struct BoolmapFrontier {
    n: usize,
    flags: DeviceBuffer<u8>,
    count_buf: DeviceBuffer<u32>,
}

impl BoolmapFrontier {
    pub fn new(q: &Queue, n: usize) -> sygraph_sim::SimResult<Self> {
        Ok(BoolmapFrontier {
            n,
            flags: q.malloc_device::<u8>(n.max(1))?,
            count_buf: q.malloc_device::<u32>(1)?,
        })
    }

    pub fn device_bytes(&self) -> u64 {
        self.flags.bytes() + 4
    }

    /// Device-side insert: a plain byte store (no atomicity needed).
    pub fn insert_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        lane.store(&self.flags, v as usize, 1);
    }

    /// Device-side membership test.
    pub fn test_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool {
        lane.load(&self.flags, v as usize) != 0
    }

    pub fn flags(&self) -> &DeviceBuffer<u8> {
        &self.flags
    }
}

impl Frontier for BoolmapFrontier {
    fn capacity(&self) -> usize {
        self.n
    }

    fn insert_host(&self, v: VertexId) {
        self.flags.store(v as usize, 1);
    }

    fn contains_host(&self, v: VertexId) -> bool {
        self.flags.load(v as usize) != 0
    }

    fn clear(&self, q: &Queue) {
        q.fill(&self.flags, 0);
    }

    fn count(&self, q: &Queue) -> usize {
        self.count_buf.store(0, 0);
        let n = self.n;
        let sgw = q.profile().preferred_subgroup;
        let wg_size = (sgw * 4).min(q.profile().max_workgroup_size);
        let per_group = wg_size as usize;
        let groups = n.div_ceil(per_group).max(1);
        let cfg = LaunchConfig::new("boolmap_count", groups, wg_size, sgw);
        let flags = &self.flags;
        let count_buf = &self.count_buf;
        q.launch(cfg, |ctx| {
            let base = ctx.group_id * per_group;
            ctx.for_each_subgroup(|sg| {
                let w = sg.width();
                let start = base + (sg.sg_id() * w) as usize;
                let mut mask = 0u64;
                for lane in 0..w {
                    if start + (lane as usize) < n {
                        mask |= 1 << lane;
                    }
                }
                if mask == 0 {
                    return;
                }
                let mut vals = [0u8; MAX_SUBGROUP];
                sg.load(
                    flags,
                    mask,
                    |lane| start + lane as usize,
                    |lane, f| vals[lane as usize] = f,
                );
                let total = sg.reduce_add_u64(mask, |lane| vals[lane as usize] as u64);
                if total > 0 {
                    sg.atomic_add(count_buf, 0b1, |_| (0, total as u32), |_, _| {});
                }
            });
        });
        self.count_buf.load(0) as usize
    }

    fn to_sorted_vec(&self) -> Vec<VertexId> {
        self.flags
            .to_vec()
            .into_iter()
            .enumerate()
            .filter(|&(_, f)| f != 0)
            .map(|(v, _)| v as u32)
            .take(self.n)
            .collect()
    }

    fn fill_all(&self, q: &Queue) {
        q.fill(&self.flags, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn basic_set_semantics() {
        let q = queue();
        let f = BoolmapFrontier::new(&q, 500).unwrap();
        f.insert_host(3);
        f.insert_host(3);
        f.insert_host(499);
        assert_eq!(f.count(&q), 2);
        assert_eq!(f.to_sorted_vec(), vec![3, 499]);
        f.clear(&q);
        assert!(f.is_empty(&q));
    }

    #[test]
    fn eight_times_bitmap_memory() {
        use crate::frontier::BitmapFrontier;
        let q = queue();
        let n = 64_000;
        let bm = BitmapFrontier::<u64>::new(&q, n).unwrap();
        let bool_f = BoolmapFrontier::new(&q, n).unwrap();
        let ratio = bool_f.device_bytes() as f64 / bm.device_bytes() as f64;
        assert!((7.0..=8.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn device_lane_ops() {
        let q = queue();
        let f = BoolmapFrontier::new(&q, 256).unwrap();
        q.parallel_for("ins", 256, |ctx, v| {
            if v < 10 {
                f.insert_lane(ctx, v as u32);
            }
        });
        assert_eq!(f.count(&q), 10);
        let hits = q.malloc_device::<u32>(1).unwrap();
        q.parallel_for("test", 256, |ctx, v| {
            if f.test_lane(ctx, v as u32) {
                ctx.fetch_add(&hits, 0, 1);
            }
        });
        assert_eq!(hits.load(0), 10);
    }
}
