//! Hybrid frontier: the two-layer bitmap with a bounded item list riding
//! alongside, switching representation per superstep.
//!
//! The bitmap (and its second layer) is *always* maintained, so going
//! sparse→dense is free; the list is maintained opportunistically on the
//! insert path (one extra atomic append per freshly-set bit), so going
//! dense→sparse is usually free too. The list is bounded — large
//! frontiers overflow it and the frontier simply stays dense, which is
//! also the regime where dense wins. This is the GraphBLAST switching
//! model expressed as one Gunrock-style frontier object: the engine asks
//! for a representation per superstep ([`BitmapLike::adopt_rep`]) based
//! on the population count it already syncs for convergence.

use std::sync::atomic::{AtomicU32, Ordering};

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue};

use crate::frontier::convert;
use crate::frontier::rep::{RepKind, SparseView};
use crate::frontier::two_layer::TwoLayerFrontier;
use crate::frontier::vector::VectorFrontier;
use crate::frontier::word::{locate, Word};
use crate::frontier::{BitmapLike, Frontier};
use crate::types::VertexId;

/// Item-list capacity: an eighth of the vertex count (floor 64). The
/// auto policy exits sparse at n/32 active vertices, so a frontier the
/// policy could ever want sparse fits with 4× slack — and the slack
/// bounds the memory overhead at half a byte per vertex.
pub fn sparse_capacity(n: usize) -> usize {
    (n / 8).max(64)
}

/// Two-layer bitmap + bounded item list, representation chosen per
/// superstep.
pub struct HybridFrontier<W: Word> {
    inner: TwoLayerFrontier<W>,
    list: VectorFrontier,
    /// 1 ⇒ an append ran past the list's capacity; the list is invalid
    /// until rebuilt (sticky across supersteps until a clear/rebuild).
    overflow: DeviceBuffer<u32>,
    /// 1 ⇒ a removal (or wholesale word rewrite) desynced the list.
    stale: DeviceBuffer<u32>,
    /// Representation currently presented (0 = dense, 1 = sparse).
    mode: AtomicU32,
    /// 1 ⇒ inserts keep the list in sync. Adopting `Dense` drops this to
    /// 0 (marking the list stale in the same breath), so dense-phase
    /// supersteps insert at exactly the two-layer bitmap's cost — the
    /// bounded list only taxes the supersteps that can use it.
    maintain: AtomicU32,
}

impl<W: Word> HybridFrontier<W> {
    /// Creates an empty frontier over `n` vertices.
    pub fn new(q: &Queue, n: usize) -> sygraph_sim::SimResult<Self> {
        let inner = TwoLayerFrontier::new(q, n)?;
        let list = VectorFrontier::with_capacity(q, n, sparse_capacity(n))?;
        let overflow = q.malloc_device::<u32>(1)?;
        let stale = q.malloc_device::<u32>(1)?;
        overflow.store(0, 0);
        stale.store(0, 0);
        Ok(HybridFrontier {
            inner,
            list,
            overflow,
            stale,
            mode: AtomicU32::new(0),
            maintain: AtomicU32::new(1),
        })
    }

    /// Device bytes held (bitmap layers + list + flags).
    pub fn device_bytes(&self) -> u64 {
        self.inner.device_bytes()
            + self.list.device_bytes()
            + self.overflow.bytes()
            + self.stale.bytes()
    }

    /// The dense half, for consumers that want the two-layer API
    /// (invariant checks in tests).
    pub fn dense(&self) -> &TwoLayerFrontier<W> {
        &self.inner
    }

    fn list_valid(&self) -> bool {
        self.overflow.load(0) == 0 && self.stale.load(0) == 0
    }

    fn reset_list_flags(&self) {
        self.list.set_len(0);
        self.overflow.store(0, 0);
        self.stale.store(0, 0);
        self.maintain.store(1, Ordering::Relaxed);
    }
}

impl<W: Word> Frontier for HybridFrontier<W> {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn insert_host(&self, v: VertexId) {
        if !self.inner.contains_host(v) {
            self.inner.insert_host(v);
            if !self.list.try_insert_host(v) {
                self.overflow.store(0, 1);
            }
        }
    }

    fn contains_host(&self, v: VertexId) -> bool {
        self.inner.contains_host(v)
    }

    fn clear(&self, q: &Queue) {
        self.inner.clear(q);
        self.reset_list_flags();
    }

    fn count(&self, q: &Queue) -> usize {
        if self.list_valid() {
            self.list.len()
        } else {
            self.inner.count(q)
        }
    }

    fn is_empty(&self, q: &Queue) -> bool {
        if self.list_valid() {
            self.list.is_empty()
        } else {
            self.inner.is_empty(q)
        }
    }

    fn to_sorted_vec(&self) -> Vec<VertexId> {
        self.inner.to_sorted_vec()
    }

    /// Activates everything. The full vertex set never fits the bounded
    /// list, so this simply overflows it: the frontier starts dense —
    /// exactly right for CC-style all-active starts.
    fn fill_all(&self, q: &Queue) {
        self.inner.fill_all(q);
        self.list.set_len(0);
        self.overflow.store(0, 1);
        self.stale.store(0, 0);
    }
}

impl<W: Word> BitmapLike<W> for HybridFrontier<W> {
    fn num_words(&self) -> usize {
        self.inner.num_words()
    }

    fn words(&self) -> &DeviceBuffer<W> {
        self.inner.words()
    }

    fn insert_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        self.insert_lane_checked(lane, v);
    }

    fn insert_lane_checked(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool {
        let fresh = self.inner.insert_lane_checked(lane, v);
        // List upkeep is per-insert device work the dense phases must not
        // pay: with `maintain` off (engine adopted `Dense`) this is a pure
        // bitmap insert. While maintaining, the overflow short-circuit
        // caps what an exploding superstep pays once the list fills — one
        // (cached) flag load instead of a dead reservation per insert.
        // Atomic load/or on the overflow flag: other lanes may be raising
        // it in this same launch (a plain load/store pair would race).
        if fresh
            && self.maintain.load(Ordering::Relaxed) == 1
            && lane.load_atomic(&self.overflow, 0) == 0
            && !self.list.append_lane_checked(lane, v)
        {
            lane.fetch_or(&self.overflow, 0, 1);
        }
        fresh
    }

    fn remove_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        self.inner.remove_lane(lane, v);
        lane.fetch_or(&self.stale, 0, 1);
    }

    fn compact(&self, q: &Queue) -> Option<(usize, &DeviceBuffer<u32>)> {
        self.inner.compact(q)
    }

    /// Lazy clear, representation-aware: with a valid list this is
    /// O(population) — zero the exact words (and second-layer words) the
    /// entries touch, the scan-free clear that motivates the sparse rep.
    /// Without one, fall back to the dense lazy clear when the last
    /// superstep ran dense (its compaction offsets are fresh), or a full
    /// clear otherwise.
    fn lazy_clear(&self, q: &Queue) {
        if self.list_valid() {
            let len = self.list.len();
            if len > 0 {
                let words = self.inner.words();
                let layer2 = self.inner.layer2();
                let items = self.list.items();
                q.parallel_for("frontier_sparse_lazy_clear", len, |lane, i| {
                    let v = lane.load(items, i);
                    let (wi, _) = locate::<W>(v);
                    // fetch_and: entries sharing a word (or second-layer
                    // word) zero it from several lanes concurrently.
                    lane.fetch_and(words, wi, W::ZERO);
                    // Zeroing the whole second-layer word is safe: every
                    // non-zero first-layer word has an entry here, so all
                    // of them are being zeroed in this same kernel.
                    let (l2i, _) = locate::<W>(wi as u32);
                    lane.fetch_and(layer2, l2i, W::ZERO);
                });
            }
            self.reset_list_flags();
        } else if self.mode.load(Ordering::Relaxed) == 0 {
            self.inner.lazy_clear(q);
            self.reset_list_flags();
        } else {
            self.clear(q);
        }
    }

    fn rep_kind(&self) -> RepKind {
        if self.mode.load(Ordering::Relaxed) == 1 {
            RepKind::Sparse
        } else {
            RepKind::Dense
        }
    }

    fn sparse_view(&self, _q: &Queue) -> Option<SparseView<'_>> {
        if self.mode.load(Ordering::Relaxed) == 1 && self.list_valid() {
            Some(SparseView {
                items: self.list.items(),
                len: self.list.len(),
            })
        } else {
            None
        }
    }

    fn adopt_rep(&self, q: &Queue, kind: RepKind) -> RepKind {
        match kind {
            RepKind::Dense => {
                self.mode.store(0, Ordering::Relaxed);
                // Stop paying for the list; it is stale from here on.
                if self.maintain.swap(0, Ordering::Relaxed) == 1 {
                    self.stale.store(0, 1);
                }
                RepKind::Dense
            }
            RepKind::Sparse => {
                if self.overflow.load(0) != 0 {
                    // The overflow flag is a population proof: at least
                    // capacity-many fresh inserts happened since the last
                    // clear, so the rebuild below would only re-overflow.
                    // Refuse without paying its scan — this is exactly the
                    // post-explosion superstep, where the estimate the
                    // policy used is one step behind the wavefront.
                    self.mode.store(0, Ordering::Relaxed);
                    self.maintain.store(0, Ordering::Relaxed);
                    return RepKind::Dense;
                }
                if !self.list_valid() {
                    // Rebuild the list from the bitmap (dense→sparse
                    // conversion kernel). Population larger than the
                    // list re-overflows and we stay dense.
                    self.reset_list_flags();
                    convert::sparsify(
                        q,
                        self.inner.words(),
                        self.list.items(),
                        self.list.size_buffer(),
                        &self.overflow,
                    );
                    if self.overflow.load(0) != 0 {
                        self.mode.store(0, Ordering::Relaxed);
                        self.maintain.store(0, Ordering::Relaxed);
                        return RepKind::Dense;
                    }
                }
                self.mode.store(1, Ordering::Relaxed);
                self.maintain.store(1, Ordering::Relaxed);
                RepKind::Sparse
            }
        }
    }

    /// Word-wise writes bypassed the insert path: re-derive the second
    /// layer now, mark the list stale until the next sparse adoption.
    fn rebuild_from_words(&self, q: &Queue) {
        crate::frontier::ops::rebuild_layer2(q, &self.inner);
        self.stale.store(0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn tracks_list_while_small_and_overflows_gracefully() {
        let q = queue();
        let n = 4096;
        let f = HybridFrontier::<u32>::new(&q, n).unwrap();
        assert_eq!(sparse_capacity(n), 512);
        q.parallel_for("ins", 100, |ctx, i| {
            f.insert_lane(ctx, i as u32 * 3);
        });
        assert_eq!(f.adopt_rep(&q, RepKind::Sparse), RepKind::Sparse);
        assert_eq!(f.sparse_view(&q).unwrap().len, 100);
        f.dense().check_invariant().unwrap();
        // now blow past the list capacity
        q.parallel_for("ins2", n, |ctx, i| {
            f.insert_lane(ctx, i as u32);
        });
        assert_eq!(
            f.adopt_rep(&q, RepKind::Sparse),
            RepKind::Dense,
            "overflowed population refuses sparse"
        );
        assert!(f.sparse_view(&q).is_none());
        assert_eq!(f.count(&q), n);
    }

    #[test]
    fn sparse_lazy_clear_empties_both_layers() {
        let q = queue();
        let f = HybridFrontier::<u64>::new(&q, 100_000).unwrap();
        for v in [1u32, 63, 64, 9_999, 77_777] {
            f.insert_host(v);
        }
        f.adopt_rep(&q, RepKind::Sparse);
        f.lazy_clear(&q);
        f.dense().check_invariant().unwrap();
        assert!(f.is_empty(&q));
        let (nz, _) = f.compact(&q).unwrap();
        assert_eq!(nz, 0);
        // usable afterwards
        f.insert_host(5);
        assert_eq!(f.to_sorted_vec(), vec![5]);
    }

    #[test]
    fn fill_all_goes_dense() {
        let q = queue();
        let f = HybridFrontier::<u32>::new(&q, 1000).unwrap();
        f.fill_all(&q);
        assert_eq!(f.adopt_rep(&q, RepKind::Sparse), RepKind::Dense);
        assert_eq!(f.count(&q), 1000);
        f.dense().check_invariant().unwrap();
    }

    #[test]
    fn adopt_rebuilds_after_removal() {
        let q = queue();
        let f = HybridFrontier::<u32>::new(&q, 640).unwrap();
        for v in 0..10u32 {
            f.insert_host(v);
        }
        q.parallel_for("rm", 1, |ctx, _| f.remove_lane(ctx, 4));
        assert!(f.sparse_view(&q).is_none(), "stale list withdrawn");
        assert_eq!(f.adopt_rep(&q, RepKind::Sparse), RepKind::Sparse);
        let view = f.sparse_view(&q).unwrap();
        assert_eq!(view.len, 9);
        f.dense().check_invariant().unwrap();
    }

    #[test]
    fn dense_mode_lazy_clear_uses_compaction() {
        let q = queue();
        let f = HybridFrontier::<u32>::new(&q, 10_000).unwrap();
        f.fill_all(&q); // overflow → dense
        f.adopt_rep(&q, RepKind::Dense);
        f.compact(&q).unwrap();
        f.lazy_clear(&q);
        f.dense().check_invariant().unwrap();
        assert!(f.is_empty(&q));
    }

    #[test]
    fn host_seed_then_device_growth_stays_consistent() {
        let q = queue();
        let f = HybridFrontier::<u32>::new(&q, 2048).unwrap();
        f.insert_host(7);
        f.insert_host(7); // idempotent
        f.adopt_rep(&q, RepKind::Sparse);
        assert_eq!(f.sparse_view(&q).unwrap().len, 1);
        q.parallel_for("grow", 50, |ctx, i| {
            f.insert_lane(ctx, 100 + i as u32);
        });
        assert_eq!(f.count(&q), 51);
        f.dense().check_invariant().unwrap();
    }
}
