//! W-lane frontier for batched multi-source traversal (MS-BFS-style
//! bit-packing, ROADMAP item 2).
//!
//! A [`LaneFrontier`] packs a `width`-bit *source-lane mask* per vertex
//! beside an ordinary two-layer union bitmap: bit `l` of vertex `v`'s mask
//! says "`v` is on source `l`'s frontier". One advance pass over the
//! *union* frontier then expands up to `width` concurrent rooted
//! traversals — the per-edge cost is one lane-word load plus bitwise mask
//! arithmetic, shared across every source whose wavefront happens to pass
//! through that edge this superstep.
//!
//! Layout: lane masks live in a flat `u64` array, `64 / width` vertices
//! per word (`width` ∈ {8, 16, 32, 64}, so masks never straddle words).
//! The union bitmap is the ordinary [`TwoLayerFrontier`]: vertex `v` is
//! set iff its lane mask is non-zero, so the engine's counted compaction,
//! bucketed balancing and push/pull direction machinery all apply to the
//! batched advance unchanged.
//!
//! The division of labour with the engine: the [`BitmapLike`] insert
//! family touches the *union* layer only; lane masks are written by the
//! engine's multi-source wrapper (an atomic OR of the accept mask into
//! the destination's lane word, in the same kernel as the union insert)
//! or host-side via [`BitmapLike::insert_host_masked`].

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue};

use crate::frontier::two_layer::TwoLayerFrontier;
use crate::frontier::word::Word;
use crate::frontier::{BitmapLike, Frontier};
use crate::types::VertexId;

/// Locates vertex `v`'s lane mask: `(word index, bit shift)` into the
/// packed `u64` lane array for a frontier of `width` lanes per vertex.
#[inline]
pub fn lane_locate(v: VertexId, width: u32) -> (usize, u32) {
    let bit = v as u64 * width as u64;
    ((bit >> 6) as usize, (bit & 63) as u32)
}

/// Number of `u64` lane words needed for `n` vertices at `width` lanes
/// per vertex.
#[inline]
pub fn lane_words(n: usize, width: u32) -> usize {
    (n * width as usize).div_ceil(64)
}

/// A non-owning view of a frontier's packed lane masks — cheap aliases
/// of the underlying buffers, safe to move into advance functors without
/// borrowing the frontier itself.
pub struct LaneView {
    /// Bit-packed lane words (`64 / width` vertices per word).
    pub lanes: DeviceBuffer<u64>,
    /// Lanes per vertex: 8, 16, 32 or 64.
    pub width: u32,
}

impl Clone for LaneView {
    fn clone(&self) -> Self {
        LaneView {
            lanes: self.lanes.alias(),
            width: self.width,
        }
    }
}

impl LaneView {
    /// All-ones mask over `width` lanes.
    #[inline]
    pub fn mask_all(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Host-side read of vertex `v`'s lane mask.
    pub fn host_mask(&self, v: VertexId) -> u64 {
        let (w, s) = lane_locate(v, self.width);
        (self.lanes.load(w) >> s) & Self::mask_all(self.width)
    }
}

/// Two-layer union bitmap plus a `width`-bit lane mask per vertex (see
/// the module docs). Always presents as `Dense` to the representation
/// policy: the lane overlay has no sparse item list, and `adopt_rep`'s
/// default refusal keeps the engine's policy honest about it.
pub struct LaneFrontier<W: Word> {
    base: TwoLayerFrontier<W>,
    lanes: DeviceBuffer<u64>,
    width: u32,
}

impl<W: Word> LaneFrontier<W> {
    /// Creates an empty `width`-lane frontier over `n` vertices.
    /// `width` must be one of 8, 16, 32, 64 (masks never straddle lane
    /// words, and whole union words map to whole runs of lane words).
    pub fn new(q: &Queue, n: usize, width: u32) -> sygraph_sim::SimResult<Self> {
        assert!(
            matches!(width, 8 | 16 | 32 | 64),
            "lane width must be 8, 16, 32 or 64 (got {width})"
        );
        Ok(LaneFrontier {
            base: TwoLayerFrontier::new(q, n)?,
            lanes: q.malloc_device::<u64>(lane_words(n, width).max(1))?,
            width,
        })
    }

    /// Lanes per vertex.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Device bytes held: the union two-layer bitmap plus the lane array.
    pub fn device_bytes(&self) -> u64 {
        self.base.device_bytes() + self.lanes.bytes()
    }

    /// Checks the overlay invariant host-side: a vertex's union bit is
    /// set iff its lane mask is non-zero. (The engine's wrapper inserts
    /// the union bit in the same kernel as the lane OR, so the two can
    /// only diverge through a bug.)
    pub fn check_invariant(&self) -> Result<(), String> {
        self.base.check_invariant()?;
        let members = self.base.to_sorted_vec();
        let view = LaneView {
            lanes: self.lanes.alias(),
            width: self.width,
        };
        for v in 0..self.base.capacity() as u32 {
            let mask = view.host_mask(v);
            let in_union = members.binary_search(&v).is_ok();
            if mask != 0 && !in_union {
                return Err(format!(
                    "vertex {v}: lane mask {mask:#x} but union bit clear"
                ));
            }
            if mask == 0 && in_union {
                return Err(format!("vertex {v}: union bit set but lane mask zero"));
            }
        }
        Ok(())
    }
}

impl<W: Word> Frontier for LaneFrontier<W> {
    fn capacity(&self) -> usize {
        self.base.capacity()
    }

    /// Host-side insert lands on lane 0 — the single-source degenerate
    /// case. Multi-source seeding goes through
    /// [`BitmapLike::insert_host_masked`].
    fn insert_host(&self, v: VertexId) {
        self.insert_host_masked(v, 1);
    }

    fn contains_host(&self, v: VertexId) -> bool {
        self.base.contains_host(v)
    }

    fn clear(&self, q: &Queue) {
        let lanes = &self.lanes;
        q.parallel_for("lane_clear", lanes.len(), |lane, i| {
            lane.store(lanes, i, 0u64);
        });
        self.base.clear(q);
    }

    fn count(&self, q: &Queue) -> usize {
        self.base.count(q)
    }

    fn is_empty(&self, q: &Queue) -> bool {
        self.base.is_empty(q)
    }

    fn to_sorted_vec(&self) -> Vec<VertexId> {
        self.base.to_sorted_vec()
    }

    /// Activates every vertex on every lane (all `width` bits set).
    fn fill_all(&self, q: &Queue) {
        let n = self.base.capacity();
        let width = self.width;
        let vpw = (64 / width) as usize; // vertices per lane word
        let lanes = &self.lanes;
        q.parallel_for("lane_fill_all", lanes.len(), |lane, i| {
            let first = i * vpw;
            let valid = n.saturating_sub(first).min(vpw) as u32;
            let bits = valid * width;
            let m = if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            lane.store(lanes, i, m);
        });
        self.base.fill_all(q);
    }
}

impl<W: Word> BitmapLike<W> for LaneFrontier<W> {
    fn num_words(&self) -> usize {
        self.base.num_words()
    }

    fn words(&self) -> &DeviceBuffer<W> {
        self.base.words()
    }

    /// Union-layer insert only — lane masks are the multi-source
    /// wrapper's responsibility (see the module docs).
    fn insert_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        self.base.insert_lane(lane, v);
    }

    fn insert_lane_checked(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool {
        self.base.insert_lane_checked(lane, v)
    }

    /// Removes the vertex from the union layer *and* zeroes its whole
    /// lane mask.
    fn remove_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        let (w, s) = lane_locate(v, self.width);
        lane.fetch_and(&self.lanes, w, !(LaneView::mask_all(self.width) << s));
        self.base.remove_lane(lane, v);
    }

    fn compact(&self, q: &Queue) -> Option<(usize, &DeviceBuffer<u32>)> {
        self.base.compact(q)
    }

    /// Lazy clear extended to the lane overlay: zero exactly the lane
    /// words covering the union words the last [`BitmapLike::compact`]
    /// found non-zero (the overlay invariant guarantees no lane bits live
    /// outside them), then run the union layer's own lazy clear. Alignment
    /// holds because `W::BITS × width` is always a multiple of 64.
    fn lazy_clear(&self, q: &Queue) {
        let (offsets, count) = self.base.compaction_buffers();
        let nz = count.load(0) as usize;
        // Lane words per union word: W::BITS vertices × width bits / 64.
        let lwpu = (W::BITS * self.width / 64) as usize;
        let lanes = &self.lanes;
        let lane_len = lanes.len();
        if nz > 0 {
            q.parallel_for("lane_lazy_clear", nz, |lane, i| {
                let wi = lane.load(offsets, i) as usize;
                for k in 0..lwpu {
                    let lw = wi * lwpu + k;
                    if lw < lane_len {
                        lane.store(lanes, lw, 0u64);
                    }
                }
                lane.compute(lwpu as u64);
            });
        }
        self.base.lazy_clear(q);
    }

    fn rebuild_from_words(&self, q: &Queue) {
        self.base.rebuild_from_words(q);
    }

    fn lane_view(&self) -> Option<LaneView> {
        Some(LaneView {
            lanes: self.lanes.alias(),
            width: self.width,
        })
    }

    fn insert_host_masked(&self, v: VertexId, mask: u64) {
        let m = mask & LaneView::mask_all(self.width);
        if m == 0 {
            return;
        }
        let (w, s) = lane_locate(v, self.width);
        self.lanes.fetch_or(w, m << s);
        self.base.insert_host(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn lane_locate_packs_without_straddling() {
        // 8 lanes: 8 vertices per word.
        assert_eq!(lane_locate(0, 8), (0, 0));
        assert_eq!(lane_locate(7, 8), (0, 56));
        assert_eq!(lane_locate(8, 8), (1, 0));
        // 64 lanes: one vertex per word.
        assert_eq!(lane_locate(3, 64), (3, 0));
        assert_eq!(lane_words(100, 32), 50);
        assert_eq!(lane_words(3, 64), 3);
        assert_eq!(lane_words(9, 8), 2);
    }

    #[test]
    fn masked_insert_roundtrips_and_keeps_union_in_sync() {
        let q = queue();
        let f = LaneFrontier::<u32>::new(&q, 1000, 16).unwrap();
        f.insert_host_masked(5, 0b1010);
        f.insert_host_masked(5, 0b0001);
        f.insert_host_masked(999, 1 << 15);
        let view = f.lane_view().unwrap();
        assert_eq!(view.host_mask(5), 0b1011);
        assert_eq!(view.host_mask(999), 1 << 15);
        assert_eq!(view.host_mask(6), 0);
        assert_eq!(f.to_sorted_vec(), vec![5, 999]);
        f.check_invariant().unwrap();
    }

    #[test]
    fn mask_is_truncated_to_width() {
        let q = queue();
        let f = LaneFrontier::<u64>::new(&q, 64, 8).unwrap();
        f.insert_host_masked(3, u64::MAX);
        assert_eq!(f.lane_view().unwrap().host_mask(3), 0xFF);
        // Neighbour masks in the same word must be untouched.
        assert_eq!(f.lane_view().unwrap().host_mask(2), 0);
        assert_eq!(f.lane_view().unwrap().host_mask(4), 0);
        // An all-out-of-width mask inserts nothing.
        let g = LaneFrontier::<u64>::new(&q, 64, 8).unwrap();
        g.insert_host_masked(3, 0xFF00);
        assert!(g.to_sorted_vec().is_empty());
    }

    #[test]
    fn clear_and_lazy_clear_reset_lane_words() {
        let q = queue();
        for width in [8u32, 16, 32, 64] {
            let f = LaneFrontier::<u32>::new(&q, 500, width).unwrap();
            for v in [0u32, 33, 150, 499] {
                f.insert_host_masked(v, 0b11);
            }
            // Lazy path: compact first (as the engine does pre-advance).
            f.compact(&q);
            f.lazy_clear(&q);
            f.check_invariant().unwrap();
            assert!(f.is_empty(&q));
            for v in [0u32, 33, 150, 499] {
                assert_eq!(f.lane_view().unwrap().host_mask(v), 0, "width {width}");
            }
            // Full clear path.
            f.insert_host_masked(42, 1);
            f.clear(&q);
            assert!(f.is_empty(&q));
            assert_eq!(f.lane_view().unwrap().host_mask(42), 0);
        }
    }

    #[test]
    fn fill_all_sets_every_lane_of_every_vertex() {
        let q = queue();
        let f = LaneFrontier::<u32>::new(&q, 70, 16).unwrap();
        f.fill_all(&q);
        f.check_invariant().unwrap();
        assert_eq!(f.count(&q), 70);
        let view = f.lane_view().unwrap();
        assert_eq!(view.host_mask(0), 0xFFFF);
        assert_eq!(view.host_mask(69), 0xFFFF);
    }

    #[test]
    fn remove_lane_zeroes_the_whole_mask() {
        let q = queue();
        let f = LaneFrontier::<u32>::new(&q, 64, 32).unwrap();
        f.insert_host_masked(1, 0xF0F0);
        f.insert_host_masked(2, 0x1);
        q.parallel_for("rm", 1, |ctx, _| {
            f.remove_lane(ctx, 1);
        });
        assert_eq!(f.lane_view().unwrap().host_mask(1), 0);
        assert_eq!(f.lane_view().unwrap().host_mask(2), 1);
        assert_eq!(f.to_sorted_vec(), vec![2]);
        f.check_invariant().unwrap();
    }

    #[test]
    fn device_wrapper_style_or_composes_with_union_insert() {
        // Mimic the engine's multi-source wrapper: lane OR + union insert
        // in one kernel, then verify the overlay invariant.
        let q = queue();
        let f = LaneFrontier::<u32>::new(&q, 256, 8).unwrap();
        let view = f.lane_view().unwrap();
        let lanes = view.lanes;
        q.parallel_for("wrap", 256, |ctx, v| {
            if v % 5 == 0 {
                let (w, s) = lane_locate(v as u32, 8);
                let old = ctx.fetch_or(&lanes, w, 0b11u64 << s);
                if 0b11 & !(old >> s) != 0 {
                    f.insert_lane_checked(ctx, v as u32);
                }
            }
        });
        f.check_invariant().unwrap();
        assert_eq!(f.count(&q), 256 / 5 + 1);
        assert_eq!(f.lane_view().unwrap().host_mask(10), 0b11);
    }
}
