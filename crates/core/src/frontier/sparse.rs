//! Sparse (item-list) frontier: a duplicate-free vertex list built on
//! [`VectorFrontier`] plus a visited bitmap used for dedup-on-insert.
//!
//! The dense layouts pay a per-superstep cost proportional to the bitmap
//! extent — even the two-layer compaction scans `⌈n/b²⌉` second-layer
//! words when only three vertices are active. This layout instead hands
//! `advance` an explicit list whose length *is* the frontier population:
//! on high-diameter road graphs (thousands of supersteps, tiny
//! wavefronts) the fixed scans disappear entirely. Inserts go through the
//! bitmap first (atomic OR); only the lane that freshly sets a bit
//! appends, so the list never holds duplicates — the property the fused
//! advance+compute path and the visit-edge tail rely on.

use std::sync::atomic::{AtomicU32, Ordering};

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue};

use crate::frontier::bitmap::BitmapStorage;
use crate::frontier::convert;
use crate::frontier::rep::{RepKind, SparseView};
use crate::frontier::vector::VectorFrontier;
use crate::frontier::word::{locate, Word};
use crate::frontier::{BitmapLike, Frontier};
use crate::types::VertexId;

/// Duplicate-free item-list frontier over `n` vertices.
///
/// The list has `n` slots, so a list rebuilt from the bitmap can never
/// overflow; the bitmap stays authoritative at all times and the list
/// mirrors it exactly until a removal marks it stale.
pub struct SparseFrontier<W: Word> {
    storage: BitmapStorage<W>,
    list: VectorFrontier,
    /// 1 ⇒ the list no longer mirrors the bitmap (a removal happened, or
    /// the words were rewritten wholesale by a set-operator).
    stale: DeviceBuffer<u32>,
    /// Representation currently presented (0 = dense, 1 = sparse). The
    /// engine's `adopt_rep` toggles it; forced-dense runs take the plain
    /// word-walk even though the list is maintained.
    mode: AtomicU32,
}

impl<W: Word> SparseFrontier<W> {
    /// Creates an empty frontier over `n` vertices.
    pub fn new(q: &Queue, n: usize) -> sygraph_sim::SimResult<Self> {
        let storage = BitmapStorage::new(q, n)?;
        let list = VectorFrontier::with_capacity(q, n, n.max(1))?;
        let stale = q.malloc_device::<u32>(1)?;
        stale.store(0, 0);
        Ok(SparseFrontier {
            storage,
            list,
            stale,
            mode: AtomicU32::new(1),
        })
    }

    /// Device bytes held by this frontier (bitmap + list + stale flag).
    pub fn device_bytes(&self) -> u64 {
        self.storage.device_bytes() + self.list.device_bytes() + self.stale.bytes()
    }

    fn list_valid(&self) -> bool {
        self.stale.load(0) == 0
    }

    /// Rebuilds the item list from the bitmap (device-side conversion).
    fn resparsify(&self, q: &Queue) {
        self.stale.store(0, 0);
        convert::sparsify(
            q,
            &self.storage.words,
            self.list.items(),
            self.list.size_buffer(),
            &self.stale,
        );
        // The list has n slots and the bitmap at most n set bits, so the
        // overflow arm (which would re-set `stale`) is unreachable.
        debug_assert!(self.list_valid());
    }
}

impl<W: Word> Frontier for SparseFrontier<W> {
    fn capacity(&self) -> usize {
        self.storage.len()
    }

    fn insert_host(&self, v: VertexId) {
        let old = self.storage.insert_host(v);
        if !old.test_bit(locate::<W>(v).1) {
            self.list.try_insert_host(v);
        }
    }

    fn contains_host(&self, v: VertexId) -> bool {
        self.storage.contains_host(v)
    }

    fn clear(&self, q: &Queue) {
        self.storage.clear_kernel(q);
        self.list.set_len(0);
        self.stale.store(0, 0);
    }

    fn count(&self, q: &Queue) -> usize {
        if self.list_valid() {
            // Duplicate-free list ⇒ its length is the population, no
            // kernel needed.
            self.list.len()
        } else {
            self.storage.count_kernel(q, "frontier_count")
        }
    }

    fn to_sorted_vec(&self) -> Vec<VertexId> {
        self.storage.to_sorted_vec()
    }

    fn fill_all(&self, q: &Queue) {
        self.storage.fill_all_kernel(q);
        self.list.fill_all(q);
        self.stale.store(0, 0);
    }
}

impl<W: Word> BitmapLike<W> for SparseFrontier<W> {
    fn num_words(&self) -> usize {
        self.storage.num_words()
    }

    fn words(&self) -> &DeviceBuffer<W> {
        &self.storage.words
    }

    fn insert_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        self.insert_lane_checked(lane, v);
    }

    fn insert_lane_checked(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool {
        let (wi, b) = locate::<W>(v);
        let old = lane.fetch_or(&self.storage.words, wi, W::one_bit(b));
        let fresh = !old.test_bit(b);
        if fresh && !self.list.append_lane_checked(lane, v) {
            // Only reachable through remove→reinsert cycles, which marked
            // the list stale already; keep the flag set for good measure.
            // fetch_or: several lanes may overflow in the same launch.
            lane.fetch_or(&self.stale, 0, 1);
        }
        fresh
    }

    fn remove_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        let (wi, b) = locate::<W>(v);
        lane.fetch_and(&self.storage.words, wi, W::one_bit(b).not());
        lane.fetch_or(&self.stale, 0, 1);
    }

    /// No dense compaction structure: a forced-dense advance walks every
    /// word (the §4.1 single-layer behaviour).
    fn compact(&self, _q: &Queue) -> Option<(usize, &DeviceBuffer<u32>)> {
        None
    }

    /// O(population): zero only the words the (exact) list touches.
    fn lazy_clear(&self, q: &Queue) {
        if !self.list_valid() {
            self.clear(q);
            return;
        }
        let len = self.list.len();
        if len > 0 {
            let words = &self.storage.words;
            let items = self.list.items();
            q.parallel_for("frontier_sparse_lazy_clear", len, |lane, i| {
                let v = lane.load(items, i);
                let (wi, _) = locate::<W>(v);
                // fetch_and: list entries sharing a word zero it from
                // several lanes; a plain store would be a write/write race.
                lane.fetch_and(words, wi, W::ZERO);
            });
        }
        self.list.set_len(0);
    }

    fn rep_kind(&self) -> RepKind {
        if self.mode.load(Ordering::Relaxed) == 1 {
            RepKind::Sparse
        } else {
            RepKind::Dense
        }
    }

    fn sparse_view(&self, _q: &Queue) -> Option<SparseView<'_>> {
        if self.mode.load(Ordering::Relaxed) == 1 && self.list_valid() {
            Some(SparseView {
                items: self.list.items(),
                len: self.list.len(),
            })
        } else {
            None
        }
    }

    fn adopt_rep(&self, q: &Queue, kind: RepKind) -> RepKind {
        match kind {
            RepKind::Dense => {
                self.mode.store(0, Ordering::Relaxed);
                RepKind::Dense
            }
            RepKind::Sparse => {
                if !self.list_valid() {
                    self.resparsify(q);
                }
                self.mode.store(1, Ordering::Relaxed);
                RepKind::Sparse
            }
        }
    }

    /// Word-wise writes bypassed the insert path: the list is stale until
    /// the next `adopt_rep(Sparse)` re-sparsifies.
    fn rebuild_from_words(&self, q: &Queue) {
        let _ = q;
        self.stale.store(0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn dedup_on_insert_keeps_list_exact() {
        let q = queue();
        let f = SparseFrontier::<u32>::new(&q, 1000).unwrap();
        q.parallel_for("ins", 64, |ctx, i| {
            // every vertex inserted twice
            f.insert_lane(ctx, (i % 32) as u32 * 7);
        });
        assert_eq!(f.count(&q), 32, "duplicates suppressed");
        let view = f.sparse_view(&q).expect("list valid");
        assert_eq!(view.len, 32, "one list entry per vertex");
        assert_eq!(f.to_sorted_vec().len(), 32);
    }

    #[test]
    fn removal_marks_stale_and_adopt_rebuilds() {
        let q = queue();
        let f = SparseFrontier::<u64>::new(&q, 500).unwrap();
        for v in [3u32, 40, 300] {
            f.insert_host(v);
        }
        q.parallel_for("rm", 1, |ctx, _| f.remove_lane(ctx, 40));
        assert!(f.sparse_view(&q).is_none(), "stale list withdrawn");
        assert_eq!(f.adopt_rep(&q, RepKind::Sparse), RepKind::Sparse);
        let view = f.sparse_view(&q).expect("rebuilt");
        assert_eq!(view.len, 2);
        assert_eq!(f.to_sorted_vec(), vec![3, 300]);
    }

    #[test]
    fn lazy_clear_is_population_proportional_and_complete() {
        let q = queue();
        let f = SparseFrontier::<u32>::new(&q, 100_000).unwrap();
        for v in [5u32, 77, 31_000] {
            f.insert_host(v);
        }
        f.lazy_clear(&q);
        assert!(f.is_empty(&q));
        assert_eq!(f.count(&q), 0);
        // usable afterwards
        f.insert_host(9);
        assert_eq!(f.to_sorted_vec(), vec![9]);
    }

    #[test]
    fn forced_dense_withdraws_view() {
        let q = queue();
        let f = SparseFrontier::<u32>::new(&q, 64).unwrap();
        f.insert_host(1);
        assert!(f.sparse_view(&q).is_some());
        assert_eq!(f.adopt_rep(&q, RepKind::Dense), RepKind::Dense);
        assert!(f.sparse_view(&q).is_none());
        assert_eq!(f.rep_kind(), RepKind::Dense);
        assert_eq!(f.adopt_rep(&q, RepKind::Sparse), RepKind::Sparse);
        assert_eq!(f.sparse_view(&q).unwrap().len, 1);
    }

    #[test]
    fn fill_all_keeps_list_exact() {
        let q = queue();
        let f = SparseFrontier::<u32>::new(&q, 300).unwrap();
        f.fill_all(&q);
        assert_eq!(f.count(&q), 300);
        assert_eq!(f.sparse_view(&q).unwrap().len, 300);
    }
}
