//! Vector (append-queue) frontier — the Gunrock-style layout (§4, Fig. 2).
//!
//! Discovered vertices are appended through an atomic tail counter.
//! Duplicates are *not* prevented (vertex 3 in the paper's Figure 2), so
//! frameworks using this layout need a post-processing pass to remove
//! them, and capacity must grow with the duplicate-inflated frontier —
//! both costs the bitmap layouts avoid. Growth reallocates at 2×, which
//! is the memory-spike behaviour visible in Figure 9.

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue, SimResult};

use crate::frontier::Frontier;
use crate::types::VertexId;

/// Append-vector frontier with explicit capacity management.
pub struct VectorFrontier {
    n: usize,
    items: DeviceBuffer<u32>,
    size: DeviceBuffer<u32>,
    high_water: std::sync::atomic::AtomicUsize,
}

impl VectorFrontier {
    /// Creates a frontier over `n` vertices with initial `capacity` slots.
    pub fn with_capacity(q: &Queue, n: usize, capacity: usize) -> SimResult<Self> {
        Ok(VectorFrontier {
            n,
            items: q.malloc_device::<u32>(capacity.max(1))?,
            size: q.malloc_device::<u32>(1)?,
            high_water: std::sync::atomic::AtomicUsize::new(capacity.max(1)),
        })
    }

    /// Current element count, including duplicates.
    pub fn len(&self) -> usize {
        self.size.load(0) as usize
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slot capacity.
    pub fn capacity_slots(&self) -> usize {
        self.items.len()
    }

    /// Device bytes currently held.
    pub fn device_bytes(&self) -> u64 {
        self.items.bytes() + 4
    }

    /// Device-side append (atomic tail bump). The caller must have
    /// guaranteed capacity (see [`VectorFrontier::ensure_capacity`]), as
    /// Gunrock does by sizing the output with a degree scan first.
    pub fn append_lane(&self, lane: &mut ItemCtx<'_>, v: VertexId) {
        let idx = lane.fetch_add(&self.size, 0, 1) as usize;
        debug_assert!(
            idx < self.items.len(),
            "vector frontier overflow: {idx} >= {}",
            self.items.len()
        );
        lane.store(&self.items, idx, v);
    }

    /// Device-side append that reports instead of overflowing: returns
    /// `false` (and stores nothing) when the reserved slot is past
    /// capacity. Lets bounded consumers (the hybrid frontier's item list)
    /// detect overflow and fall back rather than corrupt memory. The tail
    /// counter still advances, so `len()` is only trustworthy while every
    /// append returned `true`.
    pub fn append_lane_checked(&self, lane: &mut ItemCtx<'_>, v: VertexId) -> bool {
        let idx = lane.fetch_add(&self.size, 0, 1) as usize;
        if idx < self.items.len() {
            lane.store(&self.items, idx, v);
            true
        } else {
            false
        }
    }

    /// Host-side append that reports instead of asserting on overflow.
    pub fn try_insert_host(&self, v: VertexId) -> bool {
        let idx = self.size.fetch_add(0, 1) as usize;
        if idx < self.items.len() {
            self.items.store(idx, v);
            true
        } else {
            false
        }
    }

    /// Device-side indexed read.
    pub fn get_lane(&self, lane: &mut ItemCtx<'_>, i: usize) -> VertexId {
        lane.load(&self.items, i)
    }

    /// Device-side indexed write (used by compaction/dedup passes).
    pub fn set_lane(&self, lane: &mut ItemCtx<'_>, i: usize, v: VertexId) {
        lane.store(&self.items, i, v);
    }

    /// Overwrites the element count (after a compaction kernel).
    pub fn set_len(&self, len: usize) {
        self.size.store(0, len as u32);
    }

    pub fn items(&self) -> &DeviceBuffer<u32> {
        &self.items
    }

    /// The device tail counter (conversion kernels append through it).
    pub(crate) fn size_buffer(&self) -> &DeviceBuffer<u32> {
        &self.size
    }

    /// Grows (2× policy) until at least `needed` slots exist: allocates
    /// the new buffer, copies, then frees the old one — transiently
    /// holding both, which is the realloc memory spike of Figure 9.
    pub fn ensure_capacity(&mut self, q: &Queue, needed: usize) -> SimResult<()> {
        if needed <= self.items.len() {
            return Ok(());
        }
        let mut cap = self.items.len().max(1);
        while cap < needed {
            cap *= 2;
        }
        let bigger = q.malloc_device::<u32>(cap)?;
        q.copy(&self.items, &bigger);
        let old = std::mem::replace(&mut self.items, bigger);
        q.free(old);
        self.note_high_water();
        Ok(())
    }

    /// Releases slack capacity down to the current element count: without
    /// this, one duplicate-inflated superstep pins its 2×-grown buffer for
    /// the rest of the run (the plateau after each spike in Figure 9).
    /// Records the capacity high-water mark as a profiler marker so the
    /// sim memory stats retain it after the buffer shrinks.
    pub fn shrink_to_fit(&mut self, q: &Queue) -> SimResult<()> {
        self.note_high_water();
        let len = self.len();
        let target = len.max(1);
        if target >= self.items.len() {
            return Ok(());
        }
        q.mark(format!(
            "vector_high_water_bytes:{}",
            self.high_water_bytes()
        ));
        let smaller = q.malloc_device::<u32>(target)?;
        let old_items = &self.items;
        q.parallel_for("vector_shrink_copy", len, |lane, i| {
            let v = lane.load(old_items, i);
            lane.store(&smaller, i, v);
        });
        let old = std::mem::replace(&mut self.items, smaller);
        q.free(old);
        Ok(())
    }

    /// Empties the frontier *and* returns its buffer to `capacity` slots —
    /// the between-supersteps reset that keeps a transient duplicate burst
    /// from pinning peak memory. Also records the high-water marker.
    pub fn reset(&mut self, q: &Queue, capacity: usize) -> SimResult<()> {
        self.note_high_water();
        self.set_len(0);
        let target = capacity.max(1);
        if target < self.items.len() {
            q.mark(format!(
                "vector_high_water_bytes:{}",
                self.high_water_bytes()
            ));
            let fresh = q.malloc_device::<u32>(target)?;
            let old = std::mem::replace(&mut self.items, fresh);
            q.free(old);
        }
        Ok(())
    }

    /// Largest slot capacity this frontier has ever held.
    pub fn high_water_slots(&self) -> usize {
        self.high_water
            .load(std::sync::atomic::Ordering::Relaxed)
            .max(self.items.len())
    }

    /// [`VectorFrontier::high_water_slots`] in bytes (items buffer only).
    pub fn high_water_bytes(&self) -> u64 {
        (self.high_water_slots() * std::mem::size_of::<u32>()) as u64
    }

    fn note_high_water(&self) {
        self.high_water
            .fetch_max(self.items.len(), std::sync::atomic::Ordering::Relaxed);
    }
}

impl Frontier for VectorFrontier {
    fn capacity(&self) -> usize {
        self.n
    }

    fn insert_host(&self, v: VertexId) {
        let idx = self.size.fetch_add(0, 1) as usize;
        assert!(idx < self.items.len(), "host insert overflow");
        self.items.store(idx, v);
    }

    fn contains_host(&self, v: VertexId) -> bool {
        let len = self.len();
        (0..len).any(|i| self.items.load(i) == v)
    }

    /// Clearing a vector frontier is O(1): reset the tail counter.
    fn clear(&self, _q: &Queue) {
        self.size.store(0, 0);
    }

    /// Element count *including duplicates* — what a vector-frontier
    /// framework actually observes before post-processing.
    fn count(&self, _q: &Queue) -> usize {
        self.len()
    }

    fn to_sorted_vec(&self) -> Vec<VertexId> {
        let len = self.len().min(self.items.len());
        let mut v: Vec<u32> = self.items.to_vec()[..len].to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Requires `capacity_slots() >= n`; callers grow first.
    fn fill_all(&self, q: &Queue) {
        assert!(self.items.len() >= self.n, "grow before fill_all");
        let items = &self.items;
        q.parallel_for("vector_fill_all", self.n, |lane, i| {
            lane.store(items, i, i as u32);
        });
        self.set_len(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn append_and_read_back() {
        let q = queue();
        let f = VectorFrontier::with_capacity(&q, 100, 16).unwrap();
        f.insert_host(5);
        f.insert_host(3);
        f.insert_host(5); // duplicate is kept
        assert_eq!(f.len(), 3);
        assert_eq!(f.count(&q), 3, "count sees duplicates");
        assert_eq!(f.to_sorted_vec(), vec![3, 5], "sorted view dedups");
        assert!(f.contains_host(3));
        assert!(!f.contains_host(4));
    }

    #[test]
    fn device_append() {
        let q = queue();
        let f = VectorFrontier::with_capacity(&q, 1000, 1000).unwrap();
        q.parallel_for("app", 500, |ctx, i| {
            f.append_lane(ctx, i as u32);
        });
        assert_eq!(f.len(), 500);
        assert_eq!(f.to_sorted_vec().len(), 500);
    }

    #[test]
    fn clear_is_constant_time_reset() {
        let q = queue();
        let f = VectorFrontier::with_capacity(&q, 10, 10).unwrap();
        f.insert_host(1);
        let kernels_before = q.profiler().kernel_count();
        f.clear(&q);
        assert_eq!(q.profiler().kernel_count(), kernels_before, "no kernel");
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn growth_doubles_and_preserves_contents() {
        let q = queue();
        let mut f = VectorFrontier::with_capacity(&q, 100, 4).unwrap();
        f.insert_host(9);
        f.insert_host(8);
        f.ensure_capacity(&q, 50).unwrap();
        assert!(f.capacity_slots() >= 50);
        assert_eq!(f.capacity_slots(), 64, "2x growth policy");
        assert_eq!(f.to_sorted_vec(), vec![8, 9]);
    }

    #[test]
    fn growth_spike_visible_in_mem_events() {
        let q = queue();
        let mut f = VectorFrontier::with_capacity(&q, 100, 4).unwrap();
        f.ensure_capacity(&q, 100).unwrap();
        let evs = q.profiler().mem_events();
        // alloc(items) + alloc(size) + alloc(bigger) + free(old)
        assert!(evs.iter().any(|e| e.delta_bytes < 0), "old buffer freed");
        let peak_during = evs.iter().map(|e| e.usage_after).max().unwrap();
        assert!(peak_during >= (4 + 128) * 4, "both buffers coexisted");
    }

    #[test]
    fn shrink_to_fit_releases_slack_and_keeps_high_water() {
        let q = queue();
        let mut f = VectorFrontier::with_capacity(&q, 1000, 4).unwrap();
        f.ensure_capacity(&q, 600).unwrap();
        assert_eq!(f.capacity_slots(), 1024, "2x growth");
        for v in 0..5u32 {
            f.insert_host(v);
        }
        f.shrink_to_fit(&q).unwrap();
        assert_eq!(f.capacity_slots(), 5, "slack released down to len");
        assert_eq!(f.to_sorted_vec(), vec![0, 1, 2, 3, 4], "contents survive");
        assert_eq!(f.high_water_slots(), 1024, "peak capacity remembered");
        // The peak is surfaced to the sim memory stats as a marker...
        let markers = q.profiler().markers();
        assert!(
            markers
                .iter()
                .any(|m| m.label == format!("vector_high_water_bytes:{}", 1024 * 4)),
            "high-water marker recorded: {markers:?}"
        );
        // ...and the old buffer shows up as freed in the mem events.
        assert!(q
            .profiler()
            .mem_events()
            .iter()
            .any(|e| e.delta_bytes == -(1024 * 4)));
    }

    #[test]
    fn shrink_to_fit_without_slack_is_free() {
        let q = queue();
        let mut f = VectorFrontier::with_capacity(&q, 100, 3).unwrap();
        for v in 0..3u32 {
            f.insert_host(v);
        }
        let events = q.profiler().mem_events().len();
        f.shrink_to_fit(&q).unwrap();
        assert_eq!(f.capacity_slots(), 3);
        assert_eq!(q.profiler().mem_events().len(), events, "no realloc");
    }

    #[test]
    fn reset_empties_and_restores_baseline_capacity() {
        let q = queue();
        let mut f = VectorFrontier::with_capacity(&q, 1000, 8).unwrap();
        f.ensure_capacity(&q, 512).unwrap();
        for v in 0..100u32 {
            f.insert_host(v);
        }
        f.reset(&q, 8).unwrap();
        assert!(f.is_empty());
        assert_eq!(f.capacity_slots(), 8, "buffer back at baseline");
        assert_eq!(f.high_water_slots(), 512, "spike retained in stats");
        assert!(f.high_water_bytes() >= 512 * 4);
    }

    #[test]
    fn growth_can_oom() {
        let mut prof = DeviceProfile::host_test();
        prof.vram_bytes = 2048;
        let q = Queue::new(Device::new(prof));
        let mut f = VectorFrontier::with_capacity(&q, 100, 64).unwrap();
        assert!(f.ensure_capacity(&q, 100_000).is_err());
    }
}
