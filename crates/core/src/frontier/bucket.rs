//! Degree buckets for the hybrid advance (§4.2 load balancing).
//!
//! After the counted compaction produces the non-zero word offsets, a
//! binning kernel walks the set bits and sorts each active vertex into one
//! of three buckets by out-degree:
//!
//! * **small** (`d ≤ small_max`): one lane walks the whole adjacency —
//!   cooperative expansion would waste `sg_size − 1` lanes on it.
//! * **medium** (`small_max < d < large_min`): subgroup-cooperative, the
//!   original workgroup-mapped expansion.
//! * **large** (`d ≥ large_min`): the adjacency is split into
//!   `chunk`-sized neighbor ranges and each range becomes its own work
//!   item, so one hub's edge mass spreads across many workgroups — and
//!   therefore many compute units — instead of serializing on one.
//!
//! The buffers live in a [`BucketPool`] so the superstep engine can reuse
//! them across supersteps instead of reallocating per `advance`.

use sygraph_sim::{DeviceBuffer, ItemCtx, Queue, SimResult};

use crate::frontier::word::Word;
use crate::inspector::Tuning;
use crate::types::VertexId;

/// Per-lane degree lookup the binning kernel uses (the `Advance` builder
/// derives it from the graph's row offsets, keeping this module
/// representation-agnostic).
pub type DegreeOf<'a> = &'a (dyn Fn(&mut ItemCtx<'_>, VertexId) -> u32 + Sync);

/// Degree thresholds + chunk size of a bucketed dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketSpec {
    /// Inclusive upper degree bound of the small (lane-mapped) bucket.
    pub small_max: u32,
    /// Inclusive lower degree bound of the large (chunked) bucket.
    pub large_min: u32,
    /// Neighbor-range chunk size for large vertices (≥ 1).
    pub chunk: u32,
}

impl BucketSpec {
    pub fn from_tuning(t: &Tuning) -> Self {
        BucketSpec {
            small_max: t.small_max_degree,
            large_min: t.large_min_degree.max(t.small_max_degree + 1),
            chunk: t.large_chunk(),
        }
    }
}

/// Host-visible result of a binning pass. `large` counts *chunk entries*,
/// not vertices — a degree-10·chunk hub contributes 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketCounts {
    pub small: u32,
    pub medium: u32,
    pub large: u32,
}

impl BucketCounts {
    pub fn total(&self) -> u64 {
        self.small as u64 + self.medium as u64 + self.large as u64
    }
}

/// Device buffers backing the three buckets, pooled across supersteps.
pub struct BucketPool {
    /// Vertex ids with degree ≤ `small_max`.
    pub small: DeviceBuffer<u32>,
    /// Vertex ids in the subgroup-cooperative band.
    pub medium: DeviceBuffer<u32>,
    /// Vertex id of each large-bucket chunk entry.
    pub large_v: DeviceBuffer<u32>,
    /// Chunk index (0-based within the vertex's adjacency) per entry.
    pub large_c: DeviceBuffer<u32>,
    /// Three append counters: small, medium, large.
    pub counts: DeviceBuffer<u32>,
    vertex_capacity: usize,
    large_capacity: usize,
}

/// Worst-case large-bucket entries for a graph with `m` edges: every edge
/// mass split into `chunk`-sized ranges, plus one partial chunk per
/// possible hub (`m / large_min` vertices can reach the threshold).
fn large_capacity_for(m: usize, spec: &BucketSpec) -> usize {
    m / spec.chunk.max(1) as usize + m / spec.large_min.max(1) as usize + 1
}

impl BucketPool {
    /// Allocates buckets sized for a graph with `n` vertices and `m`
    /// edges under `spec`. Small/medium can hold every vertex; the large
    /// buffers hold the worst-case chunk count.
    pub fn new(q: &Queue, n: usize, m: usize, spec: &BucketSpec) -> SimResult<Self> {
        let vcap = n.max(1);
        let lcap = large_capacity_for(m, spec);
        Ok(BucketPool {
            small: q.malloc_device::<u32>(vcap)?,
            medium: q.malloc_device::<u32>(vcap)?,
            large_v: q.malloc_device::<u32>(lcap)?,
            large_c: q.malloc_device::<u32>(lcap)?,
            counts: q.malloc_device::<u32>(3)?,
            vertex_capacity: vcap,
            large_capacity: lcap,
        })
    }

    /// Whether this pool can serve a graph of `n` vertices / `m` edges
    /// under `spec` (pools are per-engine, but `Advance` double-checks
    /// before trusting a caller-provided pool).
    pub fn fits(&self, n: usize, m: usize, spec: &BucketSpec) -> bool {
        n.max(1) <= self.vertex_capacity && large_capacity_for(m, spec) <= self.large_capacity
    }

    /// Device bytes held by the pool.
    pub fn device_bytes(&self) -> u64 {
        self.small.bytes()
            + self.medium.bytes()
            + self.large_v.bytes()
            + self.large_c.bytes()
            + self.counts.bytes()
    }

    /// Reads the three bucket counters back to the host.
    pub fn read_counts(&self) -> BucketCounts {
        BucketCounts {
            small: self.counts.load(0),
            medium: self.counts.load(1),
            large: self.counts.load(2),
        }
    }
}

/// The binning kernel: one lane per compacted (non-zero) first-layer
/// word; each lane walks its word's set bits and appends every active
/// vertex to the bucket its out-degree selects, reserving large-bucket
/// slots one whole adjacency at a time (`⌈d / chunk⌉` entries).
///
/// Runs over the `nz` offsets the counted compaction just produced — the
/// same scheduling domain the advance itself uses, so an empty frontier
/// costs nothing extra.
pub fn bin_compacted<W: Word>(
    q: &Queue,
    words: &DeviceBuffer<W>,
    offsets: &DeviceBuffer<u32>,
    nz: usize,
    pool: &BucketPool,
    degree_of: DegreeOf<'_>,
    spec: &BucketSpec,
) -> BucketCounts {
    pool.counts.store(0, 0);
    pool.counts.store(1, 0);
    pool.counts.store(2, 0);
    if nz == 0 {
        return BucketCounts::default();
    }
    let spec = *spec;
    let counts = &pool.counts;
    let small = &pool.small;
    let medium = &pool.medium;
    let large_v = &pool.large_v;
    let large_c = &pool.large_c;
    q.parallel_for("advance_bucket_bin", nz, |lane, i| {
        let word_idx = lane.load(offsets, i);
        let mut w = lane.load(words, word_idx as usize);
        while !w.is_zero() {
            let b = w.trailing_zeros();
            w = w.and(W::one_bit(b).not());
            let v = word_idx * W::BITS + b;
            let d = degree_of(lane, v);
            lane.compute(2);
            if d == 0 {
                continue;
            }
            if d <= spec.small_max {
                let idx = lane.fetch_add(counts, 0, 1);
                lane.store(small, idx as usize, v);
            } else if d < spec.large_min {
                let idx = lane.fetch_add(counts, 1, 1);
                lane.store(medium, idx as usize, v);
            } else {
                let chunks = d.div_ceil(spec.chunk);
                let base = lane.fetch_add(counts, 2, chunks);
                for c in 0..chunks {
                    lane.store(large_v, (base + c) as usize, v);
                    lane.store(large_c, (base + c) as usize, c);
                }
            }
        }
    });
    pool.read_counts()
}

/// Binning over a sparse item list: one lane per list entry (entries are
/// duplicate-free vertex ids, so no bit-walk is needed). Shares the
/// bucket layout and append protocol with [`bin_compacted`] — the three
/// expansion kernels cannot tell which binning pass filled the pool.
pub fn bin_list(
    q: &Queue,
    items: &DeviceBuffer<u32>,
    len: usize,
    pool: &BucketPool,
    degree_of: DegreeOf<'_>,
    spec: &BucketSpec,
) -> BucketCounts {
    pool.counts.store(0, 0);
    pool.counts.store(1, 0);
    pool.counts.store(2, 0);
    if len == 0 {
        return BucketCounts::default();
    }
    let spec = *spec;
    let counts = &pool.counts;
    let small = &pool.small;
    let medium = &pool.medium;
    let large_v = &pool.large_v;
    let large_c = &pool.large_c;
    q.parallel_for("advance_bucket_bin", len, |lane, i| {
        let v = lane.load(items, i);
        let d = degree_of(lane, v);
        lane.compute(2);
        if d == 0 {
            return;
        }
        if d <= spec.small_max {
            let idx = lane.fetch_add(counts, 0, 1);
            lane.store(small, idx as usize, v);
        } else if d < spec.large_min {
            let idx = lane.fetch_add(counts, 1, 1);
            lane.store(medium, idx as usize, v);
        } else {
            let chunks = d.div_ceil(spec.chunk);
            let base = lane.fetch_add(counts, 2, chunks);
            for c in 0..chunks {
                lane.store(large_v, (base + c) as usize, v);
                lane.store(large_c, (base + c) as usize, c);
            }
        }
    });
    pool.read_counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::{BitmapLike, Frontier, TwoLayerFrontier};
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    const SPEC: BucketSpec = BucketSpec {
        small_max: 4,
        large_min: 16,
        chunk: 16,
    };

    /// Synthetic degrees: v → v (vertex id doubles as its degree).
    fn degree_is_id(lane: &mut ItemCtx<'_>, v: VertexId) -> u32 {
        lane.compute(1);
        v
    }

    #[test]
    fn bins_by_degree_with_chunked_large() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 256).unwrap();
        // degree 0 (dropped), 3 (small), 4 (small), 5 (medium),
        // 15 (medium), 16 (one chunk), 40 (3 chunks of 16)
        for v in [0, 3, 4, 5, 15, 16, 40] {
            f.insert_host(v);
        }
        let (nz, offsets) = f.compact(&q).unwrap();
        let pool = BucketPool::new(&q, 256, 4096, &SPEC).unwrap();
        let c = bin_compacted(&q, f.words(), offsets, nz, &pool, &degree_is_id, &SPEC);
        assert_eq!(
            c,
            BucketCounts {
                small: 2,
                medium: 2,
                large: 4
            }
        );

        let mut small = pool.small.to_vec()[..c.small as usize].to_vec();
        small.sort_unstable();
        assert_eq!(small, vec![3, 4]);
        let mut medium = pool.medium.to_vec()[..c.medium as usize].to_vec();
        medium.sort_unstable();
        assert_eq!(medium, vec![5, 15]);
        let mut large: Vec<(u32, u32)> = pool.large_v.to_vec()[..c.large as usize]
            .iter()
            .zip(&pool.large_c.to_vec()[..c.large as usize])
            .map(|(&v, &ci)| (v, ci))
            .collect();
        large.sort_unstable();
        assert_eq!(large, vec![(16, 0), (40, 0), (40, 1), (40, 2)]);
    }

    #[test]
    fn bin_list_matches_bin_compacted() {
        let q = queue();
        let f = TwoLayerFrontier::<u32>::new(&q, 256).unwrap();
        for v in [0, 3, 4, 5, 15, 16, 40] {
            f.insert_host(v);
        }
        let (nz, offsets) = f.compact(&q).unwrap();
        let pool = BucketPool::new(&q, 256, 4096, &SPEC).unwrap();
        let from_words = bin_compacted(&q, f.words(), offsets, nz, &pool, &degree_is_id, &SPEC);

        let items = q.malloc_device::<u32>(8).unwrap();
        for (i, v) in [0u32, 3, 4, 5, 15, 16, 40].iter().enumerate() {
            items.store(i, *v);
        }
        let pool_l = BucketPool::new(&q, 256, 4096, &SPEC).unwrap();
        let from_list = bin_list(&q, &items, 7, &pool_l, &degree_is_id, &SPEC);
        assert_eq!(from_words, from_list);

        let sorted = |b: &DeviceBuffer<u32>, c: u32| {
            let mut v = b.to_vec()[..c as usize].to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(
            sorted(&pool.small, from_words.small),
            sorted(&pool_l.small, from_list.small)
        );
        assert_eq!(
            sorted(&pool.medium, from_words.medium),
            sorted(&pool_l.medium, from_list.medium)
        );
        assert_eq!(
            sorted(&pool.large_v, from_words.large),
            sorted(&pool_l.large_v, from_list.large)
        );
    }

    #[test]
    fn empty_list_bins_nothing_without_launch() {
        let q = queue();
        let items = q.malloc_device::<u32>(1).unwrap();
        let pool = BucketPool::new(&q, 256, 1024, &SPEC).unwrap();
        let launched = q.profiler().kernel_count();
        let c = bin_list(&q, &items, 0, &pool, &degree_is_id, &SPEC);
        assert_eq!(c.total(), 0);
        assert_eq!(q.profiler().kernel_count(), launched);
    }

    #[test]
    fn empty_frontier_bins_nothing_without_launch() {
        let q = queue();
        let f = TwoLayerFrontier::<u64>::new(&q, 256).unwrap();
        let (nz, offsets) = f.compact(&q).unwrap();
        let pool = BucketPool::new(&q, 256, 1024, &SPEC).unwrap();
        let launched = q.profiler().kernel_count();
        let c = bin_compacted(&q, f.words(), offsets, nz, &pool, &degree_is_id, &SPEC);
        assert_eq!(c.total(), 0);
        assert_eq!(
            q.profiler().kernel_count(),
            launched,
            "nz == 0 must not launch the binning kernel"
        );
    }

    #[test]
    fn pool_capacity_bounds_worst_case_chunks() {
        let q = queue();
        let pool = BucketPool::new(&q, 100, 10_000, &SPEC).unwrap();
        assert!(pool.fits(100, 10_000, &SPEC));
        assert!(!pool.fits(101, 10_000, &SPEC));
        assert!(!pool.fits(100, 1_000_000, &SPEC));
        // A tighter spec (smaller chunks) needs more entries than the
        // pool reserved.
        let tight = BucketSpec { chunk: 1, ..SPEC };
        assert!(!pool.fits(100, 10_000, &tight));
    }
}
