//! Fundamental identifier and weight types, mirroring the paper's
//! `vertex_t`, `edge_t` and `weight_t`.

/// Vertex identifier. 32 bits covers every dataset in the paper
/// (largest: soc-twitter-2010 with 21.3 M vertices).
pub type VertexId = u32;

/// Edge identifier (index into the CSR column array).
pub type EdgeId = u32;

/// Edge weight.
pub type Weight = f32;

/// Sentinel "unreached" distance for integer-distance algorithms (BFS).
pub const INF_DIST: u32 = u32::MAX;

/// Sentinel "unreached" distance for weighted algorithms (SSSP).
pub const INF_WEIGHT: f32 = f32::INFINITY;
