//! # sygraph-core — the SYgraph framework core
//!
//! Rust reproduction of the SYgraph core layer (De Caro, Cordasco,
//! Cosenza — ICPP '25): graph representations, the Two-Layer Bitmap
//! frontier with its bitmap-tailored load balancing, the
//! `advance`/`filter`/`compute` primitives, frontier set operators and the
//! device inspector. Everything executes on the `sygraph-sim` substrate,
//! which plays the role SYCL plays in the paper.
//!
//! ```
//! use sygraph_core::prelude::*;
//! use sygraph_sim::{Device, DeviceProfile, Queue};
//!
//! let q = Queue::new(Device::new(DeviceProfile::v100s()));
//! let host = CsrHost::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! let g = Graph::new(&q, &host).unwrap();
//! let tuning = inspect(q.profile(), &OptConfig::all(), g.vertex_count());
//!
//! let input = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
//! let output = TwoLayerFrontier::<u32>::new(&q, 4).unwrap();
//! input.insert_host(0);
//! let (ev, _words) = Advance::new(&q, &g.csr, &input)
//!     .output(&output)
//!     .tuning(&tuning)
//!     .run(|_lane, _src, _dst, _e, _w| true);
//! ev.wait();
//! assert_eq!(output.to_sorted_vec(), vec![1, 2]);
//! ```

pub mod engine;
pub mod frontier;
pub mod graph;
pub mod inspector;
pub mod operators;
pub mod types;

pub use engine::{
    fixed_point, CheckpointState, EngineCheckpoint, HaloLink, MultiDeviceEngine, PullCandidates,
    RecoveryPolicy, SuperstepEngine, NO_COMPUTE,
};
pub use frontier::{
    swap, BitmapFrontier, BitmapLike, BoolmapFrontier, Frontier, HybridFrontier, RepKind,
    SparseFrontier, SparseView, TwoLayerFrontier, VectorFrontier, Word,
};
pub use graph::{
    validate_sources, CsrHost, DeviceCsr, DeviceGraphView, DevicePartition, Graph, GraphError,
    PartitionSpec, PartitionedGraph,
};
pub use inspector::{
    inspect, Balancing, DegreeProfile, Direction, OptConfig, Representation, Tuning,
};
pub use operators::advance::{Advance, PullScope};
pub use types::{EdgeId, VertexId, Weight, INF_DIST, INF_WEIGHT};

/// Convenience re-exports for examples and downstream crates.
pub mod prelude {
    pub use crate::engine::{
        fixed_point, CheckpointState, EngineCheckpoint, PullCandidates, RecoveryPolicy,
        SuperstepEngine, NO_COMPUTE,
    };
    pub use crate::frontier::ops::{
        intersection, rebuild_layer2, subtraction, symmetric_difference, union, SetOp,
    };
    pub use crate::frontier::{
        swap, BitmapFrontier, BitmapLike, BoolmapFrontier, Frontier, HybridFrontier, RepKind,
        SparseFrontier, SparseView, TwoLayerFrontier, VectorFrontier, Word,
    };
    pub use crate::graph::{CsrHost, DeviceCsr, DeviceGraphView, Graph};
    pub use crate::inspector::{
        inspect, Balancing, DegreeProfile, Direction, OptConfig, Representation, Tuning,
    };
    pub use crate::operators;
    pub use crate::operators::advance::{Advance, FusedCompute, PullScope};
    pub use crate::types::{EdgeId, VertexId, Weight, INF_DIST, INF_WEIGHT};
}
