//! # sygraph-baselines — comparator frameworks on the shared substrate
//!
//! The paper's evaluation compares SYgraph against Gunrock, Tigr and
//! SEP-Graph — CUDA frameworks distinguished by their *frontier
//! management strategies* (Table 1). This crate re-implements those
//! strategies on the same simulated device so the comparison isolates
//! exactly the variable the paper studies:
//!
//! | framework | frontier | pre-proc | post-proc |
//! |---|---|---|---|
//! | [`SygraphFramework`] | two-layer bitmap | no | no |
//! | [`GunrockLike`] | append vector | no | dedup filter pass |
//! | [`TigrLike`] | none (topology-driven over UDT) | UDT transform | level sweeps |
//! | [`SepGraphLike`] | vector ⇄ bitmap hybrid, push/pull | stats + CSC | bitmap round-trips |
//!
//! Every framework is validated against the host references in
//! `sygraph-algos`, so performance differences cannot hide behind wrong
//! answers.

pub mod gunrock;
pub mod harness;
pub mod sepgraph;
pub mod sygraph_fw;
pub mod tigr;
pub mod vecops;

pub use gunrock::GunrockLike;
pub use harness::{validate_against_reference, AlgoKind, AlgoValues, Framework, RunRecord};
pub use sepgraph::SepGraphLike;
pub use sygraph_fw::SygraphFramework;
pub use tigr::TigrLike;

use sygraph_core::inspector::OptConfig;

/// All four frameworks of the comparison figures, in legend order.
pub fn all_frameworks() -> Vec<Box<dyn Framework>> {
    vec![
        Box::new(SygraphFramework::new(OptConfig::all())),
        Box::new(GunrockLike::new()),
        Box::new(TigrLike::new()),
        Box::new(SepGraphLike::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_order() {
        let fws = all_frameworks();
        let names: Vec<&str> = fws.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["SYgraph", "Gunrock", "Tigr", "SEP-Graph"]);
    }
}
