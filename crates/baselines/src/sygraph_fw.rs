//! SYgraph itself, wrapped in the common [`Framework`] harness.
//! No preprocessing, no post-processing (Table 1).

use sygraph_core::graph::{CsrHost, DeviceCsr};
use sygraph_core::inspector::OptConfig;
use sygraph_core::types::VertexId;
use sygraph_sim::{Queue, SimResult};

use crate::harness::{AlgoKind, AlgoValues, Framework, RunRecord};

/// SYgraph under the harness.
pub struct SygraphFramework {
    opts: OptConfig,
    graph: Option<DeviceCsr>,
}

impl SygraphFramework {
    pub fn new(opts: OptConfig) -> Self {
        SygraphFramework { opts, graph: None }
    }

    fn graph(&self) -> &DeviceCsr {
        self.graph.as_ref().expect("prepare() not called")
    }
}

impl Default for SygraphFramework {
    fn default() -> Self {
        Self::new(OptConfig::all())
    }
}

impl Framework for SygraphFramework {
    fn name(&self) -> &'static str {
        "SYgraph"
    }

    fn prepare(&mut self, q: &Queue, host: &CsrHost) -> SimResult<()> {
        self.graph = Some(DeviceCsr::upload(q, host)?);
        Ok(())
    }

    fn prep_ms(&self) -> f64 {
        0.0
    }

    fn run(&mut self, q: &Queue, algo: AlgoKind, src: VertexId) -> SimResult<RunRecord> {
        let g = self.graph();
        Ok(match algo {
            AlgoKind::Bfs => {
                let r = sygraph_algos::bfs::run(q, g, src, &self.opts)?;
                RunRecord {
                    algo_ms: r.sim_ms,
                    iterations: r.iterations,
                    values: AlgoValues::U32(r.values),
                }
            }
            AlgoKind::Sssp => {
                let r = sygraph_algos::sssp::run(q, g, src, &self.opts)?;
                RunRecord {
                    algo_ms: r.sim_ms,
                    iterations: r.iterations,
                    values: AlgoValues::F32(r.values),
                }
            }
            AlgoKind::Cc => {
                let r = sygraph_algos::cc::run(q, g, &self.opts)?;
                RunRecord {
                    algo_ms: r.sim_ms,
                    iterations: r.iterations,
                    values: AlgoValues::U32(r.values),
                }
            }
            AlgoKind::Bc => {
                let r = sygraph_algos::bc::run(q, g, src, &self.opts)?;
                RunRecord {
                    algo_ms: r.sim_ms,
                    iterations: r.iterations,
                    values: AlgoValues::F32(r.values),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::validate_against_reference;
    use sygraph_sim::{Device, DeviceProfile};

    #[test]
    fn all_algorithms_validate() {
        let host = CsrHost::from_edges_weighted(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (4, 5),
                (5, 4),
            ],
            Some(&[1.0; 8]),
        );
        for algo in AlgoKind::all() {
            let q = Queue::new(Device::new(DeviceProfile::host_test()));
            let mut fw = SygraphFramework::default();
            fw.prepare(&q, &host).unwrap();
            let rec = fw.run(&q, algo, 0).unwrap();
            validate_against_reference(&host, algo, 0, &rec.values).unwrap();
            assert!(rec.algo_ms > 0.0);
        }
    }
}
