//! Shared kernels for vector-frontier frameworks (Gunrock-like and
//! SEP-Graph-like): cooperative advance over a vector frontier, degree
//! sizing scans, and vector↔bitmap conversions.

use sygraph_core::frontier::{BitmapFrontier, BitmapLike, Frontier, VectorFrontier};
use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::types::{EdgeId, VertexId, Weight};
use sygraph_sim::{full_mask, ItemCtx, LaunchConfig, Queue, SimResult};

/// Per-edge functor for the vector advance.
pub trait VecAdvanceFunctor:
    Fn(&mut ItemCtx<'_>, VertexId, VertexId, EdgeId, Weight) -> bool + Sync
{
}
impl<F> VecAdvanceFunctor for F where
    F: Fn(&mut ItemCtx<'_>, VertexId, VertexId, EdgeId, Weight) -> bool + Sync
{
}

/// Sum of out-degrees of the frontier — the sizing scan Gunrock runs
/// before each advance to allocate its output (§2.2, §4).
pub fn frontier_degree_sum(q: &Queue, g: &DeviceCsr, f: &VectorFrontier) -> SimResult<usize> {
    let len = f.len();
    if len == 0 {
        return Ok(0);
    }
    let acc = q.malloc_device::<u32>(1)?;
    let items = f.items();
    let offsets = &g.row_offsets;
    q.parallel_for("gq_degree_scan", len, |l, i| {
        let v = l.load(items, i) as usize;
        let lo = l.load(offsets, v);
        let hi = l.load(offsets, v + 1);
        l.fetch_add(&acc, 0, hi - lo);
        l.compute(2);
    });
    Ok(acc.load(0) as usize)
}

/// Cooperative advance over a vector frontier: each subgroup takes a
/// chunk of frontier items; for each item all lanes stride its neighbor
/// list together. Destinations accepted by `functor` are appended to
/// `fout` — duplicates and all; the caller must have sized `fout`.
pub fn advance_vector(
    q: &Queue,
    name: &'static str,
    g: &DeviceCsr,
    fin: &VectorFrontier,
    fout: Option<&VectorFrontier>,
    functor: impl VecAdvanceFunctor,
) {
    let len = fin.len();
    if len == 0 {
        return;
    }
    let sgw = q.profile().preferred_subgroup;
    let sgs_per_wg = 4u32;
    let items_per_group = (sgw * sgs_per_wg) as usize;
    let groups = len.div_ceil(items_per_group);
    let cfg = LaunchConfig::new(name, groups, sgw * sgs_per_wg, sgw);
    let items = fin.items();
    q.launch(cfg, |ctx| {
        let base = ctx.group_id * items_per_group;
        ctx.for_each_subgroup(|sg| {
            let w = sg.width();
            let start = base + (sg.sg_id() * w) as usize;
            for k in 0..w as usize {
                let idx = start + k;
                if idx >= len {
                    break;
                }
                let v = sg.load_uniform(items, idx);
                let (lo, hi) = g.row_bounds_uniform(sg, v);
                let mut e = lo;
                while e < hi {
                    let lanes = (hi - e).min(w);
                    let mask = full_mask(lanes);
                    sg.lanes(mask, |lane, item| {
                        let eid = e + lane;
                        let dst = g.edge_dest(item, eid);
                        let wt = g.edge_weight(item, eid);
                        item.compute(2);
                        if functor(item, v, dst, eid, wt) {
                            if let Some(out) = fout {
                                out.append_lane(item, dst);
                            }
                        }
                    });
                    e += lanes;
                }
            }
        });
    });
}

/// Converts a vector frontier (possibly with duplicates) into a bitmap —
/// SEP-Graph's dedup mechanism (§2.2: "converts the queue frontier to a
/// bitmap frontier").
pub fn vector_to_bitmap(q: &Queue, vec: &VectorFrontier, bm: &BitmapFrontier<u32>) {
    bm.clear(q);
    let len = vec.len();
    let items = vec.items();
    q.parallel_for("vec_to_bitmap", len, |l, i| {
        let v = l.load(items, i);
        bm.insert_lane(l, v);
    });
}

/// Extracts a bitmap's set bits into a compact vector ("and then copies
/// the values back"). The vector must have capacity for the population.
pub fn bitmap_to_vector(q: &Queue, bm: &BitmapFrontier<u32>, vec: &VectorFrontier) {
    vec.clear(q);
    let words = bm.words();
    q.parallel_for("bitmap_to_vec", bm.num_words(), |l, wi| {
        let mut w = l.load(words, wi);
        while w != 0 {
            let b = w.trailing_zeros();
            vec.append_lane(l, wi as u32 * 32 + b);
            w &= w - 1;
            l.compute(2);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn degree_sum_counts_frontier_out_edges() {
        let q = queue();
        let host = CsrHost::from_edges(4, &[(0, 1), (0, 2), (0, 3), (2, 0)]);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let f = VectorFrontier::with_capacity(&q, 4, 8).unwrap();
        f.insert_host(0);
        f.insert_host(2);
        assert_eq!(frontier_degree_sum(&q, &g, &f).unwrap(), 4);
    }

    #[test]
    fn advance_appends_duplicates() {
        let q = queue();
        // both 0 and 1 point at 2 -> duplicate appears in output
        let host = CsrHost::from_edges(3, &[(0, 2), (1, 2)]);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let fin = VectorFrontier::with_capacity(&q, 3, 4).unwrap();
        let fout = VectorFrontier::with_capacity(&q, 3, 4).unwrap();
        fin.insert_host(0);
        fin.insert_host(1);
        advance_vector(&q, "adv", &g, &fin, Some(&fout), |_l, _u, _v, _e, _w| true);
        assert_eq!(fout.len(), 2, "duplicates kept");
        assert_eq!(fout.to_sorted_vec(), vec![2]);
    }

    #[test]
    fn bitmap_roundtrip_dedups() {
        let q = queue();
        let vec = VectorFrontier::with_capacity(&q, 100, 16).unwrap();
        for v in [5u32, 5, 7, 70, 7, 5] {
            vec.insert_host(v);
        }
        let bm = BitmapFrontier::<u32>::new(&q, 100).unwrap();
        vector_to_bitmap(&q, &vec, &bm);
        let out = VectorFrontier::with_capacity(&q, 100, 16).unwrap();
        bitmap_to_vector(&q, &bm, &out);
        assert_eq!(out.len(), 3);
        assert_eq!(out.to_sorted_vec(), vec![5, 7, 70]);
    }

    #[test]
    fn high_degree_vertex_is_cooperatively_expanded() {
        let q = queue();
        let edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let host = CsrHost::from_edges(100, &edges);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let fin = VectorFrontier::with_capacity(&q, 100, 4).unwrap();
        let fout = VectorFrontier::with_capacity(&q, 100, 128).unwrap();
        fin.insert_host(0);
        advance_vector(&q, "adv", &g, &fin, Some(&fout), |_l, _u, v, _e, _w| {
            v % 2 == 1
        });
        assert_eq!(fout.len(), 50);
    }
}
