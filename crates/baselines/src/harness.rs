//! The common framework harness: every comparator (and SYgraph itself)
//! implements [`Framework`], so the figure/table generators can run the
//! same (algorithm, dataset, source) grid over all of them and compare
//! both results (correctness) and modelled cost (performance).

use serde::{Deserialize, Serialize};
use sygraph_core::graph::CsrHost;
use sygraph_core::types::VertexId;
use sygraph_sim::{Queue, SimResult};

/// The four evaluated algorithms (Figure 8 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgoKind {
    Bc,
    Bfs,
    Cc,
    Sssp,
}

impl AlgoKind {
    pub fn all() -> [AlgoKind; 4] {
        [AlgoKind::Bc, AlgoKind::Bfs, AlgoKind::Cc, AlgoKind::Sssp]
    }

    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::Bc => "BC",
            AlgoKind::Bfs => "BFS",
            AlgoKind::Cc => "CC",
            AlgoKind::Sssp => "SSSP",
        }
    }

    /// CC runs on the symmetrized graph and ignores the source.
    pub fn needs_undirected(&self) -> bool {
        matches!(self, AlgoKind::Cc)
    }
}

/// Per-vertex output of an algorithm run, for cross-framework validation.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoValues {
    U32(Vec<u32>),
    F32(Vec<f32>),
}

impl AlgoValues {
    /// Approximate equality (exact for u32; relative tolerance for f32,
    /// since atomic float accumulation orders differ across frameworks).
    pub fn approx_eq(&self, other: &AlgoValues, tol: f32) -> bool {
        match (self, other) {
            (AlgoValues::U32(a), AlgoValues::U32(b)) => a == b,
            (AlgoValues::F32(a), AlgoValues::F32(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| {
                        (x.is_infinite() && y.is_infinite())
                            || (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs()))
                    })
            }
            _ => false,
        }
    }
}

/// One algorithm execution's outcome.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Modelled device time of the algorithm proper (ms) — the paper's
    /// "WOP" quantity.
    pub algo_ms: f64,
    /// Supersteps executed.
    pub iterations: u32,
    /// Per-vertex results for validation.
    pub values: AlgoValues,
}

/// A graph framework under evaluation.
pub trait Framework {
    /// Display name as used in the figures.
    fn name(&self) -> &'static str;

    /// Uploads `host` and performs any one-time preprocessing
    /// (Tigr's UDT, SEP-Graph's statistics/CSC). Must be called before
    /// [`Framework::run`].
    fn prepare(&mut self, q: &Queue, host: &CsrHost) -> SimResult<()>;

    /// One-time preprocessing cost in ms (0 for SYgraph and Gunrock,
    /// per Table 1). The paper's "WPP" adds this to `algo_ms`.
    fn prep_ms(&self) -> f64;

    /// Runs `algo` from `src` (ignored by CC).
    fn run(&mut self, q: &Queue, algo: AlgoKind, src: VertexId) -> SimResult<RunRecord>;
}

/// Validates a framework's output against the host references.
pub fn validate_against_reference(
    host: &CsrHost,
    algo: AlgoKind,
    src: VertexId,
    got: &AlgoValues,
) -> Result<(), String> {
    use sygraph_algos::reference;
    match (algo, got) {
        (AlgoKind::Bfs, AlgoValues::U32(d)) => {
            let want = reference::bfs(host, src);
            (d == &want)
                .then_some(())
                .ok_or_else(|| "BFS distances mismatch".into())
        }
        (AlgoKind::Cc, AlgoValues::U32(l)) => {
            let want = reference::connected_components(host);
            (l == &want)
                .then_some(())
                .ok_or_else(|| "CC labels mismatch".into())
        }
        (AlgoKind::Sssp, AlgoValues::F32(d)) => {
            let want = reference::dijkstra(host, src);
            for (v, (a, b)) in d.iter().zip(want.iter()).enumerate() {
                let ok = (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3;
                if !ok {
                    return Err(format!("SSSP mismatch at {v}: {a} vs {b}"));
                }
            }
            Ok(())
        }
        (AlgoKind::Bc, AlgoValues::F32(d)) => {
            let want = reference::betweenness_from(host, src);
            for (v, (a, b)) in d.iter().zip(want.iter()).enumerate() {
                if (a - b).abs() > 1e-2 * (1.0 + b.abs()) {
                    return Err(format!("BC mismatch at {v}: {a} vs {b}"));
                }
            }
            Ok(())
        }
        _ => Err("value type does not match algorithm".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_kind_metadata() {
        assert_eq!(AlgoKind::all().len(), 4);
        assert!(AlgoKind::Cc.needs_undirected());
        assert!(!AlgoKind::Bfs.needs_undirected());
        assert_eq!(AlgoKind::Sssp.name(), "SSSP");
    }

    #[test]
    fn approx_eq_handles_infinities_and_tolerance() {
        let a = AlgoValues::F32(vec![1.0, f32::INFINITY]);
        let b = AlgoValues::F32(vec![1.0000001, f32::INFINITY]);
        assert!(a.approx_eq(&b, 1e-4));
        let c = AlgoValues::F32(vec![2.0, f32::INFINITY]);
        assert!(!a.approx_eq(&c, 1e-4));
        assert!(!a.approx_eq(&AlgoValues::U32(vec![1]), 1e-4));
    }
}
