//! SEP-Graph-like framework: hybrid push/pull execution with per-iteration
//! mode selection, using vector frontiers deduplicated through
//! vector→bitmap→vector conversions (§2.2: "SEP-graph switches between
//! vector and bitmap layouts to remove duplicate nodes").
//!
//! Modelled costs match the paper's observations:
//! * a preprocessing pass builds degree statistics and the CSC needed for
//!   pull mode (shorter than Tigr's transform, §5.2);
//! * every iteration pays a mode-selection pass ("this adaptability ...
//!   introduces a runtime overhead sometimes surpassing the algorithm's
//!   computational cost");
//! * the initial allocation burst (graph + CSC + frontiers) is the
//!   early memory spike of Figure 9, and pull mode's full-vertex scans
//!   are the mid-run spike on roadNet-CA;
//! * like Gunrock, BC snapshots one full-capacity frontier per level —
//!   OOM on road-USA (Table 6).
//!
//! CC: the paper "couldn't find any implementation compatible with
//! SEP-Graph"; `run(Cc, ..)` returns [`SimError::Unsupported`].

use sygraph_core::frontier::{BitmapFrontier, BitmapLike, Frontier, VectorFrontier};
use sygraph_core::graph::{CsrHost, DeviceCsr, DeviceGraphView};
use sygraph_core::types::{VertexId, INF_DIST, INF_WEIGHT};
use sygraph_sim::{Queue, SimError, SimResult};

use crate::harness::{AlgoKind, AlgoValues, Framework, RunRecord};
use crate::vecops::{advance_vector, bitmap_to_vector, frontier_degree_sum, vector_to_bitmap};

/// SEP-Graph-like comparator.
#[derive(Default)]
pub struct SepGraphLike {
    csr: Option<DeviceCsr>,
    csc: Option<DeviceCsr>,
    prep_ms: f64,
    /// Push→pull switch threshold: pull when `frontier > n / threshold`.
    pub pull_threshold: usize,
}

impl SepGraphLike {
    pub fn new() -> Self {
        SepGraphLike {
            pull_threshold: 16,
            ..Default::default()
        }
    }

    fn csr(&self) -> &DeviceCsr {
        self.csr.as_ref().expect("prepare() not called")
    }

    fn csc(&self) -> &DeviceCsr {
        self.csc.as_ref().expect("prepare() not called")
    }

    /// The per-iteration mode-selection pass: inspects frontier degrees
    /// to choose push vs pull. Its kernel cost is the adaptive runtime
    /// overhead the paper describes.
    fn select_mode(&self, q: &Queue, fin: &VectorFrontier, n: usize) -> SimResult<bool> {
        let _deg = frontier_degree_sum(q, self.csr(), fin)?;
        Ok(fin.len() > n / self.pull_threshold.max(1))
    }
}

impl Framework for SepGraphLike {
    fn name(&self) -> &'static str {
        "SEP-Graph"
    }

    fn prepare(&mut self, q: &Queue, host: &CsrHost) -> SimResult<()> {
        let t0 = q.now_ns();
        self.csr = Some(DeviceCsr::upload(q, host)?);
        // Pull mode needs the reverse graph.
        let csc_host = host.transpose()?;
        self.csc = Some(DeviceCsr::upload(q, &csc_host)?);
        // Degree-statistics and edge-partitioning passes used by the path
        // selector — device kernels, so SEP's preprocessing stays well
        // below Tigr's host-side transform (§5.2).
        let g = self.csr.as_ref().unwrap();
        let stats = q.malloc_device::<u32>(4)?;
        let offsets = &g.row_offsets;
        q.parallel_for("sep_stats", host.vertex_count(), |l, v| {
            let lo = l.load(offsets, v);
            let hi = l.load(offsets, v + 1);
            l.fetch_max(&stats, 0, hi - lo);
            l.fetch_add(&stats, 1, hi - lo);
            l.compute(2);
        });
        let cols = &g.col_indices;
        q.parallel_for("sep_partition", host.edge_count(), |l, e| {
            let _dst = l.load(cols, e);
            l.compute(3); // bucket classification
        });
        self.prep_ms = (q.now_ns() - t0) / 1e6;
        Ok(())
    }

    fn prep_ms(&self) -> f64 {
        self.prep_ms
    }

    fn run(&mut self, q: &Queue, algo: AlgoKind, src: VertexId) -> SimResult<RunRecord> {
        match algo {
            AlgoKind::Bfs => self.bfs(q, src),
            AlgoKind::Sssp => self.sssp(q, src),
            AlgoKind::Cc => Err(SimError::Unsupported(
                "no CC implementation compatible with SEP-Graph".into(),
            )),
            AlgoKind::Bc => self.bc(q, src),
        }
    }
}

/// Scratch shared by the SEP supersteps.
struct SepScratch {
    fin: VectorFrontier,
    raw: VectorFrontier,
    bitmap: BitmapFrontier<u32>,
}

impl SepScratch {
    fn new(q: &Queue, n: usize) -> SimResult<Self> {
        Ok(SepScratch {
            fin: VectorFrontier::with_capacity(q, n, n.max(16))?,
            raw: VectorFrontier::with_capacity(q, n, 16)?,
            bitmap: BitmapFrontier::<u32>::new(q, n)?,
        })
    }

    /// Push superstep: advance into `raw` (duplicates), then dedup via a
    /// bitmap round-trip back into `fin`.
    fn push_superstep(
        &mut self,
        q: &Queue,
        g: &DeviceCsr,
        functor: impl crate::vecops::VecAdvanceFunctor,
    ) -> SimResult<usize> {
        let deg = frontier_degree_sum(q, g, &self.fin)?;
        self.raw.ensure_capacity(q, deg.max(1))?;
        self.raw.clear(q);
        advance_vector(q, "sep_push", g, &self.fin, Some(&self.raw), functor);
        vector_to_bitmap(q, &self.raw, &self.bitmap);
        self.fin.ensure_capacity(q, self.raw.len().max(1))?;
        bitmap_to_vector(q, &self.bitmap, &self.fin);
        Ok(self.fin.len())
    }
}

impl SepGraphLike {
    fn bfs(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let n = self.csr().vertex_count();
        let t0 = q.now_ns();
        let dist = q.malloc_device::<u32>(n)?;
        q.fill(&dist, INF_DIST);
        dist.store(src as usize, 0);
        let mut s = SepScratch::new(q, n)?;
        s.fin.insert_host(src);
        let mut iter = 0u32;
        loop {
            q.mark(format!("sep_bfs_iter{iter}"));
            let pull = self.select_mode(q, &s.fin, n)?;
            let next = iter + 1;
            let len = if pull {
                // Pull: scan in-edges of unvisited vertices against the
                // current frontier bitmap.
                vector_to_bitmap(q, &s.fin, &s.bitmap);
                let csc = self.csc();
                let words = s.bitmap.words();
                s.raw.ensure_capacity(q, n)?;
                s.raw.clear(q);
                let raw = &s.raw;
                q.parallel_for("sep_pull", n, |l, v| {
                    if l.load(&dist, v) != INF_DIST {
                        return;
                    }
                    let (lo, hi) = csc.row_bounds(l, v as u32);
                    for e in lo..hi {
                        let u = csc.edge_dest(l, e);
                        let wi = (u / 32) as usize;
                        if l.load(words, wi) & (1 << (u % 32)) != 0 {
                            l.store(&dist, v, next);
                            raw.append_lane(l, v as u32);
                            break;
                        }
                    }
                });
                std::mem::swap(&mut s.fin, &mut s.raw);
                s.fin.len()
            } else {
                let len = s.push_superstep(q, self.csr(), |l, _u, v, _e, _w| {
                    l.load(&dist, v as usize) == INF_DIST
                })?;
                let items = s.fin.items();
                q.parallel_for("sep_stamp", len, |l, i| {
                    let v = l.load(items, i) as usize;
                    l.store(&dist, v, next);
                });
                len
            };
            iter += 1;
            if len == 0 {
                break;
            }
            if iter as usize > n + 1 {
                return Err(SimError::Algorithm("sep bfs diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::U32(dist.to_vec()),
        })
    }

    fn sssp(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let n = self.csr().vertex_count();
        let t0 = q.now_ns();
        let dist = q.malloc_device::<f32>(n)?;
        q.fill(&dist, INF_WEIGHT);
        dist.store(src as usize, 0.0);
        let mut s = SepScratch::new(q, n)?;
        s.fin.insert_host(src);
        let mut iter = 0u32;
        loop {
            q.mark(format!("sep_sssp_iter{iter}"));
            let pull = self.select_mode(q, &s.fin, n)?;
            let len = if pull {
                // Pull relaxation: every vertex recomputes its best
                // in-distance; improved vertices form the next frontier.
                let csc = self.csc();
                s.raw.ensure_capacity(q, n)?;
                s.raw.clear(q);
                let raw = &s.raw;
                q.parallel_for("sep_pull_sssp", n, |l, v| {
                    let (lo, hi) = csc.row_bounds(l, v as u32);
                    let mut best = f32::INFINITY;
                    for e in lo..hi {
                        let u = csc.edge_dest(l, e);
                        let w = csc.edge_weight(l, e);
                        let du = l.load(&dist, u as usize);
                        if du + w < best {
                            best = du + w;
                        }
                        l.compute(2);
                    }
                    if best < l.load(&dist, v) {
                        l.store(&dist, v, best);
                        raw.append_lane(l, v as u32);
                    }
                });
                std::mem::swap(&mut s.fin, &mut s.raw);
                s.fin.len()
            } else {
                s.push_superstep(q, self.csr(), |l, u, v, _e, w| {
                    let du = l.load(&dist, u as usize);
                    let nd = du + w;
                    let old = l.fetch_min_f32(&dist, v as usize, nd);
                    nd < old
                })?
            };
            iter += 1;
            if len == 0 {
                break;
            }
            if iter as usize > 4 * n + 16 {
                return Err(SimError::Algorithm("sep sssp diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::F32(dist.to_vec()),
        })
    }

    fn bc(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let g = self.csr();
        let n = g.vertex_count();
        let t0 = q.now_ns();
        let depth = q.malloc_device::<u32>(n)?;
        let sigma = q.malloc_device::<f32>(n)?;
        let delta = q.malloc_device::<f32>(n)?;
        q.fill(&depth, INF_DIST);
        q.fill(&sigma, 0.0);
        q.fill(&delta, 0.0);
        depth.store(src as usize, 0);
        sigma.store(src as usize, 1.0);
        let mut s = SepScratch::new(q, n)?;
        s.fin.insert_host(src);
        let mut levels: Vec<VectorFrontier> = Vec::new();
        let mut d = 0u32;
        loop {
            q.mark(format!("sep_bc_fwd{d}"));
            // level snapshot at the usual ×2 slack capacity, never shrunk
            // (the road-graph OOM source, as in Gunrock)
            let snap = VectorFrontier::with_capacity(q, n, (2 * n).max(16))?;
            let items = s.fin.items();
            let len = s.fin.len();
            q.parallel_for("sep_bc_snapshot", len, |l, i| {
                let v = l.load(items, i);
                snap.append_lane(l, v);
            });
            levels.push(snap);
            let next_d = d + 1;
            let len = s.push_superstep(q, g, |l, u, v, _e, _w| {
                let old = l.fetch_min(&depth, v as usize, next_d);
                if old >= next_d {
                    let su = l.load(&sigma, u as usize);
                    l.fetch_add_f32(&sigma, v as usize, su);
                    old == INF_DIST
                } else {
                    false
                }
            })?;
            if len == 0 {
                break;
            }
            d += 1;
            if d as usize > n + 1 {
                return Err(SimError::Algorithm("sep bc diverged".into()));
            }
        }
        for (level, frontier) in levels.iter().enumerate().rev().skip(1) {
            q.mark(format!("sep_bc_bwd{level}"));
            let next_depth = level as u32 + 1;
            advance_vector(q, "sep_bc_back", g, frontier, None, |l, u, v, _e, _w| {
                if l.load(&depth, v as usize) == next_depth {
                    let su = l.load(&sigma, u as usize);
                    let sv = l.load(&sigma, v as usize);
                    let dv = l.load(&delta, v as usize);
                    l.fetch_add_f32(&delta, u as usize, su / sv * (1.0 + dv));
                }
                false
            });
        }
        delta.store(src as usize, 0.0);
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: d,
            values: AlgoValues::F32(delta.to_vec()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::validate_against_reference;
    use sygraph_sim::{Device, DeviceProfile};

    fn check(host: &CsrHost, src: u32, algos: &[AlgoKind]) {
        for &algo in algos {
            let q = Queue::new(Device::new(DeviceProfile::host_test()));
            let mut fw = SepGraphLike::new();
            fw.prepare(&q, host).unwrap();
            let rec = fw.run(&q, algo, src).unwrap();
            validate_against_reference(host, algo, src, &rec.values)
                .unwrap_or_else(|e| panic!("SEP {}: {e}", algo.name()));
            assert!(fw.prep_ms() > 0.0, "SEP has preprocessing");
        }
    }

    #[test]
    fn correct_on_small_graph() {
        let host = CsrHost::from_edges_weighted(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (4, 5),
                (5, 4),
            ],
            Some(&[1.0, 1.0, 2.0, 2.0, 1.5, 1.5, 1.0, 1.0]),
        );
        check(&host, 0, &[AlgoKind::Bfs, AlgoKind::Sssp, AlgoKind::Bc]);
    }

    #[test]
    fn pull_mode_engages_on_dense_graph() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        let n = 120u32;
        let edges: Vec<(u32, u32)> = (0..3000)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        // dense: the frontier quickly exceeds n/16 so pull runs
        check(&host, 0, &[AlgoKind::Bfs, AlgoKind::Sssp]);
    }

    #[test]
    fn cc_is_unsupported() {
        let host = CsrHost::from_edges(3, &[(0, 1), (1, 0)]);
        let q = Queue::new(Device::new(DeviceProfile::host_test()));
        let mut fw = SepGraphLike::new();
        fw.prepare(&q, &host).unwrap();
        match fw.run(&q, AlgoKind::Cc, 0) {
            Err(SimError::Unsupported(_)) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn bc_correct_on_random_graph() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(8);
        let n = 90u32;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for _ in 0..400 {
            let (u, v) = (rng.random_range(0..n), rng.random_range(0..n));
            edges.push((u, v));
        }
        let host = CsrHost::from_edges(n as usize, &edges);
        check(&host, 1, &[AlgoKind::Bc]);
    }
}
