//! Tigr-like framework: a Uniform-Degree Tree (UDT) preprocessing step
//! splits every high-degree vertex into virtual nodes of degree ≤ K, then
//! algorithms run *topology-driven* over the virtual node array with
//! per-vertex active flags — no frontier data structure at all (§2.2).
//!
//! Modelled costs match the paper's observations:
//! * preprocessing is a host-side graph transformation, charged at a
//!   CPU-speed analytic cost (the `>99×` WPP entries of Table 6);
//! * the virtual adjacency is *padded* to K slots per virtual node (the
//!   GPU-friendly layout), which is why Tigr uses 14 GB where SYgraph
//!   uses 280 MB on roadNet-CA (Figure 9);
//! * every iteration sweeps all virtual nodes, so huge-diameter road
//!   graphs pay diameter × |V| work — Tigr's weak spot — while
//!   low-diameter scale-free graphs are efficiently load-balanced.

use sygraph_core::frontier::{BoolmapFrontier, Frontier};
use sygraph_core::graph::CsrHost;
use sygraph_core::types::{VertexId, INF_DIST, INF_WEIGHT};
use sygraph_sim::{DeviceBuffer, Queue, SimError, SimResult};

use crate::harness::{AlgoKind, AlgoValues, Framework, RunRecord};

/// Maximum virtual-node degree after the UDT split.
pub const UDT_K: usize = 64;

/// Modelled host-side transform cost: passes over edges and vertices at
/// CPU memory speed.
const PREP_NS_PER_EDGE: f64 = 25.0;
const PREP_NS_PER_VERTEX: f64 = 10.0;

/// The uploaded UDT representation.
struct UdtGraph {
    n: usize,
    vnum: usize,
    /// Owner (real vertex) of each virtual node.
    vowner: DeviceBuffer<u32>,
    /// Valid neighbor count of each virtual node (≤ K).
    vdeg: DeviceBuffer<u32>,
    /// Padded adjacency: `vnum × K` slots.
    vadj: DeviceBuffer<u32>,
    /// Padded weights, present iff the input was weighted.
    vweights: Option<DeviceBuffer<f32>>,
}

/// Tigr-like comparator.
#[derive(Default)]
pub struct TigrLike {
    udt: Option<UdtGraph>,
    prep_ms: f64,
}

impl TigrLike {
    pub fn new() -> Self {
        Self::default()
    }

    fn udt(&self) -> &UdtGraph {
        self.udt.as_ref().expect("prepare() not called")
    }
}

impl Framework for TigrLike {
    fn name(&self) -> &'static str {
        "Tigr"
    }

    fn prepare(&mut self, q: &Queue, host: &CsrHost) -> SimResult<()> {
        let n = host.vertex_count();
        let m = host.edge_count();
        // Host-side UDT split.
        let mut vowner = Vec::new();
        let mut vdeg = Vec::new();
        let mut vadj: Vec<u32> = Vec::new();
        let mut vweights: Option<Vec<f32>> = host.weights.as_ref().map(|_| Vec::new());
        for v in 0..n as u32 {
            let nbrs = host.neighbors(v);
            let ws = host.neighbor_weights(v);
            let chunks = nbrs.len().div_ceil(UDT_K).max(1);
            for c in 0..chunks {
                let lo = c * UDT_K;
                let hi = (lo + UDT_K).min(nbrs.len());
                vowner.push(v);
                vdeg.push((hi - lo) as u32);
                let mut slot = [0u32; UDT_K];
                slot[..hi - lo].copy_from_slice(&nbrs[lo..hi]);
                vadj.extend_from_slice(&slot);
                if let (Some(out), Some(ws)) = (vweights.as_mut(), ws) {
                    let mut wslot = [0f32; UDT_K];
                    wslot[..hi - lo].copy_from_slice(&ws[lo..hi]);
                    out.extend_from_slice(&wslot);
                }
            }
        }
        let vnum = vowner.len();
        let d_owner = q.malloc_device::<u32>(vnum)?;
        d_owner.copy_from_slice(&vowner);
        let d_deg = q.malloc_device::<u32>(vnum)?;
        d_deg.copy_from_slice(&vdeg);
        let d_adj = q.malloc_device::<u32>(vnum * UDT_K)?;
        d_adj.copy_from_slice(&vadj);
        let d_w = match vweights {
            Some(ws) => {
                let b = q.malloc_device::<f32>(vnum * UDT_K)?;
                b.copy_from_slice(&ws);
                Some(b)
            }
            None => None,
        };
        self.udt = Some(UdtGraph {
            n,
            vnum,
            vowner: d_owner,
            vdeg: d_deg,
            vadj: d_adj,
            vweights: d_w,
        });
        // Analytic host transform cost (three passes over the edges, one
        // over the vertices, at CPU memory speed).
        self.prep_ms = (m as f64 * PREP_NS_PER_EDGE + n as f64 * PREP_NS_PER_VERTEX) / 1e6;
        Ok(())
    }

    fn prep_ms(&self) -> f64 {
        self.prep_ms
    }

    fn run(&mut self, q: &Queue, algo: AlgoKind, src: VertexId) -> SimResult<RunRecord> {
        match algo {
            AlgoKind::Bfs => self.bfs(q, src),
            AlgoKind::Sssp => self.sssp(q, src),
            AlgoKind::Cc => self.cc(q),
            AlgoKind::Bc => self.bc(q, src),
        }
    }
}

impl TigrLike {
    /// Topology-driven superstep: sweep *all* virtual nodes; process the
    /// neighbors of those whose owner is active.
    fn sweep(
        &self,
        q: &Queue,
        name: &'static str,
        fin: &BoolmapFrontier,
        body: impl Fn(&mut sygraph_sim::ItemCtx<'_>, u32, u32, f32) + Sync,
    ) {
        let udt = self.udt();
        let vowner = &udt.vowner;
        let vdeg = &udt.vdeg;
        let vadj = &udt.vadj;
        let vweights = udt.vweights.as_ref();
        q.parallel_for(name, udt.vnum, |l, i| {
            let owner = l.load(vowner, i);
            if !fin.test_lane(l, owner) {
                return;
            }
            let deg = l.load(vdeg, i) as usize;
            for k in 0..deg {
                let nbr = l.load(vadj, i * UDT_K + k);
                let w = match vweights {
                    Some(ws) => l.load(ws, i * UDT_K + k),
                    None => 1.0,
                };
                body(l, owner, nbr, w);
                l.compute(2);
            }
        });
    }

    fn bfs(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let udt = self.udt();
        let n = udt.n;
        let t0 = q.now_ns();
        let dist = q.malloc_device::<u32>(n)?;
        q.fill(&dist, INF_DIST);
        dist.store(src as usize, 0);
        let mut fin = BoolmapFrontier::new(q, n)?;
        let mut fout = BoolmapFrontier::new(q, n)?;
        fin.insert_host(src);
        let mut iter = 0u32;
        loop {
            q.mark(format!("tigr_bfs_iter{iter}"));
            let next = iter + 1;
            self.sweep(q, "tigr_bfs", &fin, |l, _u, v, _w| {
                if l.load(&dist, v as usize) == INF_DIST {
                    // benign race: all writers store the same level
                    l.store(&dist, v as usize, next);
                    fout.insert_lane(l, v);
                }
            });
            std::mem::swap(&mut fin, &mut fout);
            fout.clear(q);
            iter += 1;
            if fin.is_empty(q) {
                break;
            }
            if iter as usize > n + 1 {
                return Err(SimError::Algorithm("tigr bfs diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::U32(dist.to_vec()),
        })
    }

    fn sssp(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let udt = self.udt();
        let n = udt.n;
        let t0 = q.now_ns();
        let dist = q.malloc_device::<f32>(n)?;
        q.fill(&dist, INF_WEIGHT);
        dist.store(src as usize, 0.0);
        let mut fin = BoolmapFrontier::new(q, n)?;
        let mut fout = BoolmapFrontier::new(q, n)?;
        fin.insert_host(src);
        let mut iter = 0u32;
        loop {
            q.mark(format!("tigr_sssp_iter{iter}"));
            self.sweep(q, "tigr_sssp", &fin, |l, u, v, w| {
                let du = l.load(&dist, u as usize);
                let nd = du + w;
                let old = l.fetch_min_f32(&dist, v as usize, nd);
                if nd < old {
                    fout.insert_lane(l, v);
                }
            });
            std::mem::swap(&mut fin, &mut fout);
            fout.clear(q);
            iter += 1;
            if fin.is_empty(q) {
                break;
            }
            if iter as usize > 4 * n + 16 {
                return Err(SimError::Algorithm("tigr sssp diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::F32(dist.to_vec()),
        })
    }

    fn cc(&self, q: &Queue) -> SimResult<RunRecord> {
        let udt = self.udt();
        let n = udt.n;
        let t0 = q.now_ns();
        let labels = q.malloc_device::<u32>(n)?;
        q.parallel_for("tigr_cc_init", n, |l, v| l.store(&labels, v, v as u32));
        let mut fin = BoolmapFrontier::new(q, n)?;
        let mut fout = BoolmapFrontier::new(q, n)?;
        fin.fill_all(q);
        let mut iter = 0u32;
        loop {
            q.mark(format!("tigr_cc_iter{iter}"));
            self.sweep(q, "tigr_cc", &fin, |l, u, v, _w| {
                let lu = l.load(&labels, u as usize);
                let old = l.fetch_min(&labels, v as usize, lu);
                if lu < old {
                    fout.insert_lane(l, v);
                }
            });
            std::mem::swap(&mut fin, &mut fout);
            fout.clear(q);
            iter += 1;
            if fin.is_empty(q) {
                break;
            }
            if iter as usize > n + 1 {
                return Err(SimError::Algorithm("tigr cc diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::U32(labels.to_vec()),
        })
    }

    fn bc(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let udt = self.udt();
        let n = udt.n;
        let t0 = q.now_ns();
        let depth = q.malloc_device::<u32>(n)?;
        let sigma = q.malloc_device::<f32>(n)?;
        let delta = q.malloc_device::<f32>(n)?;
        q.fill(&depth, INF_DIST);
        q.fill(&sigma, 0.0);
        q.fill(&delta, 0.0);
        depth.store(src as usize, 0);
        sigma.store(src as usize, 1.0);
        let mut fin = BoolmapFrontier::new(q, n)?;
        let mut fout = BoolmapFrontier::new(q, n)?;
        fin.insert_host(src);
        let mut d = 0u32;
        // forward
        loop {
            q.mark(format!("tigr_bc_fwd{d}"));
            let next = d + 1;
            self.sweep(q, "tigr_bc_fwd", &fin, |l, u, v, _w| {
                let old = l.fetch_min(&depth, v as usize, next);
                if old >= next {
                    let su = l.load(&sigma, u as usize);
                    l.fetch_add_f32(&sigma, v as usize, su);
                    if old == INF_DIST {
                        fout.insert_lane(l, v);
                    }
                }
            });
            std::mem::swap(&mut fin, &mut fout);
            fout.clear(q);
            if fin.is_empty(q) {
                break;
            }
            d += 1;
            if d as usize > n + 1 {
                return Err(SimError::Algorithm("tigr bc diverged".into()));
            }
        }
        // backward: one full virtual-node sweep per level (depth array
        // selects the level — no stored frontiers, but diameter sweeps).
        let levels = d; // deepest level with vertices
        let active = BoolmapFrontier::new(q, n)?;
        active.fill_all(q);
        for level in (0..levels).rev() {
            q.mark(format!("tigr_bc_bwd{level}"));
            let next_depth = level + 1;
            self.sweep(q, "tigr_bc_bwd", &active, |l, u, v, _w| {
                if l.load(&depth, u as usize) == level && l.load(&depth, v as usize) == next_depth {
                    let su = l.load(&sigma, u as usize);
                    let sv = l.load(&sigma, v as usize);
                    let dv = l.load(&delta, v as usize);
                    l.fetch_add_f32(&delta, u as usize, su / sv * (1.0 + dv));
                }
            });
        }
        delta.store(src as usize, 0.0);
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: d,
            values: AlgoValues::F32(delta.to_vec()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::validate_against_reference;
    use sygraph_sim::{Device, DeviceProfile};

    fn check_all(host: &CsrHost, src: u32) {
        for algo in AlgoKind::all() {
            let q = Queue::new(Device::new(DeviceProfile::host_test()));
            let mut fw = TigrLike::new();
            fw.prepare(&q, host).unwrap();
            let rec = fw.run(&q, algo, src).unwrap();
            validate_against_reference(host, algo, src, &rec.values)
                .unwrap_or_else(|e| panic!("Tigr {}: {e}", algo.name()));
        }
    }

    #[test]
    fn correct_on_small_graph() {
        let host = CsrHost::from_edges_weighted(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (4, 5),
                (5, 4),
            ],
            Some(&[1.0, 1.0, 2.0, 2.0, 1.5, 1.5, 1.0, 1.0]),
        );
        check_all(&host, 0);
    }

    #[test]
    fn correct_with_high_degree_splits() {
        // hub with degree 200 > K forces multi-virtual-node splits
        let mut edges: Vec<(u32, u32)> = (1..=200).map(|v| (0, v)).collect();
        edges.extend((1..=200).map(|v| (v, 0)));
        let host = CsrHost::from_edges(201, &edges);
        check_all(&host, 5);
    }

    #[test]
    fn udt_has_preprocessing_cost_and_padded_memory() {
        let host = CsrHost::from_edges(100, &[(0, 1), (1, 0)]);
        let q = Queue::new(Device::new(DeviceProfile::host_test()));
        let mut fw = TigrLike::new();
        fw.prepare(&q, &host).unwrap();
        assert!(fw.prep_ms() > 0.0);
        // padded adjacency: ~100 virtual nodes x 64 slots x 4B
        assert!(
            q.device().mem_used() >= 100 * UDT_K as u64 * 4,
            "padding should dominate: {}",
            q.device().mem_used()
        );
    }

    #[test]
    fn virtual_node_count() {
        let mut edges: Vec<(u32, u32)> = (1..=130).map(|v| (0, v)).collect();
        edges.push((1, 0));
        let host = CsrHost::from_edges(131, &edges);
        let q = Queue::new(Device::new(DeviceProfile::host_test()));
        let mut fw = TigrLike::new();
        fw.prepare(&q, &host).unwrap();
        // vertex 0: deg 130 -> 3 virtual nodes; others 1 each
        assert_eq!(fw.udt().vnum, 3 + 130);
    }
}
