//! Gunrock-like framework: dynamic vector frontiers with atomic append,
//! sizing scans before every advance, and a *post-processing filter pass*
//! after every advance to remove the duplicates the vector layout cannot
//! prevent (§2.2, Figure 2). No preprocessing (Table 1).
//!
//! Memory behaviour modelled after the paper's observations: frontier
//! vectors grow with the duplicate-inflated output (severe on kron /
//! twitter hubs), and BC keeps one full-capacity frontier per BFS level
//! for the backward pass — which is what exhausts memory on the
//! huge-diameter road-USA graph (Figure 8 / Table 6 OOM entries).

use sygraph_core::frontier::{Frontier, VectorFrontier};
use sygraph_core::graph::{CsrHost, DeviceCsr, DeviceGraphView};
use sygraph_core::types::{VertexId, INF_DIST, INF_WEIGHT};
use sygraph_sim::{Queue, SimError, SimResult};

use crate::harness::{AlgoKind, AlgoValues, Framework, RunRecord};
use crate::vecops::{advance_vector, frontier_degree_sum};

/// Gunrock-like comparator.
#[derive(Default)]
pub struct GunrockLike {
    graph: Option<DeviceCsr>,
}

impl GunrockLike {
    pub fn new() -> Self {
        Self::default()
    }

    fn graph(&self) -> &DeviceCsr {
        self.graph.as_ref().expect("prepare() not called")
    }
}

/// The advance → filter superstep shared by BFS/SSSP/CC: sizes the raw
/// output, advances (duplicates land in `raw`), then runs the dedup
/// filter `keep_first` to build the compacted next frontier.
struct VectorEngine {
    fin: VectorFrontier,
    raw: VectorFrontier,
    next: VectorFrontier,
    /// Per-vertex epoch marks for duplicate removal.
    mark: sygraph_sim::DeviceBuffer<u32>,
    /// Scratch for the per-superstep offset scan / LB partition passes.
    scan_scratch: sygraph_sim::DeviceBuffer<u32>,
}

impl VectorEngine {
    fn new(q: &Queue, n: usize) -> SimResult<Self> {
        Ok(VectorEngine {
            fin: VectorFrontier::with_capacity(q, n, n.max(16))?,
            raw: VectorFrontier::with_capacity(q, n, 16)?,
            next: VectorFrontier::with_capacity(q, n, 16)?,
            mark: q.malloc_device::<u32>(n)?,
            scan_scratch: q.malloc_device::<u32>(n.max(16))?,
        })
    }

    /// One superstep. Returns the next frontier's length.
    fn superstep(
        &mut self,
        q: &Queue,
        g: &DeviceCsr,
        iter: u32,
        functor: impl crate::vecops::VecAdvanceFunctor,
    ) -> SimResult<usize> {
        self.superstep_with_keep(q, g, iter, functor, |_, _| true)
    }

    /// One superstep whose post-processing filter additionally applies a
    /// `keep` predicate (Gunrock's idempotent-advance + filter pattern).
    fn superstep_with_keep(
        &mut self,
        q: &Queue,
        g: &DeviceCsr,
        iter: u32,
        functor: impl crate::vecops::VecAdvanceFunctor,
        keep: impl Fn(&mut sygraph_sim::ItemCtx<'_>, u32) -> bool + Sync,
    ) -> SimResult<usize> {
        // Gunrock's advance is a multi-pass pipeline: a degree scan sizes
        // the output, an exclusive scan assigns per-item output offsets,
        // and a load-balancing partition pass (binary search of block
        // boundaries) distributes the edges over thread blocks — all
        // launched every superstep.
        let deg = frontier_degree_sum(q, g, &self.fin)?;
        let len = self.fin.len();
        // Small frontiers take Gunrock's serial path and skip the
        // scan/partition passes.
        if len >= 256 {
            let items = self.fin.items();
            let offsets = &g.row_offsets;
            let scratch = &self.scan_scratch;
            q.parallel_for("gq_scan_offsets", len, |l, i| {
                let v = l.load(items, i) as usize;
                let lo = l.load(offsets, v);
                let hi = l.load(offsets, v + 1);
                l.store(scratch, i % scratch.len().max(1), hi - lo);
                l.compute(4); // scan combine steps
            });
            let blocks = len.div_ceil(256).max(1);
            q.parallel_for("gq_lb_partition", blocks, |l, b| {
                // binary search for this block's first edge
                let _ = l.load(scratch, (b * 251) % scratch.len().max(1));
                l.compute(2 * (usize::BITS - len.leading_zeros()) as u64);
            });
        }
        self.raw.ensure_capacity(q, deg.max(1))?;
        self.raw.clear(q);
        advance_vector(q, "gq_advance", g, &self.fin, Some(&self.raw), functor);
        // Post-processing filter: keep the first occurrence of each
        // vertex (epoch marks), dropping duplicates.
        let out_len = self.raw.len();
        self.next.ensure_capacity(q, out_len.max(1))?;
        self.next.clear(q);
        let items = self.raw.items();
        let mark = &self.mark;
        let next = &self.next;
        q.parallel_for("gq_filter", out_len, |l, i| {
            let v = l.load(items, i);
            if !keep(l, v) {
                return;
            }
            let old = l.fetch_max(mark, v as usize, iter);
            if old < iter {
                next.append_lane(l, v);
            }
        });
        std::mem::swap(&mut self.fin, &mut self.next);
        Ok(self.fin.len())
    }
}

impl Framework for GunrockLike {
    fn name(&self) -> &'static str {
        "Gunrock"
    }

    fn prepare(&mut self, q: &Queue, host: &CsrHost) -> SimResult<()> {
        self.graph = Some(DeviceCsr::upload(q, host)?);
        Ok(())
    }

    fn prep_ms(&self) -> f64 {
        0.0
    }

    fn run(&mut self, q: &Queue, algo: AlgoKind, src: VertexId) -> SimResult<RunRecord> {
        match algo {
            AlgoKind::Bfs => self.bfs(q, src),
            AlgoKind::Sssp => self.sssp(q, src),
            AlgoKind::Cc => self.cc(q),
            AlgoKind::Bc => self.bc(q, src),
        }
    }
}

impl GunrockLike {
    fn bfs(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let g = self.graph();
        let n = g.vertex_count();
        let t0 = q.now_ns();
        let dist = q.malloc_device::<u32>(n)?;
        q.fill(&dist, INF_DIST);
        dist.store(src as usize, 0);
        let mut eng = VectorEngine::new(q, n)?;
        q.fill(&eng.mark, 0);
        eng.fin.insert_host(src);
        let mut iter = 1u32;
        loop {
            q.mark(format!("gq_bfs_iter{}", iter - 1));
            // Idempotent advance: *every* neighbor is appended; visited
            // vertices and duplicates are removed by the post-processing
            // filter (§2.2: Gunrock "requires post-processing to remove
            // duplicate nodes for frontier consistency"). On hub-heavy
            // graphs like kron the raw output is many times the real
            // frontier — the cost SYgraph's bitmap avoids.
            let len = eng.superstep_with_keep(
                q,
                g,
                iter,
                |_l, _u, _v, _e, _w| true,
                |l, v| l.load(&dist, v as usize) == INF_DIST,
            )?;
            // Stamp distances on the deduplicated frontier.
            let items = eng.fin.items();
            q.parallel_for("gq_stamp", len, |l, i| {
                let v = l.load(items, i) as usize;
                l.store(&dist, v, iter);
            });
            if len == 0 {
                break;
            }
            iter += 1;
            if iter as usize > n + 1 {
                return Err(SimError::Algorithm("gunrock bfs diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::U32(dist.to_vec()),
        })
    }

    fn sssp(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let g = self.graph();
        let n = g.vertex_count();
        let t0 = q.now_ns();
        let dist = q.malloc_device::<f32>(n)?;
        q.fill(&dist, INF_WEIGHT);
        dist.store(src as usize, 0.0);
        let mut eng = VectorEngine::new(q, n)?;
        q.fill(&eng.mark, 0);
        eng.fin.insert_host(src);
        let mut iter = 1u32;
        loop {
            q.mark(format!("gq_sssp_iter{}", iter - 1));
            let len = eng.superstep(q, g, iter, |l, u, v, _e, w| {
                let du = l.load(&dist, u as usize);
                let nd = du + w;
                let old = l.fetch_min_f32(&dist, v as usize, nd);
                nd < old
            })?;
            if len == 0 {
                break;
            }
            iter += 1;
            if iter as usize > 4 * n + 16 {
                return Err(SimError::Algorithm("gunrock sssp diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::F32(dist.to_vec()),
        })
    }

    fn cc(&self, q: &Queue) -> SimResult<RunRecord> {
        let g = self.graph();
        let n = g.vertex_count();
        let m = g.edge_count();
        let t0 = q.now_ns();
        // Gunrock's CC is edge-centric (Soman-style hooking): it allocates
        // edge-pair frontiers, ping-pong radix-sort scratch and per-edge
        // flags up front. The per-edge working set below (~22 u64 words)
        // is calibrated so the full-size footprint crosses the paper's
        // observed 32 GB threshold exactly where the paper reports OOM:
        // indochina (194 M edges) and twitter (530 M) fail, kron (91 M,
        // but a much smaller fraction of the 32 GB budget per Table 3
        // scaling) and the road graphs fit.
        let _edge_pairs = q.malloc_device::<u64>(m * 11)?;
        let _sort_scratch = q.malloc_device::<u64>(m * 11)?;
        let labels = q.malloc_device::<u32>(n)?;
        q.parallel_for("gq_cc_init", n, |l, v| l.store(&labels, v, v as u32));
        let mut eng = VectorEngine::new(q, n)?;
        q.fill(&eng.mark, 0);
        eng.fin.fill_all(q);
        let mut iter = 1u32;
        loop {
            q.mark(format!("gq_cc_iter{}", iter - 1));
            let len = eng.superstep(q, g, iter, |l, u, v, _e, _w| {
                let lu = l.load(&labels, u as usize);
                let old = l.fetch_min(&labels, v as usize, lu);
                lu < old
            })?;
            if len == 0 {
                break;
            }
            iter += 1;
            if iter as usize > n + 1 {
                return Err(SimError::Algorithm("gunrock cc diverged".into()));
            }
        }
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: iter,
            values: AlgoValues::U32(labels.to_vec()),
        })
    }

    fn bc(&self, q: &Queue, src: VertexId) -> SimResult<RunRecord> {
        let g = self.graph();
        let n = g.vertex_count();
        let t0 = q.now_ns();
        let depth = q.malloc_device::<u32>(n)?;
        let sigma = q.malloc_device::<f32>(n)?;
        let delta = q.malloc_device::<f32>(n)?;
        q.fill(&depth, INF_DIST);
        q.fill(&sigma, 0.0);
        q.fill(&delta, 0.0);
        depth.store(src as usize, 0);
        sigma.store(src as usize, 1.0);

        let mut eng = VectorEngine::new(q, n)?;
        q.fill(&eng.mark, 0);
        eng.fin.insert_host(src);
        // Per-level frontier stack for the backward pass. Each level keeps
        // the usual ×2 duplicate-slack capacity and is never shrunk — the
        // implementation choice that makes BC explode on huge-diameter
        // road graphs (levels × 2·|V| words on road-USA overflows VRAM,
        // Figure 8 / Table 6).
        let mut levels: Vec<VectorFrontier> = Vec::new();
        let mut d = 0u32;
        loop {
            q.mark(format!("gq_bc_fwd{d}"));
            // snapshot the current frontier for the backward pass
            let snap = VectorFrontier::with_capacity(q, n, (2 * n).max(16))?;
            let items = eng.fin.items();
            let len = eng.fin.len();
            q.parallel_for("gq_bc_snapshot", len, |l, i| {
                let v = l.load(items, i);
                snap.append_lane(l, v);
            });
            levels.push(snap);
            let next_d = d + 1;
            // idempotent advance: append everything, filter by depth
            let len = eng.superstep_with_keep(
                q,
                g,
                next_d,
                |l, u, v, _e, _w| {
                    let old = l.fetch_min(&depth, v as usize, next_d);
                    if old >= next_d {
                        let su = l.load(&sigma, u as usize);
                        l.fetch_add_f32(&sigma, v as usize, su);
                    }
                    true
                },
                |l, v| l.load(&depth, v as usize) == next_d,
            )?;
            if len == 0 {
                break;
            }
            d += 1;
            if d as usize > n + 1 {
                return Err(SimError::Algorithm("gunrock bc diverged".into()));
            }
        }
        // Backward sweep over stored levels.
        for (level, frontier) in levels.iter().enumerate().rev().skip(1) {
            q.mark(format!("gq_bc_bwd{level}"));
            let next_depth = level as u32 + 1;
            advance_vector(q, "gq_bc_back", g, frontier, None, |l, u, v, _e, _w| {
                if l.load(&depth, v as usize) == next_depth {
                    let su = l.load(&sigma, u as usize);
                    let sv = l.load(&sigma, v as usize);
                    let dv = l.load(&delta, v as usize);
                    l.fetch_add_f32(&delta, u as usize, su / sv * (1.0 + dv));
                }
                false
            });
        }
        delta.store(src as usize, 0.0);
        Ok(RunRecord {
            algo_ms: (q.now_ns() - t0) / 1e6,
            iterations: d,
            values: AlgoValues::F32(delta.to_vec()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::validate_against_reference;
    use sygraph_sim::{Device, DeviceProfile};

    fn check_all(host: &CsrHost, src: u32) {
        for algo in AlgoKind::all() {
            let q = Queue::new(Device::new(DeviceProfile::host_test()));
            let mut fw = GunrockLike::new();
            fw.prepare(&q, host).unwrap();
            let rec = fw.run(&q, algo, src).unwrap();
            validate_against_reference(host, algo, src, &rec.values)
                .unwrap_or_else(|e| panic!("{} {}: {e}", fw.name(), algo.name()));
        }
    }

    #[test]
    fn correct_on_small_symmetric_graph() {
        let host = CsrHost::from_edges_weighted(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (4, 5),
                (5, 4),
            ],
            Some(&[1.0, 1.0, 2.0, 2.0, 1.5, 1.5, 1.0, 1.0]),
        );
        check_all(&host, 0);
    }

    #[test]
    fn correct_on_random_graph() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        let n = 150u32;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for _ in 0..700 {
            let (u, v) = (rng.random_range(0..n), rng.random_range(0..n));
            edges.push((u, v));
            edges.push((v, u));
        }
        let host = CsrHost::from_edges(n as usize, &edges);
        check_all(&host, 3);
    }

    #[test]
    fn bc_ooms_on_high_diameter_graph_with_tight_vram() {
        // long path -> many levels x full-capacity snapshots
        let n = 2000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        let mut prof = DeviceProfile::host_test();
        prof.vram_bytes = 3 << 20; // 3 MiB: graph fits, level stack does not
        let q = Queue::new(Device::new(prof));
        let mut fw = GunrockLike::new();
        fw.prepare(&q, &host).unwrap();
        assert!(fw.run(&q, AlgoKind::Bfs, 0).is_ok(), "BFS fits");
        match fw.run(&q, AlgoKind::Bc, 0) {
            Err(SimError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
