//! Δ-stepping SSSP (Meyer & Sanders), in the near/far-pile formulation
//! used by GPU implementations. The paper explicitly does **not** use
//! this optimization (§3.4 cites it as related work); it is provided as
//! an extension and ablated against plain Bellman-Ford in the benches.
//!
//! Vertices whose tentative distance falls below the current threshold go
//! to the *near* pile and are relaxed immediately; the rest wait in the
//! *far* pile until the threshold advances by Δ.

use sygraph_core::frontier::{swap, Word};
use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::inspector::{OptConfig, Tuning};
use sygraph_core::operators::advance::Advance;
use sygraph_core::operators::filter;
use sygraph_core::types::{VertexId, INF_WEIGHT};
use sygraph_sim::{Queue, SimError, SimResult};

use crate::common::{guarded_init, make_frontier, AlgoResult};
use crate::dispatch_by_word;

/// Runs Δ-stepping SSSP from `src` with bucket width `delta`.
pub fn run(
    q: &Queue,
    g: &DeviceCsr,
    src: VertexId,
    opts: &OptConfig,
    delta: f32,
) -> SimResult<AlgoResult<f32>> {
    assert!(delta > 0.0, "delta must be positive");
    dispatch_by_word!(q, opts, g.vertex_count(), run_impl(q, g, src, opts, delta))
}

fn run_impl<W: Word>(
    q: &Queue,
    g: &DeviceCsr,
    src: VertexId,
    opts: &OptConfig,
    delta: f32,
    tuning: &Tuning,
) -> SimResult<AlgoResult<f32>> {
    let n = g.vertex_count();
    assert!((src as usize) < n, "source out of range");
    let t0 = q.now_ns();

    let dist = q.malloc_device::<f32>(n)?;
    let mut near = make_frontier::<W>(q, n, opts)?;
    let mut near_next = make_frontier::<W>(q, n, opts)?;
    let far = make_frontier::<W>(q, n, opts)?;
    let scratch = make_frontier::<W>(q, n, opts)?;
    guarded_init(q, &opts.recovery, || {
        q.fill(&dist, INF_WEIGHT);
        dist.store(src as usize, 0.0);
        near.insert_host(src);
    })?;

    let mut threshold = delta;
    let mut iter = 0u32;
    let max_iters = 4 * n as u32 + 16;
    loop {
        // Drain the near pile at the current threshold.
        while !near.is_empty(q) {
            q.mark(format!("delta_iter{iter}"));
            let (ev, _) = Advance::new(q, g, near.as_ref())
                .tuning(tuning)
                .run(|l, u, v, _e, w| {
                    let du = l.load(&dist, u as usize);
                    let nd = du + w;
                    let old = l.fetch_min_f32(&dist, v as usize, nd);
                    if nd < old {
                        if nd < threshold {
                            near_next.insert_lane(l, v);
                        } else {
                            far.insert_lane(l, v);
                        }
                    }
                    false
                });
            ev.wait();
            // A skipped advance would read as an empty `near_next` and
            // silently truncate the traversal; surface it instead. (The
            // relaxation itself is monotone, but the promote step below
            // is not re-runnable, so the whole loop takes barrier
            // semantics rather than retries.)
            q.fault_barrier()?;
            swap(&mut near, &mut near_next);
            near_next.clear(q);
            iter += 1;
            if iter > max_iters {
                return Err(SimError::Algorithm("delta-stepping diverged".into()));
            }
        }
        if far.is_empty(q) {
            break;
        }
        // Advance the threshold and promote ready far vertices. A far
        // vertex may have been improved below the *old* threshold since
        // insertion; the distance test handles both cases.
        threshold += delta;
        scratch.clear(q);
        filter::external(q, far.as_ref(), scratch.as_ref(), |l, v| {
            l.load(&dist, v as usize) < threshold
        })
        .wait();
        filter::inplace(q, far.as_ref(), |l, v| {
            l.load(&dist, v as usize) >= threshold
        })
        .wait();
        // scratch holds the promoted set; near is empty after the drain,
        // so copy the promoted vertices in.
        filter::external(q, scratch.as_ref(), near.as_ref(), |_l, _v| true).wait();
        // The promote sequence moves vertices from `far` through
        // `scratch` into `near`; a fault between the two filters would
        // drop the promoted set on a re-run, so it can only fail typed.
        q.fault_barrier()?;
        iter += 1;
        if iter > max_iters {
            return Err(SimError::Algorithm("delta-stepping diverged".into()));
        }
    }

    // Catches a fault latched at a census launch (`is_empty`), whose
    // stale count could have ended either loop early.
    q.fault_barrier()?;
    Ok(AlgoResult {
        values: dist.to_vec(),
        iterations: iter,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check(host: &CsrHost, src: u32, delta: f32) {
        let q = queue();
        let g = DeviceCsr::upload(&q, host).unwrap();
        let got = run(&q, &g, src, &OptConfig::all(), delta).unwrap();
        let want = reference::dijkstra(host, src);
        for (v, (a, b)) in got.values.iter().zip(want.iter()).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "vertex {v}");
            } else {
                assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b} (Δ={delta})");
            }
        }
    }

    #[test]
    fn weighted_diamond_various_deltas() {
        let host = CsrHost::from_edges_weighted(
            4,
            &[(0, 1), (0, 2), (2, 1), (1, 3)],
            Some(&[10.0, 1.0, 2.0, 1.0]),
        );
        for d in [0.5, 2.0, 100.0] {
            check(&host, 0, d);
        }
    }

    #[test]
    fn random_weighted_matches_dijkstra() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let n = 150u32;
        let edges: Vec<(u32, u32)> = (0..900)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let weights: Vec<f32> = (0..900).map(|_| rng.random_range(0.5..5.0f32)).collect();
        let host = CsrHost::from_edges_weighted(n as usize, &edges, Some(&weights));
        check(&host, 0, 1.0);
        check(&host, 42, 3.0);
    }

    #[test]
    fn huge_delta_degenerates_to_bellman_ford() {
        let host = CsrHost::from_edges_weighted(3, &[(0, 1), (1, 2)], Some(&[1.0, 1.0]));
        check(&host, 0, 1e9);
    }
}
