//! Triangle counting — exercises the neighborhood-intersection pattern
//! the paper motivates its frontier **intersection** operator with
//! (§3.1, Figure 3's segmented intersection).
//!
//! For every edge `(u, v)` with `u < v`, the lanes of a subgroup merge
//! the two sorted adjacency lists and count common neighbors `w > v`
//! (the standard forward counting that sees each triangle once). The
//! input must be undirected with sorted neighbor lists (which
//! [`sygraph_core::graph::CsrHost`] guarantees).

use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::inspector::OptConfig;
use sygraph_sim::{Queue, SimResult};

use crate::common::AlgoResult;

/// Counts triangles; returns per-vertex triangle participation counts
/// (each triangle increments all three corners) plus the global count in
/// `iterations`' place? No — the global count is `values.iter().sum() / 3`.
pub fn run(q: &Queue, g: &DeviceCsr, _opts: &OptConfig) -> SimResult<AlgoResult<u32>> {
    let n = g.vertex_count();
    let t0 = q.now_ns();
    let per_vertex = q.malloc_device::<u32>(n)?;
    q.fill(&per_vertex, 0);

    let offsets = &g.row_offsets;
    let cols = &g.col_indices;
    // One work-item per vertex u; it walks its forward edges (u, v) and
    // merge-intersects N(u) with N(v), counting only w > v.
    q.parallel_for("triangle_count", n, |l, ui| {
        let u = ui as u32;
        let ulo = l.load(offsets, ui);
        let uhi = l.load(offsets, ui + 1);
        for e in ulo..uhi {
            let v = l.load(cols, e as usize);
            if v <= u {
                continue; // forward edges only
            }
            let vlo = l.load(offsets, v as usize);
            let vhi = l.load(offsets, v as usize + 1);
            // sorted-merge intersection of N(u)[e+1..] and N(v)
            let mut a = e + 1; // neighbors of u after v (sorted => > v)
            let mut b = vlo;
            while a < uhi && b < vhi {
                let wa = l.load(cols, a as usize);
                let wb = l.load(cols, b as usize);
                l.compute(2);
                match wa.cmp(&wb) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        // triangle (u, v, wa)
                        l.fetch_add(&per_vertex, u as usize, 1);
                        l.fetch_add(&per_vertex, v as usize, 1);
                        l.fetch_add(&per_vertex, wa as usize, 1);
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    });
    // A silently-skipped count kernel would read back as zero triangles.
    q.fault_barrier()?;

    Ok(AlgoResult {
        values: per_vertex.to_vec(),
        iterations: 1,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

/// Global triangle count from the per-vertex participation counts.
pub fn total(values: &[u32]) -> u64 {
    values.iter().map(|&x| x as u64).sum::<u64>() / 3
}

/// Host reference.
pub fn reference(g: &sygraph_core::graph::CsrHost) -> u64 {
    let n = g.vertex_count();
    let mut count = 0u64;
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            // intersect forward neighbors
            let nu: Vec<u32> = g.neighbors(u).iter().copied().filter(|&w| w > v).collect();
            let nv: std::collections::HashSet<u32> = g.neighbors(v).iter().copied().collect();
            count += nu.iter().filter(|w| nv.contains(w)).count() as u64;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn single_triangle() {
        let host = CsrHost::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let r = run(&q, &g, &OptConfig::all()).unwrap();
        assert_eq!(total(&r.values), 1);
        assert_eq!(r.values, vec![1, 1, 1]);
    }

    #[test]
    fn clique_has_binomial_triangles() {
        // K5: C(5,3) = 10 triangles; each vertex in C(4,2) = 6.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let host = CsrHost::from_edges(5, &edges);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let r = run(&q, &g, &OptConfig::all()).unwrap();
        assert_eq!(total(&r.values), 10);
        assert!(r.values.iter().all(|&x| x == 6));
    }

    #[test]
    fn triangle_free_graph() {
        // even cycle: no triangles
        let n = 10u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let host = CsrHost::from_edges(n as usize, &edges)
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let r = run(&q, &g, &OptConfig::all()).unwrap();
        assert_eq!(total(&r.values), 0);
    }

    #[test]
    fn random_graph_matches_reference() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        let n = 80u32;
        let mut edges = Vec::new();
        for _ in 0..400 {
            let (u, v) = (rng.random_range(0..n), rng.random_range(0..n));
            if u != v {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let host = CsrHost::from_edges(n as usize, &edges);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let r = run(&q, &g, &OptConfig::all()).unwrap();
        assert_eq!(total(&r.values), reference(&host));
    }
}
