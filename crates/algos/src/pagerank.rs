//! PageRank on the SYgraph primitives — an extra workload demonstrating
//! API generality beyond the paper's four evaluation algorithms (its §3.1
//! motivates frontier operators with graph machine-learning uses).
//!
//! Push-style power iteration: an all-vertices `advance` scatters each
//! vertex's damped rank share to its successors; dangling mass and the
//! teleport term are folded in by a `compute` pass; iteration stops when
//! the L1 delta drops below `tol` or after `max_iters` sweeps.

use sygraph_core::engine::fixed_point_resilient;
use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::inspector::{OptConfig, Tuning};
use sygraph_core::operators::advance::Advance;
use sygraph_sim::{Queue, SimResult};

use crate::common::{guarded_init, AlgoResult};
use crate::dispatch_by_word;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PagerankParams {
    pub damping: f32,
    pub max_iters: u32,
    /// Stop when the L1 rank change falls below this.
    pub tol: f32,
}

impl Default for PagerankParams {
    fn default() -> Self {
        PagerankParams {
            damping: 0.85,
            max_iters: 100,
            tol: 1e-6,
        }
    }
}

/// Runs PageRank; returns per-vertex ranks summing to ~1.
pub fn run(
    q: &Queue,
    g: &DeviceCsr,
    opts: &OptConfig,
    params: PagerankParams,
) -> SimResult<AlgoResult<f32>> {
    dispatch_by_word!(q, opts, g.vertex_count(), run_impl(q, g, params))
}

fn run_impl<W: sygraph_core::frontier::Word>(
    q: &Queue,
    g: &DeviceCsr,
    params: PagerankParams,
    tuning: &Tuning,
) -> SimResult<AlgoResult<f32>> {
    let n = g.vertex_count();
    let nf = n as f32;
    let t0 = q.now_ns();

    let rank = q.malloc_device::<f32>(n)?;
    let next = q.malloc_device::<f32>(n)?;
    // share[v] = damping * rank[v] / deg(v), precomputed per sweep so the
    // advance functor does one load per edge.
    let share = q.malloc_device::<f32>(n)?;
    let dangling = q.malloc_device::<f32>(1)?;
    let l1_delta = q.malloc_device::<f32>(1)?;
    guarded_init(q, &tuning.recovery, || {
        q.fill(&rank, 1.0 / nf);
    })?;

    // Each sweep resets its accumulators (`next`, `dangling`,
    // `l1_delta`) up front and commits `rank` in the single trailing
    // `pr_apply` launch, so a faulted sweep leaves `rank` untouched and
    // re-runs cleanly under the resilient fixed point's retry contract.
    let d = params.damping;
    let iterations = fixed_point_resilient(
        q,
        &tuning.recovery,
        params.max_iters,
        "pr_iter",
        |q, _iter| {
            q.fill(&next, 0.0);
            dangling.store(0, 0.0);
            l1_delta.store(0, 0.0);
            q.parallel_for("pr_share", n, |l, v| {
                let (lo, hi) = g.row_bounds(l, v as u32);
                let r = l.load(&rank, v);
                let deg = hi - lo;
                if deg == 0 {
                    l.fetch_add_f32(&dangling, 0, r);
                    l.store(&share, v, 0.0);
                } else {
                    l.store(&share, v, d * r / deg as f32);
                }
                l.compute(4);
            });
            let (ev, _) =
                Advance::<W, _>::all_vertices(q, g)
                    .tuning(tuning)
                    .run(|l, u, v, _e, _w| {
                        let s = l.load(&share, u as usize);
                        l.fetch_add_f32(&next, v as usize, s);
                        false
                    });
            ev.wait();
            let dang = dangling.load(0);
            q.parallel_for("pr_apply", n, |l, v| {
                let base = (1.0 - d) / nf + d * dang / nf;
                let newv = l.load(&next, v) + base;
                let old = l.load(&rank, v);
                l.store(&rank, v, newv);
                l.fetch_add_f32(&l1_delta, 0, (newv - old).abs());
                l.compute(6);
            });
            Ok(l1_delta.load(0) >= params.tol)
        },
    )?;

    Ok(AlgoResult {
        values: rank.to_vec(),
        iterations,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    #[test]
    fn matches_host_power_iteration() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 100u32;
        let edges: Vec<(u32, u32)> = (0..600)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let params = PagerankParams {
            max_iters: 40,
            tol: 0.0,
            ..Default::default()
        };
        let got = run(&q, &g, &OptConfig::all(), params).unwrap();
        let want = reference::pagerank(&host, 0.85, 40);
        for (v, (a, b)) in got.values.iter().zip(want.iter()).enumerate() {
            assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b}");
        }
    }

    #[test]
    fn ranks_sum_to_one() {
        let host = CsrHost::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, &OptConfig::all(), PagerankParams::default()).unwrap();
        let sum: f32 = got.values.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    #[test]
    fn tolerance_stops_early() {
        let host = CsrHost::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(
            &q,
            &g,
            &OptConfig::all(),
            PagerankParams {
                tol: 1e-3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            got.iterations < 100,
            "converged in {} iters",
            got.iterations
        );
    }
}
