//! Batched multi-source traversal (MS-BFS-style bit-packing): one engine
//! run expands up to W concurrent sources through W-bit lane masks packed
//! beside the two-layer frontier (see `frontier::lanes` and DESIGN.md
//! §13).
//!
//! The win over serial rooted passes is twofold. Launch overhead and
//! frontier maintenance (compaction, lazy clear, census) are paid once
//! per *union* superstep instead of once per source per level — a batch
//! runs `max_s D(s)` supersteps, not `Σ_s D(s)`. And the per-edge work of
//! coincident wavefronts collapses into bitwise mask arithmetic: an edge
//! on the frontier of k sources costs one lane-word load plus ANDs, not k
//! functor invocations.
//!
//! Entry points: [`bfs_multi`] (per-lane depths), [`bc_multi`] (Brandes
//! dependencies, W-wide forward sigma counting + W-wide backward
//! accumulation), and the [`closeness_multi`] / [`reachability_multi`]
//! wrappers over the batched BFS distances.

use sygraph_core::engine::{CheckpointState, SuperstepEngine};
use sygraph_core::frontier::{
    lane_locate, lane_words, locate, BitmapLike, LaneFrontier, LaneView, Word,
};
use sygraph_core::graph::{DeviceCsr, DeviceGraphView, Graph};
use sygraph_core::inspector::{OptConfig, Tuning};
use sygraph_core::operators::advance::Advance;
use sygraph_core::operators::compute;
use sygraph_core::types::{VertexId, INF_DIST};
use sygraph_sim::{Queue, SimResult};

use crate::common::guarded_init;
use crate::dispatch_by_word;

/// Result of a batched multi-source run: one value vector per source, in
/// the order the sources were given.
#[derive(Debug, Clone)]
pub struct MultiResult<T> {
    /// The sources, batch order preserved.
    pub sources: Vec<VertexId>,
    /// `per_source[i][v]` = the value of vertex `v` under source `i`.
    pub per_source: Vec<Vec<T>>,
    /// Union supersteps executed, summed over batches.
    pub iterations: u32,
    /// Batches run (`⌈sources / width⌉`).
    pub batches: u32,
    /// Modelled device time of the whole run, in milliseconds.
    pub sim_ms: f64,
}

/// Closeness centrality of a batch of sources (harmonic-free classic
/// definition over the reachable set).
#[derive(Debug, Clone)]
pub struct ClosenessResult {
    pub sources: Vec<VertexId>,
    /// `scores[i]` = `(reached_i − 1) / Σ dist_i` over the vertices
    /// source `i` reaches (0 when it reaches nothing but itself).
    pub scores: Vec<f32>,
    pub iterations: u32,
    pub sim_ms: f64,
}

fn live_mask(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Batched BFS: runs `sources` in chunks of `width` lanes (`width` ∈
/// {8, 16, 32, 64}) and returns each source's distance vector,
/// bit-identical to `width` separate [`crate::bfs::run`] calls. Honours
/// `opts.recovery` — checkpoints capture the packed lane state, so a
/// mid-batch `DeviceLost` resumes without restarting the batch.
pub fn bfs_multi(
    q: &Queue,
    g: &DeviceCsr,
    sources: &[VertexId],
    width: u32,
    opts: &OptConfig,
) -> SimResult<MultiResult<u32>> {
    dispatch_by_word!(
        q,
        opts,
        g.vertex_count(),
        bfs_multi_impl(q, g, sources, width)
    )
}

fn bfs_multi_impl<W: Word>(
    q: &Queue,
    g: &DeviceCsr,
    sources: &[VertexId],
    width: u32,
    tuning: &Tuning,
) -> SimResult<MultiResult<u32>> {
    let n = g.vertex_count();
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
    }
    let t0 = q.now_ns();
    let w = width as usize;
    // One scratch set for every batch: per-lane depths (`v*width + lane`)
    // and the packed visited lanes mirroring the frontier layout.
    let depth = q.malloc_device::<u32>(n * w)?;
    let vis = q.malloc_device::<u64>(lane_words(n, width).max(1))?;
    let ckpt: [&dyn CheckpointState; 2] = [&depth, &vis];
    let mut fin: Box<dyn BitmapLike<W>> = Box::new(LaneFrontier::<W>::new(q, n, width)?);
    let mut fout: Box<dyn BitmapLike<W>> = Box::new(LaneFrontier::<W>::new(q, n, width)?);

    let mut per_source: Vec<Vec<u32>> = Vec::with_capacity(sources.len());
    let mut iterations = 0u32;
    let mut batches = 0u32;
    for chunk in sources.chunks(w) {
        batches += 1;
        guarded_init(q, &tuning.recovery, || {
            q.fill(&depth, INF_DIST);
            q.fill(&vis, 0u64);
            fin.clear(q);
            fout.clear(q);
            for (i, &s) in chunk.iter().enumerate() {
                fin.insert_host_masked(s, 1 << i);
                depth.store(s as usize * w + i, 0);
                let (vw, vs) = lane_locate(s, width);
                vis.fetch_or(vw, 1u64 << (vs + i as u32));
            }
        })?;
        let mut engine = SuperstepEngine::new(q, g, *tuning, fin, fout)
            .mark_prefix("bfs_multi_iter")
            .max_iters(n + 1, "multi-source BFS failed to converge")
            .checkpoint_state(&ckpt)
            .multi_source(width, live_mask(chunk.len()))?;
        let vis_a = vis.alias();
        let vis_c = vis.alias();
        let depth_c = depth.alias();
        iterations += engine.run_multi(
            move |l, _i, _u, v, _e, _w, m| {
                let (vw, vs) = lane_locate(v, width);
                m & !((l.load_atomic::<u64>(&vis_a, vw) >> vs) & LaneView::mask_all(width))
            },
            Some(&move |l, i, v, fresh| {
                let (vw, vs) = lane_locate(v, width);
                l.fetch_or(&vis_c, vw, fresh << vs);
                let mut f = fresh;
                while f != 0 {
                    let b = f.trailing_zeros() as usize;
                    l.store_atomic(&depth_c, v as usize * w + b, i + 1);
                    f &= f - 1;
                }
            }),
        )?;
        let all = depth.to_vec();
        for i in 0..chunk.len() {
            per_source.push((0..n).map(|v| all[v * w + i]).collect());
        }
        (fin, fout) = engine.into_frontiers();
    }

    Ok(MultiResult {
        sources: sources.to_vec(),
        per_source,
        iterations,
        batches,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

/// Batched Brandes BC: one W-wide forward pass counts per-lane shortest
/// paths (`sigma`), retaining each union level's lane frontier; one
/// W-wide backward sweep accumulates per-lane dependencies (`delta`).
/// Each source's vector matches [`crate::bc::run`] to float tolerance
/// (the lane adds associate differently than the serial pass).
///
/// When `g` is pull-capable ([`Graph::with_pull`]) the backward sweep
/// scans the *deeper* level's in-edges through the CSC mirror, so the
/// lanes of a cooperating subgroup write their dependency atomics to
/// distinct `delta` rows; push-only graphs fall back to an out-edge scan
/// whose atomics contend on the shared parent row.
pub fn bc_multi(
    q: &Queue,
    g: &Graph,
    sources: &[VertexId],
    width: u32,
    opts: &OptConfig,
) -> SimResult<MultiResult<f32>> {
    dispatch_by_word!(
        q,
        opts,
        g.vertex_count(),
        bc_multi_impl(q, g, sources, width)
    )
}

fn bc_multi_impl<W: Word>(
    q: &Queue,
    g: &Graph,
    sources: &[VertexId],
    width: u32,
    tuning: &Tuning,
) -> SimResult<MultiResult<f32>> {
    let n = g.vertex_count();
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
    }
    let t0 = q.now_ns();
    let w = width as usize;
    let mask_all = LaneView::mask_all(width);
    // One scratch set across batches: per-lane depth/sigma/delta plus the
    // packed visited lanes, and a pool recycling level frontiers.
    let depth = q.malloc_device::<u32>(n * w)?;
    let sigma = q.malloc_device::<f32>(n * w)?;
    let delta = q.malloc_device::<f32>(n * w)?;
    let coef = q.malloc_device::<f32>(n * w)?;
    // The backward sweep wants in-edges (see below); build the CSC once so
    // every batch shares it. Push-only graphs take the out-edge fallback.
    let csc: Option<&DeviceCsr> = if g.ensure_pull(q)? {
        g.pull_view()
    } else {
        None
    };
    let vis = q.malloc_device::<u64>(lane_words(n, width).max(1))?;
    let mut pool: Vec<Box<dyn BitmapLike<W>>> = Vec::new();
    let mut fin: Box<dyn BitmapLike<W>> = Box::new(LaneFrontier::<W>::new(q, n, width)?);
    let mut fout: Box<dyn BitmapLike<W>> = Box::new(LaneFrontier::<W>::new(q, n, width)?);

    let mut per_source: Vec<Vec<f32>> = Vec::with_capacity(sources.len());
    let mut iterations = 0u32;
    let mut batches = 0u32;
    for chunk in sources.chunks(w) {
        batches += 1;
        let live = live_mask(chunk.len());
        guarded_init(q, &tuning.recovery, || {
            q.fill(&depth, INF_DIST);
            q.fill(&sigma, 0.0);
            q.fill(&delta, 0.0);
            q.fill(&coef, 0.0);
            q.fill(&vis, 0u64);
            fin.clear(q);
            fout.clear(q);
            for (i, &s) in chunk.iter().enumerate() {
                fin.insert_host_masked(s, 1 << i);
                depth.store(s as usize * w + i, 0);
                sigma.store(s as usize * w + i, 1.0);
                let (vw, vs) = lane_locate(s, width);
                vis.fetch_or(vw, 1u64 << (vs + i as u32));
            }
        })?;
        let mut engine = SuperstepEngine::new(q, &g.csr, *tuning, fin, fout)
            .mark_prefix("bc_multi_fwd")
            .max_iters(n + 1, "multi-source BC failed to converge")
            .multi_source(width, live)?;

        // Forward: the accept mask is `m` minus the lanes that visited
        // `v` in an *earlier* superstep — `vis` is stable during the
        // superstep (merged from the output frontier between supersteps),
        // so every shortest-path edge's sigma contribution lands exactly
        // once, even when several same-superstep parents discover `v`.
        let vis_a = vis.alias();
        let sigma_a = sigma.alias();
        let depth_c = depth.alias();
        let fwd = move |l: &mut sygraph_sim::ItemCtx<'_>,
                        _i: u32,
                        u: VertexId,
                        v: VertexId,
                        _e: sygraph_core::types::EdgeId,
                        _w: sygraph_core::types::Weight,
                        m: u64|
              -> u64 {
            let (vw, vs) = lane_locate(v, width);
            let acc = m & !((l.load::<u64>(&vis_a, vw) >> vs) & mask_all);
            let mut a = acc;
            while a != 0 {
                let b = a.trailing_zeros() as usize;
                let su = l.load(&sigma_a, u as usize * w + b);
                l.fetch_add_f32(&sigma_a, v as usize * w + b, su);
                a &= a - 1;
            }
            acc
        };
        let stamp = move |l: &mut sygraph_sim::ItemCtx<'_>, i: u32, v: VertexId, fresh: u64| {
            let mut f = fresh;
            while f != 0 {
                let b = f.trailing_zeros() as usize;
                l.store_atomic(&depth_c, v as usize * w + b, i + 1);
                f &= f - 1;
            }
        };

        // Sigma counting is additive, so a partially-run superstep is
        // not safe to retry: step through `try_step_multi` and fail the
        // batch typed on any injected fault.
        let mut levels: Vec<Box<dyn BitmapLike<W>>> = Vec::new();
        while engine.try_step_multi(&fwd, Some(&stamp))? {
            // Merge the superstep's discoveries into `vis` before the
            // rotate — the *next* superstep's accept masks must see them,
            // this one's must not.
            let out_lanes = engine
                .output()
                .lane_view()
                .expect("multi engines carry lane frontiers")
                .lanes;
            let vis_m = vis.alias();
            compute::over_compacted(q, engine.output(), move |l, v| {
                let (vw, vs) = lane_locate(v, width);
                let m = (l.load::<u64>(&out_lanes, vw) >> vs) & mask_all;
                l.fetch_or(&vis_m, vw, m << vs);
            })
            .wait();
            // The vis merge must land before the next superstep's accept
            // masks read it; a skipped merge can only fail typed.
            q.fault_barrier()?;
            let fresh = match pool.pop() {
                Some(f) => f,
                None => Box::new(LaneFrontier::<W>::new(q, n, width)?),
            };
            levels.push(engine.rotate_retaining(fresh));
        }
        iterations += engine.iteration();

        // Backward, deepest level first: an edge u→v is a shortest-path
        // DAG edge for exactly the lanes holding u at level d and v at
        // level d+1 — one AND of two lane masks. Each level runs three
        // kernels: fold the deeper vertices' `(1 + delta) / sigma` into a
        // per-(vertex, lane) coefficient, accumulate coefficients along
        // DAG edges, then scale the sums by `sigma_u`. The factored form
        // `delta_u = sigma_u * sum_v (1 + delta_v) / sigma_v` touches two
        // floats per (edge, lane) in the edge scan instead of four — the
        // edge scan is the pass's hot loop, the vertex passes are noise.
        for d in (0..levels.len().saturating_sub(1)).rev() {
            q.mark(format!("bc_multi_bwd{d}"));
            let lv = levels[d + 1].lane_view().expect("lane level").lanes;
            let lvp = lv.alias();
            let sigma_p = sigma.alias();
            let delta_p = delta.alias();
            let coef_p = coef.alias();
            compute::over_compacted(q, levels[d + 1].as_ref(), move |l, v| {
                let (vw, vs) = lane_locate(v, width);
                let mut m = (l.load::<u64>(&lvp, vw) >> vs) & mask_all;
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    let i = v as usize * w + b;
                    let dv = l.load(&delta_p, i);
                    let sv = l.load(&sigma_p, i);
                    l.store(&coef_p, i, (1.0 + dv) / sv);
                    m &= m - 1;
                }
            })
            .wait();

            let lu = levels[d].lane_view().expect("lane level").lanes;
            let coef_b = coef.alias();
            let delta_b = delta.alias();
            let ev = if let Some(csc) = csc {
                // In-edge scan from the deeper level: the subgroup expands
                // one `v` cooperatively, so `coef[v*w..]` is one uniform,
                // line-coalesced row, and each lane's `delta` atomic lands
                // on its own in-neighbour's row — no two lanes of an
                // instruction share an address, so nothing serializes.
                // The union bitmap of the shallower level (1 bit/vertex,
                // L1-resident, exact by the lane overlay invariant)
                // rejects in-neighbours at the wrong depth before the
                // 8-byte scattered lane-word load.
                let uni = levels[d].words().alias();
                let (ev, _) = Advance::new(q, csc, levels[d + 1].as_ref())
                    .tuning(tuning)
                    .run(move |l, v, u, _e, _w| {
                        let (bw, bb) = locate::<W>(u);
                        if !l.load::<W>(&uni, bw).test_bit(bb) {
                            return false;
                        }
                        let (uw, us) = lane_locate(u, width);
                        let (vw, vs) = lane_locate(v, width);
                        let mu = (l.load::<u64>(&lu, uw) >> us) & mask_all;
                        let mv = (l.load::<u64>(&lv, vw) >> vs) & mask_all;
                        let mut m = mu & mv;
                        while m != 0 {
                            let b = m.trailing_zeros() as usize;
                            let c = l.load(&coef_b, v as usize * w + b);
                            l.fetch_add_f32(&delta_b, u as usize * w + b, c);
                            m &= m - 1;
                        }
                        false
                    });
                ev
            } else {
                // Out-edge fallback: prefilter on the deeper level's union
                // bitmap, then accumulate. Cooperating lanes share `u`
                // here, so their k-th atomics all target delta[u*w + k-th
                // set bit] — identical addresses that serialize. Starting
                // each lane's bit walk at a different rotation keeps
                // same-instruction atomics on distinct row slots.
                let uni = levels[d + 1].words().alias();
                let (ev, _) = Advance::new(q, &g.csr, levels[d].as_ref())
                    .tuning(tuning)
                    .run(move |l, u, v, _e, _w| {
                        let (bw, bb) = locate::<W>(v);
                        if !l.load::<W>(&uni, bw).test_bit(bb) {
                            return false;
                        }
                        let (uw, us) = lane_locate(u, width);
                        let (vw, vs) = lane_locate(v, width);
                        let mu = (l.load::<u64>(&lu, uw) >> us) & mask_all;
                        let mv = (l.load::<u64>(&lv, vw) >> vs) & mask_all;
                        let m = mu & mv;
                        if m == 0 {
                            return false;
                        }
                        let rot = l.global_id as u32 % width;
                        let hi = m & (mask_all << rot);
                        for mut part in [hi, m & !hi] {
                            while part != 0 {
                                let b = part.trailing_zeros() as usize;
                                let c = l.load(&coef_b, v as usize * w + b);
                                l.fetch_add_f32(&delta_b, u as usize * w + b, c);
                                part &= part - 1;
                            }
                        }
                        false
                    });
                ev
            };
            ev.wait();

            // Finalize this level's dependencies: every (u, lane) pair
            // lives in exactly one level, so a plain scale here cannot
            // race with the shallower levels still to come.
            let lus = levels[d].lane_view().expect("lane level").lanes;
            let sigma_s = sigma.alias();
            let delta_s = delta.alias();
            compute::over_compacted(q, levels[d].as_ref(), move |l, v| {
                let (vw, vs) = lane_locate(v, width);
                let mut m = (l.load::<u64>(&lus, vw) >> vs) & mask_all;
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    let i = v as usize * w + b;
                    let dv = l.load(&delta_s, i);
                    let su = l.load(&sigma_s, i);
                    // Deep grid-like graphs overflow f32 sigma to ∞; the
                    // device accumulator drops the serial pass's ∞/∞ = NaN
                    // contributions, leaving its delta 0 there. The
                    // factored sum is exactly 0 too (each (1+δ)/∞ term
                    // is 0), so skipping the 0·∞ = NaN scale lands on the
                    // same value the serial pass reports.
                    let scaled = dv * su;
                    if !scaled.is_nan() {
                        l.store(&delta_s, i, scaled);
                    }
                    m &= m - 1;
                }
            })
            .wait();
            // Additive dependency accumulation: detect skipped level
            // kernels here, never retry them.
            q.fault_barrier()?;
        }

        // A source's own dependency does not count.
        for (i, &s) in chunk.iter().enumerate() {
            delta.store(s as usize * w + i, 0.0);
        }

        let all = delta.to_vec();
        for i in 0..chunk.len() {
            per_source.push((0..n).map(|v| all[v * w + i]).collect());
        }
        // Recycle every frontier for the next batch.
        for f in levels {
            f.clear(q);
            pool.push(f);
        }
        (fin, fout) = engine.into_frontiers();
    }

    Ok(MultiResult {
        sources: sources.to_vec(),
        per_source,
        iterations,
        batches,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

/// Closeness centrality of each source, from one batched BFS:
/// `C(s) = (reached − 1) / Σ_{v reachable, v≠s} dist(s, v)`.
pub fn closeness_multi(
    q: &Queue,
    g: &DeviceCsr,
    sources: &[VertexId],
    width: u32,
    opts: &OptConfig,
) -> SimResult<ClosenessResult> {
    let bfs = bfs_multi(q, g, sources, width, opts)?;
    let scores = bfs
        .per_source
        .iter()
        .zip(&bfs.sources)
        .map(|(dist, &s)| {
            let mut sum = 0u64;
            let mut reached = 0u64;
            for (v, &d) in dist.iter().enumerate() {
                if d != INF_DIST && v as VertexId != s {
                    sum += d as u64;
                    reached += 1;
                }
            }
            if sum == 0 {
                0.0
            } else {
                reached as f32 / sum as f32
            }
        })
        .collect();
    Ok(ClosenessResult {
        sources: bfs.sources,
        scores,
        iterations: bfs.iterations,
        sim_ms: bfs.sim_ms,
    })
}

/// Multi-source reachability from one batched BFS:
/// `per_source[i][v]` = whether source `i` reaches vertex `v`.
pub fn reachability_multi(
    q: &Queue,
    g: &DeviceCsr,
    sources: &[VertexId],
    width: u32,
    opts: &OptConfig,
) -> SimResult<MultiResult<bool>> {
    let bfs = bfs_multi(q, g, sources, width, opts)?;
    Ok(MultiResult {
        sources: bfs.sources,
        per_source: bfs
            .per_source
            .iter()
            .map(|dist| dist.iter().map(|&d| d != INF_DIST).collect())
            .collect(),
        iterations: bfs.iterations,
        batches: bfs.batches,
        sim_ms: bfs.sim_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn random_host(seed: u64, n: u32, m: usize) -> CsrHost {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        CsrHost::from_edges(n as usize, &edges)
    }

    #[test]
    fn batched_bfs_matches_reference_per_lane() {
        let host = random_host(21, 200, 1400);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let sources = [0u32, 3, 50, 120, 199];
        let got = bfs_multi(&q, &g, &sources, 8, &OptConfig::all()).unwrap();
        assert_eq!(got.batches, 1);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(got.per_source[i], reference::bfs(&host, s), "source {s}");
        }
    }

    #[test]
    fn batching_splits_into_chunks_and_still_matches() {
        let host = random_host(22, 150, 900);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        // 11 sources at width 8: two batches.
        let sources: Vec<u32> = (0..11).map(|i| (i * 13) % 150).collect();
        let got = bfs_multi(&q, &g, &sources, 8, &OptConfig::all()).unwrap();
        assert_eq!(got.batches, 2);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(got.per_source[i], reference::bfs(&host, s), "source {s}");
        }
    }

    #[test]
    fn batched_bc_matches_reference_within_tolerance() {
        // A directed random graph: the in-edge (CSC) backward sweep and
        // the out-edge fallback must both match the reference, so the
        // transpose path is checked against real asymmetry.
        let host = random_host(23, 120, 700);
        let sources = [0u32, 17, 60, 119];
        for pull in [false, true] {
            let q = queue();
            let g = if pull {
                Graph::with_pull(&q, &host).unwrap()
            } else {
                Graph::new(&q, &host).unwrap()
            };
            let got = bc_multi(&q, &g, &sources, 8, &OptConfig::all()).unwrap();
            for (i, &s) in sources.iter().enumerate() {
                let want = reference::betweenness_from(&host, s);
                for (v, (a, b)) in got.per_source[i].iter().zip(want.iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-3 * (1.0 + b.abs()),
                        "pull {pull} source {s} vertex {v}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn closeness_and_reachability_agree_with_bfs() {
        let host = random_host(24, 100, 300);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let sources = [5u32, 40];
        let close = closeness_multi(&q, &g, &sources, 8, &OptConfig::all()).unwrap();
        let reach = reachability_multi(&q, &g, &sources, 8, &OptConfig::all()).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            let dist = reference::bfs(&host, s);
            let reached: Vec<bool> = dist.iter().map(|&d| d != INF_DIST).collect();
            assert_eq!(reach.per_source[i], reached, "source {s}");
            let sum: u64 = dist
                .iter()
                .enumerate()
                .filter(|&(v, &d)| d != INF_DIST && v as u32 != s)
                .map(|(_, &d)| d as u64)
                .sum();
            let cnt = reached
                .iter()
                .enumerate()
                .filter(|&(v, &r)| r && v as u32 != s)
                .count() as f32;
            let want = if sum == 0 { 0.0 } else { cnt / sum as f32 };
            assert!((close.scores[i] - want).abs() < 1e-6, "source {s}");
        }
    }

    #[test]
    fn width64_uses_full_mask() {
        let host = random_host(25, 80, 400);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let sources: Vec<u32> = (0..64).map(|i| (i * 7) % 80).collect();
        let got = bfs_multi(&q, &g, &sources, 64, &OptConfig::all()).unwrap();
        assert_eq!(got.batches, 1);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(got.per_source[i], reference::bfs(&host, s), "lane {i}");
        }
    }
}
