//! k-core decomposition by iterative peeling — a natural showcase of the
//! paper's `filter::inplace` primitive: the frontier holds the surviving
//! vertices, and each superstep removes those whose degree *within the
//! frontier* fell below `k`, until a fixpoint.
//!
//! The input must be undirected.

use sygraph_core::frontier::{BitmapLike, Frontier, TwoLayerFrontier};
use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::inspector::{inspect, OptConfig};
use sygraph_core::operators::advance::Advance;
use sygraph_core::operators::filter;
use sygraph_sim::{Queue, SimError, SimResult};

use crate::common::AlgoResult;

/// Computes the k-core: returns per-vertex membership (1 = in the
/// k-core) and the number of peeling supersteps.
pub fn run(q: &Queue, g: &DeviceCsr, k: u32, opts: &OptConfig) -> SimResult<AlgoResult<u32>> {
    let n = g.vertex_count();
    let tuning = inspect(q.profile(), opts, n);
    let t0 = q.now_ns();

    // Surviving set, as a frontier. (Always two-layer here: the peel
    // frontier shrinks monotonically, exactly 2LB's strength.)
    let alive = TwoLayerFrontier::<u32>::new(q, n)?;
    alive.fill_all(q);
    let degree = q.malloc_device::<u32>(n)?;

    let mut survivors = alive.count(q);
    let mut iter = 0u32;
    loop {
        q.mark(format!("kcore_iter{iter}"));
        // Degree restricted to the surviving set: advance over `alive`,
        // counting only edges whose destination also survives.
        q.fill(&degree, 0);
        let alive_words = alive.words();
        let (ev, _) = Advance::new(q, g, &alive)
            .tuning(&tuning)
            .run(|l, u, v, _e, _w| {
                let (wi, b) = sygraph_core::frontier::locate::<u32>(v);
                if l.load(alive_words, wi) & (1 << b) != 0 {
                    l.fetch_add(&degree, u as usize, 1);
                }
                false
            });
        ev.wait();
        // Peel: drop vertices below k.
        filter::inplace(q, &alive, |l, v| l.load(&degree, v as usize) >= k).wait();
        // A skipped degree count or peel would read as "no change" and
        // end the peeling early with a wrong membership; fail typed.
        q.fault_barrier()?;
        let now = alive.count(q);
        iter += 1;
        if now == survivors {
            break;
        }
        survivors = now;
        if iter as usize > n + 1 {
            return Err(SimError::Algorithm("k-core peeling diverged".into()));
        }
    }

    let membership: Vec<u32> = {
        let set: std::collections::HashSet<u32> = alive.to_sorted_vec().into_iter().collect();
        (0..n as u32).map(|v| set.contains(&v) as u32).collect()
    };
    Ok(AlgoResult {
        values: membership,
        iterations: iter,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

/// Host reference: classic sequential peeling.
pub fn reference(g: &sygraph_core::graph::CsrHost, k: u32) -> Vec<u32> {
    let n = g.vertex_count();
    let mut deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] < k).collect();
    while let Some(v) = queue.pop() {
        if !alive[v as usize] {
            continue;
        }
        alive[v as usize] = false;
        for &u in g.neighbors(v) {
            if alive[u as usize] {
                deg[u as usize] = deg[u as usize].saturating_sub(1);
                if deg[u as usize] < k {
                    queue.push(u);
                }
            }
        }
    }
    alive.into_iter().map(|a| a as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check(host: &CsrHost, k: u32) {
        let q = queue();
        let g = DeviceCsr::upload(&q, host).unwrap();
        let got = run(&q, &g, k, &OptConfig::all()).unwrap();
        assert_eq!(got.values, reference(host, k), "k={k}");
    }

    #[test]
    fn triangle_with_tail() {
        // triangle {0,1,2} plus a path 2-3-4: 2-core = the triangle.
        let host = CsrHost::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, 2, &OptConfig::all()).unwrap();
        assert_eq!(got.values, vec![1, 1, 1, 0, 0]);
        check(&host, 2);
    }

    #[test]
    fn k1_keeps_everything_with_an_edge() {
        let host = CsrHost::from_edges(4, &[(0, 1), (1, 0)]);
        check(&host, 1);
        // vertices 2,3 are isolated: not in the 1-core
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, 1, &OptConfig::all()).unwrap();
        assert_eq!(got.values, vec![1, 1, 0, 0]);
    }

    #[test]
    fn cascading_peel() {
        // path graph: 2-core is empty, peeling cascades end-inward.
        let n = 30u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let host = CsrHost::from_edges(n as usize, &edges)
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, 2, &OptConfig::all()).unwrap();
        assert!(got.values.iter().all(|&x| x == 0), "path has no 2-core");
        assert!(got.iterations > 5, "peeling cascades iteratively");
        check(&host, 2);
    }

    #[test]
    fn random_graphs_various_k() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(29);
        let n = 120u32;
        let mut edges = Vec::new();
        for _ in 0..500 {
            let (u, v) = (rng.random_range(0..n), rng.random_range(0..n));
            if u != v {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let host = CsrHost::from_edges(n as usize, &edges);
        for k in [1, 2, 3, 5, 8] {
            check(&host, k);
        }
    }
}
