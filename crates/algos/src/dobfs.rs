//! Direction-Optimizing BFS (Beamer et al.), the push/pull hybrid the
//! paper notes is possible atop SYgraph (§3.4: "it is also possible to
//! use both push and pull techniques as per Beamer et al.").
//!
//! Push iterations use the standard frontier `advance`; when the frontier
//! grows past `n / alpha` vertices, the traversal switches to pull:
//! every unvisited vertex scans its *in*-edges (the graph's CSC view) and
//! adopts the level as soon as one parent lies in the current frontier —
//! a membership test that is a single bit probe thanks to the bitmap
//! layout. It switches back to push when the frontier shrinks below
//! `n / beta`.

use sygraph_core::engine::SuperstepEngine;
use sygraph_core::frontier::word::locate;
use sygraph_core::frontier::Word;
use sygraph_core::graph::{DeviceGraphView, Graph};
use sygraph_core::inspector::{OptConfig, Tuning};
use sygraph_core::types::{VertexId, INF_DIST};
use sygraph_sim::{Queue, SimError, SimResult};

use crate::common::{make_frontier, AlgoResult};
use crate::dispatch_by_word;

/// Beamer's switching thresholds.
#[derive(Debug, Clone, Copy)]
pub struct DobfsParams {
    /// Switch push→pull when `frontier > n / alpha`.
    pub alpha: usize,
    /// Switch pull→push when `frontier < n / beta`.
    pub beta: usize,
}

impl Default for DobfsParams {
    fn default() -> Self {
        DobfsParams { alpha: 4, beta: 24 }
    }
}

/// Runs direction-optimizing BFS from `src`. The graph must carry a pull
/// (CSC) view — build it with [`Graph::with_pull`].
pub fn run(
    q: &Queue,
    g: &Graph,
    src: VertexId,
    opts: &OptConfig,
    params: DobfsParams,
) -> SimResult<AlgoResult<u32>> {
    assert!(
        g.csc.is_some(),
        "direction-optimizing BFS needs Graph::with_pull"
    );
    dispatch_by_word!(q, opts, g.vertex_count(), run_impl(q, g, src, opts, params))
}

fn run_impl<W: Word>(
    q: &Queue,
    g: &Graph,
    src: VertexId,
    opts: &OptConfig,
    params: DobfsParams,
    tuning: &Tuning,
) -> SimResult<AlgoResult<u32>> {
    let n = g.vertex_count();
    assert!((src as usize) < n, "source out of range");
    let csc = g.csc.as_ref().unwrap();
    let t0 = q.now_ns();

    let dist = q.malloc_device::<u32>(n)?;
    q.fill(&dist, INF_DIST);
    dist.store(src as usize, 0);

    let fin = make_frontier::<W>(q, n, opts)?;
    let fout = make_frontier::<W>(q, n, opts)?;
    fin.insert_host(src);

    // Push supersteps go through the engine (fused distance stamp); pull
    // supersteps are manual kernels over the CSC view, using the engine's
    // step-level API to keep the frontier cycle in one place.
    let mut engine = SuperstepEngine::new(q, &g.csr, *tuning, fin, fout)
        .fused(true)
        .mark_prefix("dobfs_iter");
    let mut frontier_size = 1usize;
    let mut pulling = false;
    loop {
        // Beamer switch heuristic on the frontier population.
        if !pulling && frontier_size > n / params.alpha.max(1) {
            pulling = true;
        } else if pulling && frontier_size < n / params.beta.max(1) {
            pulling = false;
        }

        if pulling {
            // Pull: each unvisited vertex scans in-edges for a frontier
            // parent; the bitmap makes membership a single bit probe.
            let iter = engine.iteration();
            q.mark(format!("dobfs_iter{iter}"));
            let (fin_ref, fout_ref) = engine.frontiers();
            let in_words = fin_ref.words();
            let next = iter + 1;
            q.parallel_for("bfs_pull", n, |l, v| {
                if l.load(&dist, v) != INF_DIST {
                    return;
                }
                let (lo, hi) = csc.row_bounds(l, v as u32);
                for e in lo..hi {
                    let u = csc.edge_dest(l, e);
                    let (wi, b) = locate::<W>(u);
                    if l.load(in_words, wi).test_bit(b) {
                        l.store(&dist, v, next);
                        fout_ref.insert_lane(l, v as u32);
                        break; // early exit: one parent suffices
                    }
                }
            });
            // The pull bypassed `step`, so the input's compaction
            // metadata is stale: the rotate must clear in full.
            engine.invalidate_compaction();
        } else {
            // Push: Listing-1 advance with the distance stamp fused in.
            engine.step(
                |l, _iter, _u, v, _e, _w| l.load(&dist, v as usize) == INF_DIST,
                Some(&|l, iter, v| l.store(&dist, v as usize, iter + 1)),
            );
        }

        engine.rotate();
        frontier_size = engine.input().count(q);
        if frontier_size == 0 {
            break;
        }
        if engine.iteration() as usize > n + 1 {
            return Err(SimError::Algorithm("DOBFS failed to converge".into()));
        }
    }

    Ok(AlgoResult {
        values: dist.to_vec(),
        iterations: engine.iteration(),
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check(host: &CsrHost, src: u32, params: DobfsParams) {
        let q = queue();
        let g = Graph::with_pull(&q, host).unwrap();
        let got = run(&q, &g, src, &OptConfig::all(), params).unwrap();
        assert_eq!(got.values, reference::bfs(host, src));
    }

    #[test]
    fn matches_reference_with_default_switching() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 250u32;
        let edges: Vec<(u32, u32)> = (0..2500)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        check(&host, 0, DobfsParams::default());
    }

    #[test]
    fn forced_pull_still_correct() {
        // alpha=1: pull from the first iteration onward.
        let host =
            CsrHost::from_edges(8, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 6), (5, 7)]);
        check(
            &host,
            0,
            DobfsParams {
                alpha: 1,
                beta: 1000,
            },
        );
    }

    #[test]
    fn forced_push_matches_plain_bfs() {
        let host = CsrHost::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        check(
            &host,
            0,
            DobfsParams {
                alpha: usize::MAX,
                beta: 1,
            },
        );
    }
}
