//! Direction-Optimizing BFS (Beamer et al.), the push/pull hybrid the
//! paper notes is possible atop SYgraph (§3.4: "it is also possible to
//! use both push and pull techniques as per Beamer et al.").
//!
//! Since direction optimization moved into the [`SuperstepEngine`]
//! (`Tuning::{direction, alpha, beta}` plus the engine-maintained
//! unvisited set), this module is a thin preset over [`crate::bfs`]: it
//! checks the graph carries a pull (CSC) view, defaults the direction
//! policy to `Auto`, and runs the ordinary BFS engine cycle — the engine
//! decides per superstep whether to push (frontier scans out-edges) or
//! pull (unvisited candidates scan in-edges, adopting on first parent).
//!
//! [`SuperstepEngine`]: sygraph_core::engine::SuperstepEngine

use sygraph_core::graph::{DeviceGraphView, Graph};
use sygraph_core::inspector::{inspect, Direction, OptConfig};
use sygraph_core::types::VertexId;
use sygraph_sim::{Queue, SimError, SimResult};

use crate::common::AlgoResult;

/// Runs direction-optimizing BFS from `src`. The graph must carry a pull
/// (CSC) view — build it with [`Graph::with_pull`] — otherwise a typed
/// [`SimError::Unsupported`] is returned (no assert).
///
/// The preset honours `opts.direction` when it already enables pull
/// (`Auto`/`Pull`) and upgrades an explicit `Push` to `Auto`: asking for
/// direction-*optimizing* BFS opts into the hybrid.
pub fn run(q: &Queue, g: &Graph, src: VertexId, opts: &OptConfig) -> SimResult<AlgoResult<u32>> {
    let mut opts = *opts;
    if opts.direction == Direction::Push {
        opts.direction = Direction::Auto;
    }
    run_preset(q, g, src, &opts, None)
}

fn run_preset(
    q: &Queue,
    g: &Graph,
    src: VertexId,
    opts: &OptConfig,
    thresholds: Option<(u32, u32)>,
) -> SimResult<AlgoResult<u32>> {
    if !g.supports_pull() {
        return Err(SimError::Unsupported(
            "direction-optimizing BFS needs a pull (CSC) view; build the \
             graph with Graph::with_pull"
                .into(),
        ));
    }
    let mut tuning = inspect(q.profile(), opts, g.vertex_count());
    if let Some((alpha, beta)) = thresholds {
        tuning.alpha = alpha;
        tuning.beta = beta;
    }
    // Fused distance stamp, as the hand-rolled version always ran.
    match tuning.word_bits {
        32 => crate::bfs::engine_run::<u32, Graph>(q, g, src, opts, true, "dobfs_iter", &tuning),
        _ => crate::bfs::engine_run::<u64, Graph>(q, g, src, opts, true, "dobfs_iter", &tuning),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn random_host(seed: u64, n: u32, m: usize) -> CsrHost {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        CsrHost::from_edges(n as usize, &edges)
    }

    #[test]
    fn auto_preset_switches_and_matches_reference() {
        // A hub-heavy random graph explodes by superstep 2: the preset's
        // Auto upgrade must actually take the pull path (visible in the
        // trace) and still match the host reference. Forced Pull/Auto ×
        // rep × dataset bit-identity lives in tests/direction_properties.
        let host = random_host(7, 300, 4000);
        let q = queue();
        let g = Graph::with_pull(&q, &host).unwrap();
        let got = run(&q, &g, 0, &OptConfig::all()).unwrap();
        assert_eq!(got.values, reference::bfs(&host, 0));
        let dirs = q.profiler().direction_events();
        for want in ["push", "pull"] {
            assert!(dirs.iter().any(|e| e.direction == want), "no {want}");
        }
    }

    #[test]
    fn preset_thresholds_steer_the_direction_policy() {
        // Chain long enough that the dense estimate (nonzero_words ×
        // word_bits, so ≥ 64 for any non-empty frontier) stays below n.
        let edges: Vec<(u32, u32)> = (0..127).map(|v| (v, v + 1)).collect();
        let host = CsrHost::from_edges(128, &edges);
        let expect = reference::bfs(&host, 0);

        // alpha = 1 ⇒ push→pull threshold is n, never crossed: the run
        // stays push throughout and matches plain BFS bit for bit.
        let q = queue();
        let g = Graph::with_pull(&q, &host).unwrap();
        let got = run_preset(&q, &g, 0, &OptConfig::all(), Some((1, 1))).unwrap();
        assert_eq!(got.values, expect);
        let plain = crate::bfs::run_fused(&q, &g, 0, &OptConfig::all()).unwrap();
        assert_eq!(got.values, plain.values);
        assert!(
            q.profiler()
                .direction_events()
                .iter()
                .all(|e| e.direction == "push"),
            "alpha=1 must keep every superstep on the push path"
        );

        // alpha = MAX ⇒ threshold n/alpha is 0: any non-empty estimate
        // engages pull from the second superstep on.
        let q = queue();
        let g = Graph::with_pull(&q, &host).unwrap();
        let got = run_preset(&q, &g, 0, &OptConfig::all(), Some((u32::MAX, u32::MAX))).unwrap();
        assert_eq!(got.values, expect);
        assert!(
            q.profiler()
                .direction_events()
                .iter()
                .any(|e| e.direction == "pull"),
            "alpha=MAX must engage the pull path"
        );
    }

    #[test]
    fn missing_pull_view_is_a_typed_error() {
        let host = CsrHost::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let q = queue();
        let g = Graph::new(&q, &host).unwrap();
        let err = run(&q, &g, 0, &OptConfig::all()).unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)), "got {err:?}");
    }
}
