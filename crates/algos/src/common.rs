//! Shared machinery: frontier factories, run metrics and word-width
//! dispatch.

use serde::{Deserialize, Serialize};
use sygraph_core::engine::RecoveryPolicy;
use sygraph_core::frontier::{
    BitmapFrontier, BitmapLike, HybridFrontier, SparseFrontier, TwoLayerFrontier, Word,
};
use sygraph_core::inspector::{inspect, OptConfig, Representation, Tuning};
use sygraph_sim::{Queue, SimError, SimResult};

/// Result of one algorithm run: per-vertex values plus run metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgoResult<T> {
    /// Per-vertex output (distances, labels, centrality scores...).
    pub values: Vec<T>,
    /// Supersteps executed.
    pub iterations: u32,
    /// Modelled device time of the run, in milliseconds.
    pub sim_ms: f64,
}

/// Runs an algorithm's setup kernels (distance fills, frontier seeds)
/// under the recovery contract the engine applies to supersteps. Setup
/// sits *before* the engine loop, so a fault injected there is outside
/// the superstep retry domain: left unhandled it silently skips the
/// fills and the run converges instantly on uninitialized buffers. The
/// closure must be idempotent (fills, stores and bitmap-OR inserts all
/// are); it is re-run whole on transient or synthetic-OOM faults, up to
/// `recovery.max_retries` with the policy's backoff. Sticky faults
/// (`DeviceLost`) and exhausted retries propagate as typed errors. With
/// no fault plan attached this is exactly one call to `init`.
pub fn guarded_init(q: &Queue, recovery: &RecoveryPolicy, init: impl Fn()) -> SimResult<()> {
    let mut attempt = 0u32;
    loop {
        init();
        let Some(e) = q.take_fault() else {
            return Ok(());
        };
        let retryable = matches!(e, SimError::Transient { .. } | SimError::OutOfMemory { .. });
        if !retryable || attempt >= recovery.max_retries {
            return Err(e);
        }
        attempt += 1;
        q.advance_clock_ns((recovery.backoff_ns << (attempt - 1).min(16)) as f64);
    }
}

/// Creates a frontier of the layout selected by `opts`: the
/// representation policy picks the family (forced-sparse list, hybrid for
/// auto-switching, or dense), and `two_layer` picks between the 2LB
/// layout and the plain §4.1 bitmap used as Figure 7 baseline. Sparse and
/// auto build on the two-layer machinery (their conversion kernels need
/// the counted compaction), so with `two_layer` off they degrade to the
/// plain dense bitmap.
pub fn make_frontier<W: Word>(
    q: &Queue,
    n: usize,
    opts: &OptConfig,
) -> SimResult<Box<dyn BitmapLike<W>>> {
    if !opts.two_layer {
        return Ok(Box::new(BitmapFrontier::<W>::new(q, n)?));
    }
    match opts.representation {
        Representation::Dense => Ok(Box::new(TwoLayerFrontier::<W>::new(q, n)?)),
        Representation::Sparse => Ok(Box::new(SparseFrontier::<W>::new(q, n)?)),
        Representation::Auto => Ok(Box::new(HybridFrontier::<W>::new(q, n)?)),
    }
}

/// Derives the tuning for this queue's device and dispatches `f` on the
/// inspector-selected word width (the MSI optimization picks 32-bit words
/// on NVIDIA/Intel and 64-bit on AMD; with MSI off the word is 64-bit).
pub fn dispatch_word<R>(
    q: &Queue,
    opts: &OptConfig,
    n: usize,
    f32bit: impl FnOnce(Tuning) -> R,
    f64bit: impl FnOnce(Tuning) -> R,
) -> R {
    let tuning = inspect(q.profile(), opts, n);
    match tuning.word_bits {
        32 => f32bit(tuning),
        _ => f64bit(tuning),
    }
}

/// Convenience macro: runs `$impl_fn::<u32>` or `::<u64>` per the
/// inspector's word choice.
#[macro_export]
macro_rules! dispatch_by_word {
    ($q:expr, $opts:expr, $n:expr, $impl_fn:ident ( $($arg:expr),* $(,)? )) => {{
        let tuning = sygraph_core::inspector::inspect($q.profile(), $opts, $n);
        match tuning.word_bits {
            32 => $impl_fn::<u32>($($arg,)* &tuning),
            _ => $impl_fn::<u64>($($arg,)* &tuning),
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    #[test]
    fn factory_respects_layout_flag() {
        let q = Queue::new(Device::new(DeviceProfile::host_test()));
        let two = make_frontier::<u32>(&q, 100, &OptConfig::all()).unwrap();
        let flat = make_frontier::<u32>(&q, 100, &OptConfig::baseline()).unwrap();
        assert!(two.compact(&q).is_some(), "2LB layout compacts");
        assert!(flat.compact(&q).is_none(), "plain bitmap does not");
        two.insert_host(4);
        assert_eq!(two.count(&q), 1);
        assert_eq!(flat.count(&q), 0);
    }

    #[test]
    fn dispatch_picks_width_by_vendor() {
        let qa = Queue::new(Device::new(DeviceProfile::v100s()));
        let w = dispatch_word(&qa, &OptConfig::all(), 1000, |_| 32, |_| 64);
        assert_eq!(w, 32);
        let qb = Queue::new(Device::new(DeviceProfile::mi100()));
        let w = dispatch_word(&qb, &OptConfig::all(), 1000, |_| 32, |_| 64);
        assert_eq!(w, 64);
    }
}
