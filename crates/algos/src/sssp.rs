//! Single-Source Shortest Path via Bellman-Ford (§3.4): the advance phase
//! resembles BFS, relaxing distances with an atomic min; vertices whose
//! distance improved re-enter the frontier. The paper's SSSP deliberately
//! omits Δ-stepping — that optimization lives in [`crate::delta`].

use sygraph_core::engine::{CheckpointState, SuperstepEngine, NO_COMPUTE};
use sygraph_core::frontier::Word;
use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::inspector::{OptConfig, Tuning};
use sygraph_core::types::{VertexId, INF_WEIGHT};
use sygraph_sim::{Queue, SimResult};

use crate::common::{guarded_init, make_frontier, AlgoResult};
use crate::dispatch_by_word;

/// Runs Bellman-Ford SSSP from `src`, returning weighted distances
/// (unreached = `f32::INFINITY`). Unweighted graphs use unit weights.
pub fn run(
    q: &Queue,
    g: &DeviceCsr,
    src: VertexId,
    opts: &OptConfig,
) -> SimResult<AlgoResult<f32>> {
    dispatch_by_word!(q, opts, g.vertex_count(), run_impl(q, g, src, opts))
}

fn run_impl<W: Word>(
    q: &Queue,
    g: &DeviceCsr,
    src: VertexId,
    opts: &OptConfig,
    tuning: &Tuning,
) -> SimResult<AlgoResult<f32>> {
    let n = g.vertex_count();
    assert!((src as usize) < n, "source out of range");
    let t0 = q.now_ns();

    let dist = q.malloc_device::<f32>(n)?;
    let fin = make_frontier::<W>(q, n, opts)?;
    let fout = make_frontier::<W>(q, n, opts)?;
    guarded_init(q, &opts.recovery, || {
        q.fill(&dist, INF_WEIGHT);
        dist.store(src as usize, 0.0);
        fin.insert_host(src);
    })?;

    // The relaxation lives entirely in the advance functor — no compute
    // phase, so fusion has nothing to add.
    let ckpt: [&dyn CheckpointState; 1] = [&dist];
    let mut engine = SuperstepEngine::new(q, g, *tuning, fin, fout)
        .mark_prefix("sssp_iter")
        .max_iters(
            n + 1,
            "Bellman-Ford exceeded |V| iterations (negative cycle?)",
        )
        .checkpoint_state(&ckpt);
    // dist[u] is read atomically: other lanes may be relaxing u's own
    // distance (fetch_min) in this same launch. A stale read only delays
    // convergence by a superstep; it never corrupts a distance.
    let iterations = engine.run(
        |l, _iter, u, v, _e, w| {
            let du = l.load_atomic(&dist, u as usize);
            let nd = du + w;
            let old = l.fetch_min_f32(&dist, v as usize, nd);
            nd < old
        },
        NO_COMPUTE,
    )?;

    Ok(AlgoResult {
        values: dist.to_vec(),
        iterations,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check(host: &CsrHost, src: u32) {
        let q = queue();
        let g = DeviceCsr::upload(&q, host).unwrap();
        let got = run(&q, &g, src, &OptConfig::all()).unwrap();
        let want = reference::dijkstra(host, src);
        for (v, (a, b)) in got.values.iter().zip(want.iter()).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "vertex {v}: {a} vs inf");
            } else {
                assert!((a - b).abs() < 1e-4, "vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn weighted_shortcut_beats_direct_edge() {
        let host = CsrHost::from_edges_weighted(
            4,
            &[(0, 1), (0, 2), (2, 1), (1, 3)],
            Some(&[10.0, 1.0, 2.0, 1.0]),
        );
        check(&host, 0);
    }

    #[test]
    fn unweighted_matches_bfs_hops() {
        let q = queue();
        let host = CsrHost::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4)]);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, 0, &OptConfig::all()).unwrap();
        assert_eq!(got.values, vec![0.0, 1.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    fn random_weighted_matches_dijkstra() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200u32;
        let edges: Vec<(u32, u32)> = (0..1200)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let weights: Vec<f32> = (0..1200).map(|_| rng.random_range(0.1..10.0f32)).collect();
        let host = CsrHost::from_edges_weighted(n as usize, &edges, Some(&weights));
        check(&host, 0);
        check(&host, 99);
    }

    #[test]
    fn plain_bitmap_layout_agrees() {
        let host = CsrHost::from_edges_weighted(
            4,
            &[(0, 1), (0, 2), (2, 3), (1, 3)],
            Some(&[4.0, 1.0, 1.0, 1.0]),
        );
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let a = run(&q, &g, 0, &OptConfig::all()).unwrap();
        let b = run(&q, &g, 0, &OptConfig::baseline()).unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.values, vec![0.0, 4.0, 1.0, 2.0]);
    }
}
