//! # sygraph-algos — graph algorithms on the SYgraph primitives
//!
//! The four algorithms of the paper's evaluation — BFS, SSSP
//! (Bellman-Ford), CC (label propagation) and BC (Brandes) — implemented
//! exactly in the paper's superstep style (Listing 1), plus the
//! extensions the paper cites but does not use: direction-optimizing BFS
//! (Beamer), Δ-stepping SSSP and PageRank. Host reference
//! implementations in [`mod@reference`] back every device algorithm's tests.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod common;
pub mod delta;
pub mod dobfs;
pub mod kcore;
pub mod multi;
pub mod pagerank;
pub mod partitioned;
pub mod reference;
pub mod sssp;
pub mod triangles;

pub use common::AlgoResult;
