//! Partitioned multi-device BFS / SSSP / CC.
//!
//! Each algorithm shards the graph with
//! [`PartitionedGraph`](sygraph_core::graph::PartitionedGraph), keeps one
//! state buffer per partition over the *local* ID space (owned prefix +
//! halo tail), and runs the
//! [`MultiDeviceEngine`](sygraph_core::engine::MultiDeviceEngine) BSP
//! loop. Halo entries are *replicas*: the local advance stamps them like
//! any destination, the exchange ships the replica value to the owner,
//! and the owner min-merges. All three algorithms are min-combine
//! fixpoints (BFS level, SSSP distance, CC label), so the merge order
//! never shows in the result — partitioned runs are bit-identical to the
//! single-device reference path (see `tests/multi_device.rs`).
//!
//! The advance functors below are *verbatim* the single-device ones
//! (`bfs.rs`, `sssp.rs`, `cc.rs`), just over local IDs — the partitioned
//! path adds plumbing, never new arithmetic.

use sygraph_core::engine::{
    CheckpointState, HaloLink, MultiDeviceEngine, StepAdvanceDyn, StepComputeDyn, SuperstepExchange,
};
use sygraph_core::frontier::exchange::{ExchangeConfig, ExchangeTally};
use sygraph_core::frontier::Word;
use sygraph_core::graph::{DeviceCsr, PartitionedGraph};
use sygraph_core::inspector::{inspect, OptConfig};
use sygraph_core::types::{VertexId, INF_DIST, INF_WEIGHT};
use sygraph_sim::{DeviceBuffer, Queue, SimResult};

/// Result of a partitioned run: the gathered global values plus the
/// exchange accounting the single-device [`crate::common::AlgoResult`]
/// has no place for.
pub struct PartitionedResult<T> {
    /// Per-vertex values in *global* ID order (owner entries; halo
    /// replicas are discarded).
    pub values: Vec<T>,
    /// Global supersteps until the union frontier emptied.
    pub supersteps: u32,
    /// Simulated wall time: the slowest device's clock delta.
    pub sim_ms: f64,
    /// Exchange totals across the run.
    pub exchange: ExchangeTally,
    /// Per-superstep exchange summaries (supersteps that moved bytes).
    pub per_superstep: Vec<SuperstepExchange>,
    /// Checkpoint resumes taken across all partitions (device-lost
    /// recovery; 0 on a clean run).
    pub resumes: u32,
}

fn upload_shards(queues: &[Queue], pg: &PartitionedGraph) -> SimResult<Vec<DeviceCsr>> {
    pg.parts
        .iter()
        .zip(queues)
        .map(|(part, q)| DeviceCsr::upload(q, &part.local_graph))
        .collect()
}

fn slowest_ns(queues: &[Queue]) -> f64 {
    queues.iter().map(|q| q.now_ns()).fold(0.0, f64::max)
}

/// Min-merge link over per-partition `u32` state (BFS levels, CC labels).
struct MinLinkU32<'a> {
    state: &'a [DeviceBuffer<u32>],
}

impl HaloLink for MinLinkU32<'_> {
    fn replica(&self, part: usize, lid: u32) -> u64 {
        self.state[part].load(lid as usize) as u64
    }

    fn merge(&self, part: usize, lid: u32, value: u64) -> bool {
        let cur = self.state[part].load(lid as usize);
        let v = value as u32;
        if v < cur {
            self.state[part].store(lid as usize, v);
            true
        } else {
            false
        }
    }
}

/// Min-merge link over per-partition `f32` state (SSSP distances);
/// values travel as IEEE bits.
struct MinLinkF32<'a> {
    state: &'a [DeviceBuffer<f32>],
}

impl HaloLink for MinLinkF32<'_> {
    fn replica(&self, part: usize, lid: u32) -> u64 {
        self.state[part].load(lid as usize).to_bits() as u64
    }

    fn merge(&self, part: usize, lid: u32, value: u64) -> bool {
        let cur = self.state[part].load(lid as usize);
        let v = f32::from_bits(value as u32);
        if v < cur {
            self.state[part].store(lid as usize, v);
            true
        } else {
            false
        }
    }
}

/// Partitioned BFS from `src`: hop distances, `INF_DIST` when unreached.
/// `queues.len()` must equal `pg.part_count()`.
pub fn bfs(
    queues: &[Queue],
    pg: &PartitionedGraph,
    src: VertexId,
    opts: &OptConfig,
    excfg: ExchangeConfig,
) -> SimResult<PartitionedResult<u32>> {
    let tuning = inspect(queues[0].profile(), opts, pg.n);
    match tuning.word_bits {
        32 => bfs_impl::<u32>(queues, pg, src, opts, excfg),
        _ => bfs_impl::<u64>(queues, pg, src, opts, excfg),
    }
}

fn bfs_impl<W: Word>(
    queues: &[Queue],
    pg: &PartitionedGraph,
    src: VertexId,
    opts: &OptConfig,
    excfg: ExchangeConfig,
) -> SimResult<PartitionedResult<u32>> {
    assert!((src as usize) < pg.n, "source out of range");
    let graphs = upload_shards(queues, pg)?;
    // Clock the traversal only: single-device `sim_ms` starts after the
    // caller's graph upload, so the partitioned number must too.
    let t0 = slowest_ns(queues);

    let mut dist = Vec::with_capacity(pg.part_count());
    for (part, q) in pg.parts.iter().zip(queues) {
        let d = q.malloc_device::<u32>(part.local_len().max(1))?;
        q.fill(&d, INF_DIST);
        dist.push(d);
    }
    dist[pg.owner_of(src) as usize].store(pg.owner_local_of(src) as usize, 0);

    let ckpt: Vec<Vec<&dyn CheckpointState>> = dist
        .iter()
        .map(|d| vec![d as &dyn CheckpointState])
        .collect();
    let tuning = inspect(queues[0].profile(), opts, pg.n);
    let mut mde = MultiDeviceEngine::<W>::new(pg, queues, &graphs, tuning, excfg, &ckpt, "mbfs")?
        .max_iters(pg.n + 2);
    mde.seed(src);

    let advances: Vec<Box<StepAdvanceDyn<'_>>> = dist
        .iter()
        .map(|d| {
            Box::new(
                move |l: &mut sygraph_sim::ItemCtx<'_>, _iter: u32, _u, v: u32, _e, _w| {
                    l.load_atomic(d, v as usize) == INF_DIST
                },
            ) as Box<StepAdvanceDyn<'_>>
        })
        .collect();
    let computes: Vec<Box<StepComputeDyn<'_>>> = dist
        .iter()
        .map(|d| {
            Box::new(move |l: &mut sygraph_sim::ItemCtx<'_>, iter: u32, v: u32| {
                l.store_atomic(d, v as usize, iter + 1)
            }) as Box<StepComputeDyn<'_>>
        })
        .collect();
    let adv_refs: Vec<&StepAdvanceDyn<'_>> = advances.iter().map(|b| b.as_ref()).collect();
    let comp_refs: Vec<Option<&StepComputeDyn<'_>>> =
        computes.iter().map(|b| Some(b.as_ref())).collect();
    let link = MinLinkU32 { state: &dist };

    let supersteps = mde.run(&adv_refs, &comp_refs, &link)?;
    finish(pg, queues, mde, supersteps, t0, &dist)
}

/// Partitioned Bellman-Ford SSSP from `src`: weighted distances,
/// `f32::INFINITY` when unreached. Unweighted shards relax unit weights.
pub fn sssp(
    queues: &[Queue],
    pg: &PartitionedGraph,
    src: VertexId,
    opts: &OptConfig,
    excfg: ExchangeConfig,
) -> SimResult<PartitionedResult<f32>> {
    let tuning = inspect(queues[0].profile(), opts, pg.n);
    match tuning.word_bits {
        32 => sssp_impl::<u32>(queues, pg, src, opts, excfg),
        _ => sssp_impl::<u64>(queues, pg, src, opts, excfg),
    }
}

fn sssp_impl<W: Word>(
    queues: &[Queue],
    pg: &PartitionedGraph,
    src: VertexId,
    opts: &OptConfig,
    excfg: ExchangeConfig,
) -> SimResult<PartitionedResult<f32>> {
    assert!((src as usize) < pg.n, "source out of range");
    let graphs = upload_shards(queues, pg)?;
    // Clock the traversal only: single-device `sim_ms` starts after the
    // caller's graph upload, so the partitioned number must too.
    let t0 = slowest_ns(queues);

    let mut dist = Vec::with_capacity(pg.part_count());
    for (part, q) in pg.parts.iter().zip(queues) {
        let d = q.malloc_device::<f32>(part.local_len().max(1))?;
        q.fill(&d, INF_WEIGHT);
        dist.push(d);
    }
    dist[pg.owner_of(src) as usize].store(pg.owner_local_of(src) as usize, 0.0);

    let ckpt: Vec<Vec<&dyn CheckpointState>> = dist
        .iter()
        .map(|d| vec![d as &dyn CheckpointState])
        .collect();
    let tuning = inspect(queues[0].profile(), opts, pg.n);
    let mut mde = MultiDeviceEngine::<W>::new(pg, queues, &graphs, tuning, excfg, &ckpt, "msssp")?;
    mde.seed(src);

    let advances: Vec<Box<StepAdvanceDyn<'_>>> = dist
        .iter()
        .map(|d| {
            Box::new(
                move |l: &mut sygraph_sim::ItemCtx<'_>, _iter: u32, u: u32, v: u32, _e, w: f32| {
                    let du = l.load_atomic(d, u as usize);
                    let nd = du + w;
                    let old = l.fetch_min_f32(d, v as usize, nd);
                    nd < old
                },
            ) as Box<StepAdvanceDyn<'_>>
        })
        .collect();
    let adv_refs: Vec<&StepAdvanceDyn<'_>> = advances.iter().map(|b| b.as_ref()).collect();
    let comp_refs: Vec<Option<&StepComputeDyn<'_>>> = vec![None; pg.part_count()];
    let link = MinLinkF32 { state: &dist };

    let supersteps = mde.run(&adv_refs, &comp_refs, &link)?;
    finish(pg, queues, mde, supersteps, t0, &dist)
}

/// Partitioned label-propagation CC over a symmetric graph: per-vertex
/// minimum-ID component labels. (Plain propagation, not shortcutting —
/// pointer jumping chases label chains through *global* random access,
/// which a shard cannot do; the min-label fixpoint is identical.)
pub fn cc(
    queues: &[Queue],
    pg: &PartitionedGraph,
    opts: &OptConfig,
    excfg: ExchangeConfig,
) -> SimResult<PartitionedResult<u32>> {
    let tuning = inspect(queues[0].profile(), opts, pg.n);
    match tuning.word_bits {
        32 => cc_impl::<u32>(queues, pg, opts, excfg),
        _ => cc_impl::<u64>(queues, pg, opts, excfg),
    }
}

fn cc_impl<W: Word>(
    queues: &[Queue],
    pg: &PartitionedGraph,
    opts: &OptConfig,
    excfg: ExchangeConfig,
) -> SimResult<PartitionedResult<u32>> {
    let graphs = upload_shards(queues, pg)?;
    // Clock the traversal only: single-device `sim_ms` starts after the
    // caller's graph upload, so the partitioned number must too.
    let t0 = slowest_ns(queues);

    // Every local slot (owned and halo alike) starts as its *global* ID:
    // exactly the single-device `labels[v] = v` seeding, shard-local.
    let mut labels = Vec::with_capacity(pg.part_count());
    for (part, q) in pg.parts.iter().zip(queues) {
        let lb = q.malloc_device::<u32>(part.local_len().max(1))?;
        lb.copy_from_slice(&part.local_to_global);
        labels.push(lb);
    }

    let ckpt: Vec<Vec<&dyn CheckpointState>> = labels
        .iter()
        .map(|d| vec![d as &dyn CheckpointState])
        .collect();
    let tuning = inspect(queues[0].profile(), opts, pg.n);
    let mut mde = MultiDeviceEngine::<W>::new(pg, queues, &graphs, tuning, excfg, &ckpt, "mcc")?;
    mde.seed_all_owned();

    let advances: Vec<Box<StepAdvanceDyn<'_>>> = labels
        .iter()
        .map(|d| {
            Box::new(
                move |l: &mut sygraph_sim::ItemCtx<'_>, _iter: u32, u: u32, v: u32, _e, _w| {
                    let lu = l.load_atomic(d, u as usize);
                    let old = l.fetch_min(d, v as usize, lu);
                    lu < old
                },
            ) as Box<StepAdvanceDyn<'_>>
        })
        .collect();
    let adv_refs: Vec<&StepAdvanceDyn<'_>> = advances.iter().map(|b| b.as_ref()).collect();
    let comp_refs: Vec<Option<&StepComputeDyn<'_>>> = vec![None; pg.part_count()];
    let link = MinLinkU32 { state: &labels };

    let supersteps = mde.run(&adv_refs, &comp_refs, &link)?;
    finish(pg, queues, mde, supersteps, t0, &labels)
}

/// Gathers owner entries into global order and packages the run stats.
fn finish<W: Word, T: sygraph_sim::DeviceScalar>(
    pg: &PartitionedGraph,
    queues: &[Queue],
    mde: MultiDeviceEngine<'_, W>,
    supersteps: u32,
    t0: f64,
    state: &[DeviceBuffer<T>],
) -> SimResult<PartitionedResult<T>> {
    let locals: Vec<Vec<T>> = state.iter().map(|d| d.to_vec()).collect();
    Ok(PartitionedResult {
        values: pg.gather(&locals),
        supersteps,
        sim_ms: (slowest_ns(queues) - t0) / 1e6,
        exchange: mde.exchange_total(),
        per_superstep: mde.exchange_per_superstep().to_vec(),
        resumes: mde.resumes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::{CsrHost, PartitionSpec};
    use sygraph_sim::{Device, DeviceProfile};

    fn queues(n: usize) -> Vec<Queue> {
        (0..n)
            .map(|_| Queue::new(Device::new(DeviceProfile::host_test())))
            .collect()
    }

    fn chain_and_branches() -> CsrHost {
        CsrHost::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (0, 5),
                (5, 6),
                (2, 6),
                (6, 7),
            ],
        )
    }

    #[test]
    fn bfs_matches_reference_across_device_counts() {
        let host = chain_and_branches();
        let want = reference::bfs(&host, 0);
        for parts in [1u32, 2, 3, 4] {
            for spec in [PartitionSpec::Hash, PartitionSpec::Range] {
                let pg = PartitionedGraph::build(&host, spec, parts);
                let qs = queues(parts as usize);
                let got = bfs(&qs, &pg, 0, &OptConfig::all(), ExchangeConfig::default()).unwrap();
                assert_eq!(got.values, want, "{} × {parts}", spec.label());
            }
        }
    }

    #[test]
    fn single_partition_needs_no_exchange() {
        let host = chain_and_branches();
        let pg = PartitionedGraph::build(&host, PartitionSpec::Hash, 1);
        let qs = queues(1);
        let got = bfs(&qs, &pg, 0, &OptConfig::all(), ExchangeConfig::default()).unwrap();
        assert_eq!(got.exchange.bytes, 0);
        assert_eq!(got.exchange.msgs, 0);
        assert!(got.per_superstep.is_empty());
    }

    #[test]
    fn sssp_matches_single_device_bitwise() {
        let host = CsrHost::from_edges_weighted(
            6,
            &[(0, 1), (0, 2), (2, 1), (1, 3), (3, 4), (2, 5), (5, 4)],
            Some(&[10.0, 1.0, 2.0, 1.0, 0.5, 9.0, 0.25]),
        );
        let q1 = queues(1);
        let g = DeviceCsr::upload(&q1[0], &host).unwrap();
        let single = crate::sssp::run(&q1[0], &g, 0, &OptConfig::all()).unwrap();
        for parts in [2u32, 3] {
            let pg = PartitionedGraph::build(&host, PartitionSpec::Range, parts);
            let qs = queues(parts as usize);
            let got = sssp(&qs, &pg, 0, &OptConfig::all(), ExchangeConfig::default()).unwrap();
            let a: Vec<u32> = got.values.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = single.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "{parts} parts");
        }
    }

    #[test]
    fn cc_matches_reference_on_undirected_graph() {
        let host = CsrHost::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)])
            .to_undirected()
            .unwrap();
        let want = reference::connected_components(&host);
        for spec in [PartitionSpec::Hash, PartitionSpec::Range] {
            let pg = PartitionedGraph::build(&host, spec, 3);
            let qs = queues(3);
            let got = cc(&qs, &pg, &OptConfig::all(), ExchangeConfig::default()).unwrap();
            assert_eq!(got.values, want, "{}", spec.label());
        }
    }

    #[test]
    fn exchange_bytes_flow_on_a_cross_partition_edge() {
        // 0 -> 1 with 0 and 1 on different partitions: one superstep must
        // ship exactly one activation.
        let host = CsrHost::from_edges(2, &[(0, 1)]);
        let pg = PartitionedGraph::build(&host, PartitionSpec::Range, 2);
        let qs = queues(2);
        let got = bfs(&qs, &pg, 0, &OptConfig::all(), ExchangeConfig::default()).unwrap();
        assert_eq!(got.values, vec![0, 1]);
        assert_eq!(got.exchange.msgs, 1);
        assert!(got.exchange.bytes > 0);
        assert_eq!(got.per_superstep.len(), 1);
        assert_eq!(got.per_superstep[0].accepted, 1);
        // The sender's profiler carries the ExchangeEvent.
        let evs = qs[pg.owner_of(0) as usize].profiler().exchange_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].msgs, 1);
    }
}
