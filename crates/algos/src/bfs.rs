//! Breadth-First Search (push-based), following the paper's Listing 1:
//! an `advance` expands the frontier through unvisited vertices, a
//! `compute` stamps their distances, then the frontiers swap.

use sygraph_core::frontier::{swap, Word};
use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::inspector::{OptConfig, Tuning};
use sygraph_core::operators::{advance, compute};
use sygraph_core::types::{VertexId, INF_DIST};
use sygraph_sim::{Queue, SimError, SimResult};

use crate::common::{make_frontier, AlgoResult};
use crate::dispatch_by_word;

/// Runs BFS from `src`, returning hop distances (unreached = `INF_DIST`).
pub fn run(
    q: &Queue,
    g: &DeviceCsr,
    src: VertexId,
    opts: &OptConfig,
) -> SimResult<AlgoResult<u32>> {
    dispatch_by_word!(q, opts, g.vertex_count(), run_impl(q, g, src, opts))
}

fn run_impl<W: Word>(
    q: &Queue,
    g: &DeviceCsr,
    src: VertexId,
    opts: &OptConfig,
    tuning: &Tuning,
) -> SimResult<AlgoResult<u32>> {
    use sygraph_core::graph::DeviceGraphView;
    let n = g.vertex_count();
    assert!((src as usize) < n, "source out of range");
    let t0 = q.now_ns();

    let dist = q.malloc_device::<u32>(n)?;
    q.fill(&dist, INF_DIST);
    dist.store(src as usize, 0);

    let mut fin = make_frontier::<W>(q, n, opts)?;
    let mut fout = make_frontier::<W>(q, n, opts)?;
    fin.insert_host(src);

    let mut iter = 0u32;
    loop {
        q.mark(format!("bfs_iter{iter}"));
        // Advance: visit out-edges of the frontier; keep unvisited
        // destinations (Listing 1 lines 9-13). The two-layer compaction
        // count doubles as the emptiness check, saving a count kernel.
        let (ev, words) = advance::frontier_counted(
            q,
            g,
            fin.as_ref(),
            fout.as_ref(),
            tuning,
            |l, _u, v, _e, _w| l.load(&dist, v as usize) == INF_DIST,
        );
        ev.wait();
        if words == Some(0) || (words.is_none() && fin.is_empty(q)) {
            break;
        }
        // Compute: stamp distances on the new frontier (lines 14-17).
        compute::execute(q, fout.as_ref(), |l, v| {
            l.store(&dist, v as usize, iter + 1);
        })
        .wait();
        swap(&mut fin, &mut fout);
        fout.clear(q);
        iter += 1;
        if iter as usize > n + 1 {
            return Err(SimError::Algorithm("BFS failed to converge".into()));
        }
    }

    Ok(AlgoResult {
        values: dist.to_vec(),
        iterations: iter,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check_against_reference(host: &CsrHost, src: u32, opts: &OptConfig) {
        let q = queue();
        let g = DeviceCsr::upload(&q, host).unwrap();
        let got = run(&q, &g, src, opts).unwrap();
        assert_eq!(got.values, reference::bfs(host, src));
        assert!(got.sim_ms > 0.0);
    }

    #[test]
    fn chain_graph_all_layouts() {
        let host = CsrHost::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        for (_, opts) in OptConfig::ablation_suite() {
            check_against_reference(&host, 0, &opts);
        }
    }

    #[test]
    fn star_and_unreachable() {
        let host = CsrHost::from_edges(6, &[(0, 1), (0, 2), (0, 3), (4, 5)]);
        check_against_reference(&host, 0, &OptConfig::all());
    }

    #[test]
    fn iteration_count_equals_eccentricity_plus_one() {
        let q = queue();
        let host = CsrHost::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let out = run(&q, &g, 0, &OptConfig::all()).unwrap();
        assert_eq!(out.iterations, 5, "4 expansion levels + final empty check");
        assert_eq!(out.values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_graph_matches_reference() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 300;
        let edges: Vec<(u32, u32)> = (0..1500)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        check_against_reference(&host, 0, &OptConfig::all());
        check_against_reference(&host, 17, &OptConfig::baseline());
    }

    #[test]
    fn profiler_markers_per_iteration() {
        let q = queue();
        let host = CsrHost::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let out = run(&q, &g, 0, &OptConfig::all()).unwrap();
        let markers = q.profiler().markers();
        // one marker per expansion plus the final empty-frontier check
        assert_eq!(markers.len() as u32, out.iterations + 1);
        assert!(markers[0].label.starts_with("bfs_iter"));
    }
}
