//! Breadth-First Search, following the paper's Listing 1: an `advance`
//! expands the frontier through unvisited vertices, a `compute` stamps
//! their distances, then the frontiers swap — the cycle the
//! [`SuperstepEngine`] owns.
//!
//! Direction optimization (Beamer-style push/pull) belongs to the engine:
//! BFS merely registers the [`PullCandidates::Unvisited`] scope. On a
//! graph with a pull (CSC) view and a tuning whose `direction` policy
//! allows it, wide supersteps run bottom-up automatically; on a plain
//! [`DeviceCsr`](sygraph_core::graph::DeviceCsr) every superstep pushes,
//! exactly as before.

use sygraph_core::engine::{CheckpointState, PullCandidates, SuperstepEngine};
use sygraph_core::frontier::Word;
use sygraph_core::graph::DeviceGraphView;
use sygraph_core::inspector::{inspect, OptConfig, Tuning};
use sygraph_core::types::{VertexId, INF_DIST};
use sygraph_sim::{Queue, SimResult};

use crate::common::{guarded_init, make_frontier, AlgoResult};

/// Runs BFS from `src`, returning hop distances (unreached = `INF_DIST`).
/// The distance stamp runs as a separate `compute` pass per superstep.
pub fn run<G: DeviceGraphView + ?Sized>(
    q: &Queue,
    g: &G,
    src: VertexId,
    opts: &OptConfig,
) -> SimResult<AlgoResult<u32>> {
    let tuning = inspect(q.profile(), opts, g.vertex_count());
    match tuning.word_bits {
        32 => engine_run::<u32, G>(q, g, src, opts, false, "bfs_iter", &tuning),
        _ => engine_run::<u64, G>(q, g, src, opts, false, "bfs_iter", &tuning),
    }
}

/// Like [`run`], but fuses the distance stamp into the advance kernel:
/// one fewer kernel and host sync per superstep, bit-identical results.
pub fn run_fused<G: DeviceGraphView + ?Sized>(
    q: &Queue,
    g: &G,
    src: VertexId,
    opts: &OptConfig,
) -> SimResult<AlgoResult<u32>> {
    let tuning = inspect(q.profile(), opts, g.vertex_count());
    match tuning.word_bits {
        32 => engine_run::<u32, G>(q, g, src, opts, true, "bfs_iter", &tuning),
        _ => engine_run::<u64, G>(q, g, src, opts, true, "bfs_iter", &tuning),
    }
}

/// The engine cycle shared by [`run`], [`run_fused`] and the
/// direction-optimizing preset ([`crate::dobfs`]): only the tuning (and
/// the marker prefix) differ between them.
pub(crate) fn engine_run<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    g: &G,
    src: VertexId,
    opts: &OptConfig,
    fused: bool,
    mark_prefix: &str,
    tuning: &Tuning,
) -> SimResult<AlgoResult<u32>> {
    let n = g.vertex_count();
    assert!((src as usize) < n, "source out of range");
    let t0 = q.now_ns();

    let dist = q.malloc_device::<u32>(n)?;
    let fin = make_frontier::<W>(q, n, opts)?;
    let fout = make_frontier::<W>(q, n, opts)?;
    guarded_init(q, &opts.recovery, || {
        q.fill(&dist, INF_DIST);
        dist.store(src as usize, 0);
        fin.insert_host(src);
    })?;

    // Advance keeps unvisited destinations (Listing 1 lines 9-13);
    // compute stamps their distances (lines 14-17). The engine owns the
    // swap/clear cycle and the single convergence check per superstep.
    // The distance buffer is BFS's whole recoverable state: registering
    // it lets DeviceLost recovery resume from the engine's checkpoints.
    let ckpt: [&dyn CheckpointState; 1] = [&dist];
    // BFS visits each vertex once and its advance functor is a read-only
    // membership test, so pull supersteps may adopt-on-first-parent and
    // early-exit (the Beamer bottom-up scan).
    let mut engine = SuperstepEngine::new(q, g, *tuning, fin, fout)
        .fused(fused)
        .mark_prefix(mark_prefix)
        .max_iters(n + 1, "BFS failed to converge")
        .pull_scope(PullCandidates::Unvisited)
        .checkpoint_state(&ckpt);
    // Atomic access to dist[]: in the fused path the stamp runs in the
    // same launch as the functor's unvisited check, so lanes read cells
    // other lanes are writing. Racing lanes all write the same `iter+1`
    // (a benign same-value race on real GPUs, made explicit here).
    let iterations = engine.run(
        |l, _iter, _u, v, _e, _w| l.load_atomic(&dist, v as usize) == INF_DIST,
        Some(&|l, iter, v| l.store_atomic(&dist, v as usize, iter + 1)),
    )?;

    Ok(AlgoResult {
        values: dist.to_vec(),
        iterations,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::{CsrHost, DeviceCsr};
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check_against_reference(host: &CsrHost, src: u32, opts: &OptConfig) {
        let q = queue();
        let g = DeviceCsr::upload(&q, host).unwrap();
        let got = run(&q, &g, src, opts).unwrap();
        assert_eq!(got.values, reference::bfs(host, src));
        assert!(got.sim_ms > 0.0);
    }

    #[test]
    fn chain_graph_all_layouts() {
        let host = CsrHost::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        for (_, opts) in OptConfig::ablation_suite() {
            check_against_reference(&host, 0, &opts);
        }
    }

    #[test]
    fn star_and_unreachable() {
        let host = CsrHost::from_edges(6, &[(0, 1), (0, 2), (0, 3), (4, 5)]);
        check_against_reference(&host, 0, &OptConfig::all());
    }

    #[test]
    fn iteration_count_equals_eccentricity_plus_one() {
        let q = queue();
        let host = CsrHost::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let out = run(&q, &g, 0, &OptConfig::all()).unwrap();
        assert_eq!(out.iterations, 5, "4 expansion levels + final empty check");
        assert_eq!(out.values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_graph_matches_reference() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 300;
        let edges: Vec<(u32, u32)> = (0..1500)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        check_against_reference(&host, 0, &OptConfig::all());
        check_against_reference(&host, 17, &OptConfig::baseline());
    }

    #[test]
    fn fused_matches_unfused_bit_identically() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        let n = 250;
        let edges: Vec<(u32, u32)> = (0..1800)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        for (_, opts) in OptConfig::ablation_suite() {
            let a = run(&q, &g, 0, &opts).unwrap();
            let b = run_fused(&q, &g, 0, &opts).unwrap();
            assert_eq!(a.values, b.values);
            assert_eq!(a.iterations, b.iterations);
        }
    }

    #[test]
    fn fused_launches_strictly_fewer_kernels_per_superstep() {
        let q = queue();
        let edges: Vec<(u32, u32)> = (0..63).map(|v| (v, v + 1)).collect();
        let host = CsrHost::from_edges(64, &edges);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let k0 = q.profiler().kernel_count();
        let unfused = run(&q, &g, 0, &OptConfig::all()).unwrap();
        let k1 = q.profiler().kernel_count();
        let fused = run_fused(&q, &g, 0, &OptConfig::all()).unwrap();
        let k2 = q.profiler().kernel_count();
        assert_eq!(unfused.iterations, fused.iterations);
        let per_step_unfused = (k1 - k0) as f64 / unfused.iterations as f64;
        let per_step_fused = (k2 - k1) as f64 / fused.iterations as f64;
        assert!(
            per_step_fused < per_step_unfused,
            "fused {per_step_fused:.2} vs unfused {per_step_unfused:.2} kernels/superstep"
        );
    }

    #[test]
    fn profiler_markers_per_iteration() {
        let q = queue();
        let host = CsrHost::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let out = run(&q, &g, 0, &OptConfig::all()).unwrap();
        let markers = q.profiler().markers();
        // one marker per expansion plus the final empty-frontier check
        assert_eq!(markers.len() as u32, out.iterations + 1);
        assert!(markers[0].label.starts_with("bfs_iter"));
    }
}
