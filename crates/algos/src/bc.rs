//! Betweenness Centrality via Brandes' algorithm (§3.4): a forward BFS
//! from the source counts shortest paths (`sigma`) and records each
//! level's frontier; a backward sweep over the levels accumulates
//! dependencies (`delta`). Returns the per-vertex dependency contribution
//! of the given source (summing over sources yields exact BC).

use sygraph_core::engine::{SuperstepEngine, NO_COMPUTE};
use sygraph_core::frontier::{BitmapLike, Word};
use sygraph_core::graph::{DeviceCsr, DeviceGraphView};
use sygraph_core::inspector::{OptConfig, Tuning};
use sygraph_core::operators::advance::Advance;
use sygraph_core::operators::compute;
use sygraph_core::types::{VertexId, INF_DIST};
use sygraph_sim::{Queue, SimResult};

use crate::common::{guarded_init, make_frontier, AlgoResult};
use crate::dispatch_by_word;

/// Runs single-source Brandes BC from `src`.
pub fn run(
    q: &Queue,
    g: &DeviceCsr,
    src: VertexId,
    opts: &OptConfig,
) -> SimResult<AlgoResult<f32>> {
    Ok(run_many(q, g, &[src], opts)?
        .pop()
        .expect("one source, one result"))
}

/// Runs one rooted Brandes pass per source, sharing a single scratch
/// allocation set (depth/sigma/delta plus a recycled frontier pool)
/// across every pass — the allocation ledger shows one footprint, not
/// per-source alloc/free churn. Results are bit-identical to calling
/// [`run`] once per source.
pub fn run_many(
    q: &Queue,
    g: &DeviceCsr,
    sources: &[VertexId],
    opts: &OptConfig,
) -> SimResult<Vec<AlgoResult<f32>>> {
    dispatch_by_word!(
        q,
        opts,
        g.vertex_count(),
        run_many_impl(q, g, sources, opts)
    )
}

fn run_many_impl<W: Word>(
    q: &Queue,
    g: &DeviceCsr,
    sources: &[VertexId],
    opts: &OptConfig,
    tuning: &Tuning,
) -> SimResult<Vec<AlgoResult<f32>>> {
    let n = g.vertex_count();
    // One scratch set for every rooted pass.
    let depth = q.malloc_device::<u32>(n)?;
    let sigma = q.malloc_device::<f32>(n)?;
    let delta = q.malloc_device::<f32>(n)?;
    // Frontier pool: passes return their level frontiers (cleared) here,
    // so steady state allocates nothing.
    let mut pool: Vec<Box<dyn BitmapLike<W>>> = Vec::new();
    let mut out = Vec::with_capacity(sources.len());

    for &src in sources {
        assert!((src as usize) < n, "source out of range");
        let t0 = q.now_ns();

        // Forward phase: BFS levels, counting shortest paths. Every
        // level's frontier is retained (`rotate_retaining`) for the
        // backward sweep.
        let take = |pool: &mut Vec<Box<dyn BitmapLike<W>>>| match pool.pop() {
            Some(f) => Ok(f),
            None => make_frontier::<W>(q, n, opts),
        };
        let mut levels: Vec<Box<dyn BitmapLike<W>>> = Vec::new();
        let fin = take(&mut pool)?;
        let fout = take(&mut pool)?;
        guarded_init(q, &opts.recovery, || {
            q.fill(&depth, INF_DIST);
            q.fill(&sigma, 0.0);
            q.fill(&delta, 0.0);
            depth.store(src as usize, 0);
            sigma.store(src as usize, 1.0);
            fin.insert_host(src);
        })?;
        // Manual superstep loop (the engine cannot own the rotate —
        // Brandes retains each level), stepped through `try_step` so an
        // injected fault fails the pass typed. The sigma accumulation is
        // a `fetch_add`, not a monotone min, so a partially-run
        // superstep is not safe to retry: barrier semantics, no retries.
        let mut engine = SuperstepEngine::new(q, g, *tuning, fin, fout).mark_prefix("bc_fwd");
        while engine.try_step(
            |l, d, u, v, _e, _w| {
                let old = l.fetch_min(&depth, v as usize, d + 1);
                if old > d {
                    // v is on a shortest path through u: accumulate sigma.
                    let su = l.load(&sigma, u as usize);
                    l.fetch_add_f32(&sigma, v as usize, su);
                    old == INF_DIST
                } else {
                    false
                }
            },
            NO_COMPUTE,
        )? {
            let fresh = take(&mut pool)?;
            levels.push(engine.rotate_retaining(fresh));
        }
        let d = engine.iteration();

        // Backward phase: accumulate dependencies level by level, deepest
        // first (the deepest level has delta 0 by definition).
        for (level, frontier) in levels.iter().enumerate().rev().skip(1) {
            q.mark(format!("bc_bwd{level}"));
            let next_depth = level as u32 + 1;
            let (ev, _) =
                Advance::new(q, g, frontier.as_ref())
                    .tuning(tuning)
                    .run(|l, u, v, _e, _w| {
                        if l.load(&depth, v as usize) == next_depth {
                            let su = l.load(&sigma, u as usize);
                            let sv = l.load(&sigma, v as usize);
                            let dv = l.load(&delta, v as usize);
                            l.fetch_add_f32(&delta, u as usize, su / sv * (1.0 + dv));
                        }
                        false
                    });
            ev.wait();
            // Dependency accumulation is additive; a skipped level could
            // only be caught here, never repaired by re-running.
            q.fault_barrier()?;
        }

        // The source's own dependency does not count.
        compute::execute_all(q, n, |l, v| {
            if v == src {
                l.store(&delta, v as usize, 0.0);
            }
        })
        .wait();
        q.fault_barrier()?;

        out.push(AlgoResult {
            values: delta.to_vec(),
            iterations: d,
            sim_ms: (q.now_ns() - t0) / 1e6,
        });

        // Recycle this pass's frontiers. The engine pair converged empty
        // (convergence means an empty input, and the output was freshly
        // installed); level frontiers still hold their bits and are
        // cleared before pooling.
        let (fin, fout) = engine.into_frontiers();
        for f in levels {
            f.clear(q);
            pool.push(f);
        }
        pool.push(fin);
        pool.push(fout);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::CsrHost;
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check(host: &CsrHost, src: u32) {
        let q = queue();
        let g = DeviceCsr::upload(&q, host).unwrap();
        let got = run(&q, &g, src, &OptConfig::all()).unwrap();
        let want = reference::betweenness_from(host, src);
        for (v, (a, b)) in got.values.iter().zip(want.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-3 * (1.0 + b.abs()),
                "vertex {v}: {a} vs {b} (src {src})"
            );
        }
    }

    #[test]
    fn path_graph_center_dependency() {
        // 0 -> 1 -> 2 -> 3: from 0, delta(1)=2 (paths to 2 and 3), delta(2)=1.
        let host = CsrHost::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, 0, &OptConfig::all()).unwrap();
        assert_eq!(got.values, vec![0.0, 2.0, 1.0, 0.0]);
        check(&host, 0);
    }

    #[test]
    fn diamond_splits_dependency() {
        // 0 -> {1,2} -> 3: two shortest paths to 3; each middle gets 0.5 + 1.
        let host = CsrHost::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, 0, &OptConfig::all()).unwrap();
        assert_eq!(got.values, vec![0.0, 0.5, 0.5, 0.0]);
    }

    #[test]
    fn random_graphs_match_reference() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let n = 120u32;
        let edges: Vec<(u32, u32)> = (0..600)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        for src in [0, 5, 77] {
            check(&host, src);
        }
    }

    #[test]
    fn run_many_matches_per_source_runs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 90u32;
        let edges: Vec<(u32, u32)> = (0..450)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);
        let sources = [0u32, 13, 42, 89];
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let batch = run_many(&q, &g, &sources, &OptConfig::all()).unwrap();
        for (i, &src) in sources.iter().enumerate() {
            let q1 = queue();
            let g1 = DeviceCsr::upload(&q1, &host).unwrap();
            let solo = run(&q1, &g1, src, &OptConfig::all()).unwrap();
            assert_eq!(batch[i].values, solo.values, "source {src}");
            assert_eq!(batch[i].iterations, solo.iterations);
        }
    }

    #[test]
    fn run_many_reuses_one_scratch_set_across_passes() {
        // The satellite regression: rooted passes share depth/sigma/delta
        // and a recycled frontier pool, so (a) the MemTracker peak of a
        // 4-pass batch equals the 1-pass peak, and (b) repeating the same
        // source allocates nothing after the first pass — the allocation
        // ledger has identical length in both runs.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100u32;
        let edges: Vec<(u32, u32)> = (0..500)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges);

        let q1 = queue();
        let g1 = DeviceCsr::upload(&q1, &host).unwrap();
        run_many(&q1, &g1, &[7], &OptConfig::all()).unwrap();
        let peak1 = q1.device().mem_peak();
        let allocs1 = q1.profiler().mem_events().len();

        let q4 = queue();
        let g4 = DeviceCsr::upload(&q4, &host).unwrap();
        let results = run_many(&q4, &g4, &[7, 7, 7, 7], &OptConfig::all()).unwrap();
        assert_eq!(
            q4.device().mem_peak(),
            peak1,
            "batched passes must not widen the memory peak"
        );
        assert_eq!(
            q4.profiler().mem_events().len(),
            allocs1,
            "passes after the first must allocate nothing"
        );
        for r in &results[1..] {
            assert_eq!(
                r.values, results[0].values,
                "recycled scratch must not leak state"
            );
        }

        // Distinct sources reach different depths (level counts differ),
        // so the pool may grow — but the peak must stay within one
        // frontier of the deepest single pass, never per-source churn.
        let qd = queue();
        let gd = DeviceCsr::upload(&qd, &host).unwrap();
        let sources = [0u32, 13, 42, 89];
        run_many(&qd, &gd, &sources, &OptConfig::all()).unwrap();
        let deepest = sources
            .iter()
            .map(|&s| {
                let qs = queue();
                let gs = DeviceCsr::upload(&qs, &host).unwrap();
                run_many(&qs, &gs, &[s], &OptConfig::all()).unwrap();
                qs.device().mem_peak()
            })
            .max()
            .unwrap();
        assert_eq!(
            qd.device().mem_peak(),
            deepest,
            "multi-source peak equals the deepest pass's peak"
        );
    }

    #[test]
    fn undirected_star_center_has_high_bc() {
        let host = CsrHost::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, 1, &OptConfig::all()).unwrap();
        // From leaf 1, all paths to 2,3,4 pass through hub 0.
        assert_eq!(got.values[0], 3.0);
        check(&host, 1);
    }
}
