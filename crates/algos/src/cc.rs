//! Connected Components via label propagation (§3.4, after Stergiou et
//! al.): every vertex starts with its own id as label and pushes the
//! minimum along edges until no label changes. The input must be
//! symmetric (undirected) for component semantics; use
//! [`sygraph_core::graph::CsrHost::to_undirected`] first if needed.

use sygraph_core::engine::{CheckpointState, SuperstepEngine, NO_COMPUTE};
use sygraph_core::frontier::{BitmapLike, Word};
use sygraph_core::graph::DeviceGraphView;
use sygraph_core::inspector::{inspect, OptConfig, Tuning};
use sygraph_sim::{Queue, SimResult};

use crate::common::{guarded_init, make_frontier, AlgoResult};

/// Runs label-propagation CC; returns per-vertex component labels
/// (the minimum vertex id of each component).
///
/// On a graph with a pull (CSC) view, the engine may run wide supersteps
/// in the pull direction under the default
/// [`PullCandidates::AllVertices`](sygraph_core::engine::PullCandidates)
/// scope — safe here because the functor sees exactly the push edge set
/// (CC inputs are symmetric, so CSC enumerates the same edges as CSR).
pub fn run<G: DeviceGraphView + ?Sized>(
    q: &Queue,
    g: &G,
    opts: &OptConfig,
) -> SimResult<AlgoResult<u32>> {
    let tuning = inspect(q.profile(), opts, g.vertex_count());
    match tuning.word_bits {
        32 => run_impl::<u32, G>(q, g, opts, &tuning),
        _ => run_impl::<u64, G>(q, g, opts, &tuning),
    }
}

/// Label propagation with Stergiou-style *shortcutting*: after each
/// propagation superstep, a `compute` pass replaces every label by its
/// label's label (`l[v] ← l[l[v]]`), collapsing label chains so minima
/// travel exponentially fast. On high-diameter graphs this cuts the
/// superstep count from O(diameter) to roughly O(log diameter) rounds of
/// useful work (the paper's CC follows Stergiou et al., which is built
/// on exactly this idea).
pub fn run_shortcutting<G: DeviceGraphView + ?Sized>(
    q: &Queue,
    g: &G,
    opts: &OptConfig,
) -> SimResult<AlgoResult<u32>> {
    let tuning = inspect(q.profile(), opts, g.vertex_count());
    match tuning.word_bits {
        32 => run_shortcut_impl::<u32, G>(q, g, opts, &tuning),
        _ => run_shortcut_impl::<u64, G>(q, g, opts, &tuning),
    }
}

fn run_shortcut_impl<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    g: &G,
    opts: &OptConfig,
    tuning: &Tuning,
) -> SimResult<AlgoResult<u32>> {
    let n = g.vertex_count();
    let t0 = q.now_ns();

    let labels = q.malloc_device::<u32>(n)?;
    let fin = make_frontier::<W>(q, n, opts)?;
    let fout = make_frontier::<W>(q, n, opts)?;
    guarded_init(q, &opts.recovery, || {
        q.parallel_for("cc_init", n, |l, v| {
            l.store(&labels, v, v as u32);
        });
        fin.fill_all(q);
    })?;

    let ckpt: [&dyn CheckpointState; 1] = [&labels];
    let mut engine = SuperstepEngine::new(q, g, *tuning, fin, fout)
        .mark_prefix("ccs_iter")
        .max_iters(n + 1, "shortcutting CC diverged")
        .checkpoint_state(&ckpt);
    // Shortcut pass (post-step hook): chase label chains to their root
    // (pointer jumping, as in union-find's find). A change re-activates
    // the vertex so the shortened label keeps propagating.
    // All labels[] traffic in the shortcut pass is atomic: lanes chase
    // chains through cells other lanes are rewriting in the same launch.
    // A racing write only ever replaces a label with a smaller one from
    // the same chain, so any interleaving converges to the same roots.
    let shortcut = |q: &Queue, _iter: u32, out: &dyn BitmapLike<W>| {
        q.parallel_for("cc_shortcut", n, |l, v| {
            let start = l.load_atomic(&labels, v);
            let mut root = start;
            loop {
                let next = l.load_atomic(&labels, root as usize);
                if next >= root {
                    break;
                }
                root = next;
                l.compute(2);
            }
            if root < start {
                l.store_atomic(&labels, v, root);
                out.insert_lane(l, v as u32);
            }
        });
    };
    let iterations = engine.run_with_post(
        |l, _iter, u, v, _e, _w| {
            let lu = l.load_atomic(&labels, u as usize);
            let old = l.fetch_min(&labels, v as usize, lu);
            lu < old
        },
        NO_COMPUTE,
        Some(&shortcut),
    )?;

    Ok(AlgoResult {
        values: labels.to_vec(),
        iterations,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

fn run_impl<W: Word, G: DeviceGraphView + ?Sized>(
    q: &Queue,
    g: &G,
    opts: &OptConfig,
    tuning: &Tuning,
) -> SimResult<AlgoResult<u32>> {
    let n = g.vertex_count();
    let t0 = q.now_ns();

    let labels = q.malloc_device::<u32>(n)?;
    let fin = make_frontier::<W>(q, n, opts)?;
    let fout = make_frontier::<W>(q, n, opts)?;
    // Every vertex starts by distributing its label to its neighbors.
    guarded_init(q, &opts.recovery, || {
        q.parallel_for("cc_init", n, |l, v| {
            l.store(&labels, v, v as u32);
        });
        fin.fill_all(q);
    })?;

    let ckpt: [&dyn CheckpointState; 1] = [&labels];
    let mut engine = SuperstepEngine::new(q, g, *tuning, fin, fout)
        .mark_prefix("cc_iter")
        .max_iters(n + 1, "CC failed to converge")
        .checkpoint_state(&ckpt);
    // labels[u] is read atomically: neighbours may be lowering it via
    // fetch_min in this same launch; a stale value only costs an extra
    // superstep of propagation.
    let iterations = engine.run(
        |l, _iter, u, v, _e, _w| {
            let lu = l.load_atomic(&labels, u as usize);
            let old = l.fetch_min(&labels, v as usize, lu);
            lu < old
        },
        NO_COMPUTE,
    )?;

    Ok(AlgoResult {
        values: labels.to_vec(),
        iterations,
        sim_ms: (q.now_ns() - t0) / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sygraph_core::graph::{CsrHost, DeviceCsr};
    use sygraph_sim::{Device, DeviceProfile};

    fn queue() -> Queue {
        Queue::new(Device::new(DeviceProfile::host_test()))
    }

    fn check(host: &CsrHost) {
        let q = queue();
        let g = DeviceCsr::upload(&q, host).unwrap();
        let got = run(&q, &g, &OptConfig::all()).unwrap();
        assert_eq!(got.values, reference::connected_components(host));
    }

    #[test]
    fn two_components_and_isolated() {
        // {0,1,2} u {3,4}, 5 isolated
        let host = CsrHost::from_edges(6, &[(0, 1), (1, 2), (3, 4)])
            .to_undirected()
            .unwrap();
        check(&host);
    }

    #[test]
    fn single_chain() {
        let edges: Vec<(u32, u32)> = (0..19).map(|v| (v, v + 1)).collect();
        let host = CsrHost::from_edges(20, &edges).to_undirected().unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run(&q, &g, &OptConfig::all()).unwrap();
        assert!(got.values.iter().all(|&l| l == 0), "one component");
    }

    #[test]
    fn random_graph_matches_union_find() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let n = 400u32;
        // sparse: expect several components
        let edges: Vec<(u32, u32)> = (0..300)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges)
            .to_undirected()
            .unwrap();
        check(&host);
    }

    #[test]
    fn shortcutting_matches_plain_cc_with_fewer_iterations() {
        // A chain whose vertex ids are shuffled, so min-labels cannot ride
        // the simulator's ascending word sweep: plain label propagation
        // needs many supersteps, shortcutting collapses the chains.
        use rand::prelude::*;
        let n = 256u32;
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(4));
        let edges: Vec<(u32, u32)> = (0..n as usize - 1)
            .map(|i| (perm[i], perm[i + 1]))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges)
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let plain = run(&q, &g, &OptConfig::all()).unwrap();
        let short = run_shortcutting(&q, &g, &OptConfig::all()).unwrap();
        assert_eq!(plain.values, short.values);
        assert_eq!(short.values, reference::connected_components(&host));
        assert!(
            short.iterations < plain.iterations,
            "shortcutting {} vs plain {} supersteps",
            short.iterations,
            plain.iterations
        );
    }

    #[test]
    fn shortcutting_correct_on_random_graph() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        let n = 300u32;
        let edges: Vec<(u32, u32)> = (0..250)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let host = CsrHost::from_edges(n as usize, &edges)
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let got = run_shortcutting(&q, &g, &OptConfig::all()).unwrap();
        assert_eq!(got.values, reference::connected_components(&host));
    }

    #[test]
    fn all_layouts_agree() {
        let host = CsrHost::from_edges(8, &[(0, 1), (2, 3), (4, 5), (5, 6)])
            .to_undirected()
            .unwrap();
        let q = queue();
        let g = DeviceCsr::upload(&q, &host).unwrap();
        let a = run(&q, &g, &OptConfig::all()).unwrap();
        let b = run(&q, &g, &OptConfig::baseline()).unwrap();
        assert_eq!(a.values, b.values);
    }
}
