//! Sequential host reference implementations used to verify the GPU
//! algorithms (and the baseline frameworks) in tests.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use sygraph_core::graph::CsrHost;
use sygraph_core::types::{VertexId, INF_DIST};

/// BFS hop distances from `src`; unreachable vertices get [`INF_DIST`].
pub fn bfs(g: &CsrHost, src: VertexId) -> Vec<u32> {
    let n = g.vertex_count();
    let mut dist = vec![INF_DIST; n];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == INF_DIST {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Dijkstra shortest-path distances from `src` (non-negative weights;
/// unweighted edges count 1.0). Unreachable vertices get `f32::INFINITY`.
pub fn dijkstra(g: &CsrHost, src: VertexId) -> Vec<f32> {
    let n = g.vertex_count();
    let mut dist = vec![f32::INFINITY; n];
    dist[src as usize] = 0.0;
    // (ordered-dist-bits, vertex): f32 bits of non-negative floats sort
    // like the floats themselves.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((dbits, u))) = heap.pop() {
        let du = f32::from_bits(dbits);
        if du > dist[u as usize] {
            continue;
        }
        for (k, &v) in g.neighbors(u).iter().enumerate() {
            let w = g.neighbor_weights(u).map_or(1.0, |ws| ws[k]);
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let nd = du + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd.to_bits(), v)));
            }
        }
    }
    dist
}

/// Connected-component labels via union-find, treating edges as
/// undirected. Each vertex's label is the smallest vertex id in its
/// component (matching label-propagation's fixpoint).
pub fn connected_components(g: &CsrHost) -> Vec<u32> {
    let n = g.vertex_count();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut c = x;
        while parent[c as usize] != r {
            let next = parent[c as usize];
            parent[c as usize] = r;
            c = next;
        }
        r
    }
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                // union by smaller id so the final label is the min id
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Exact Brandes betweenness centrality contribution of one source on an
/// unweighted directed graph (no endpoint counting, no normalization —
/// same convention as the device implementation).
pub fn betweenness_from(g: &CsrHost, src: VertexId) -> Vec<f32> {
    let n = g.vertex_count();
    let mut sigma = vec![0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut delta = vec![0f64; n];
    let mut order: Vec<u32> = Vec::new();
    let mut queue = VecDeque::new();
    sigma[src as usize] = 1.0;
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if dist[v as usize] == i64::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
            if dist[v as usize] == dist[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    for &u in order.iter().rev() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == dist[u as usize] + 1 {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
    }
    delta[src as usize] = 0.0;
    delta.iter().map(|&d| d as f32).collect()
}

/// Power-iteration PageRank with damping `d`, `iters` sweeps, uniform
/// teleport. Dangling vertices redistribute uniformly.
pub fn pagerank(g: &CsrHost, d: f32, iters: u32) -> Vec<f32> {
    let n = g.vertex_count();
    let mut rank = vec![1.0 / n as f32; n];
    let mut next = vec![0f32; n];
    for _ in 0..iters {
        let mut dangling = 0.0f32;
        next.fill((1.0 - d) / n as f32);
        for u in 0..n as u32 {
            let deg = g.degree(u);
            if deg == 0 {
                dangling += rank[u as usize];
                continue;
            }
            let share = d * rank[u as usize] / deg as f32;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let spread = d * dangling / n as f32;
        for x in next.iter_mut() {
            *x += spread;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrHost {
        // 0-1-2 path plus isolated 3; undirected
        CsrHost::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1)])
    }

    #[test]
    fn bfs_distances() {
        let d = bfs(&sample(), 0);
        assert_eq!(d, vec![0, 1, 2, INF_DIST]);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = sample();
        let d = dijkstra(&g, 0);
        assert_eq!(d[..3], [0.0, 1.0, 2.0]);
        assert!(d[3].is_infinite());
    }

    #[test]
    fn dijkstra_weighted_shortcut() {
        // 0->1 (10), 0->2 (1), 2->1 (2): best 0->1 is 3 via 2.
        let g = CsrHost::from_edges_weighted(3, &[(0, 1), (0, 2), (2, 1)], Some(&[10.0, 1.0, 2.0]));
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 3.0, 1.0]);
    }

    #[test]
    fn cc_labels() {
        let l = connected_components(&sample());
        assert_eq!(l, vec![0, 0, 0, 3]);
    }

    #[test]
    fn bc_on_path_center() {
        // path 0-1-2 (undirected): vertex 1 lies on the 0->2 shortest path.
        let b = betweenness_from(&sample(), 0);
        assert_eq!(b[1], 1.0);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[2], 0.0);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        // star: 1,2,3 -> 0
        let g = CsrHost::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let r = pagerank(&g, 0.85, 50);
        let sum: f32 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        assert!(r[0] > r[1]);
        assert!((r[1] - r[2]).abs() < 1e-6);
    }
}
