//! `sygraph-cli` — run SYgraph algorithms from the command line.
//!
//! ```text
//! sygraph-cli <algo> <graph> [options]
//!
//! algo    bfs | sssp | cc | bc | pagerank | dobfs | delta | triangles |
//!         kcore | closeness | reach
//! graph   a file (.mtx, .el, .gr, .sygb) or a generated dataset:
//!         gen:ca gen:usa gen:hollyw gen:indo gen:journal gen:kron gen:twitter
//!         (generated at bench scale; set SYG_SCALE=test for the
//!         small CI-sized variants)
//!
//! options
//!   --src <v>         source vertex (default 0; ignored by cc/pagerank)
//!   --sources <a,b,…> batch of source vertices: bfs/bc/closeness/reach run
//!                     all of them in one W-lane multi-source pass (the
//!                     engine packs W bit-lanes beside the frontier bitmap
//!                     and expands every source through shared supersteps)
//!   --batch-width <w> lanes per multi-source batch: 8|16|32|64 (default 32)
//!   --device <name>   v100s | max1100 | mi100 | host (default v100s)
//!   --undirected      symmetrize the graph before running
//!   --no-msi --no-cf --no-2lb    disable individual optimizations
//!   --balancing <s>   advance load balancing: wg | bucketed | auto (default auto)
//!   --frontier <r>    frontier representation: dense | sparse | auto (default auto)
//!   --direction <d>   traversal direction: push | pull | auto (default auto).
//!                     pull and auto build the graph's pull (CSC) view and
//!                     let the engine run Beamer-style bottom-up supersteps;
//!                     without the flag only dobfs pays for the CSC view
//!   --devices <n>     shard the graph across n simulated devices and run
//!                     the partitioned BSP path (bfs|sssp|cc). Each device
//!                     gets its own queue; frontiers exchange halo
//!                     activations at every superstep boundary
//!   --partition <p>   edge-cut partitioner: hash | range (default hash)
//!   --delta <x>       bucket width for the delta algorithm (default 2)
//!   --json            machine-readable output
//!   --profile         print the per-kernel profile afterwards (with
//!                     --frontier auto, includes the per-superstep
//!                     representation trace and switch counts; with
//!                     --sources, the per-superstep active-lane trace and
//!                     lane-retirement total)
//!   --sanitize        run under the device-memory sanitizer: every kernel
//!                     access is shadow-tracked for out-of-bounds,
//!                     use-after-free and non-atomic data races, and racy
//!                     launches are re-executed under a shuffled workgroup
//!                     order to surface order dependence. Prints the
//!                     findings report; exits non-zero if any were found.
//!   --inject-faults <spec>   attach a deterministic fault plan to the
//!                     device queue, e.g. "transient@4,oom@9,lost@15" or
//!                     "oom-prob=0.01,seed=7" (see sygraph_sim::FaultPlan)
//!   --retry <n>       allow n retries per superstep and enable the OOM
//!                     degradation ladder (default 0 = fail fast)
//!   --checkpoint-every <k>   checkpoint algorithm state every k
//!                     supersteps so device-lost faults can resume
//! ```
//!
//! A second mode starts the long-running analytics service (see
//! `sygraph-service` and DESIGN.md §15):
//!
//! ```text
//! sygraph-cli serve [--addr HOST:PORT] [--device NAME] [--workers N]
//!                   [--batch-window-ms MS] [--batch-width 8|16|32|64]
//!                   [--job-mem-budget BYTES[K|M|G]] [--cache-entries N]
//!                   [--graphs name=spec[+undirected][+pull],...]
//!                   [--max-queue N] [--default-timeout-ms MS]
//!                   [--max-timeout-ms MS] [--inject-faults SPEC]
//!                   [--retry N] [--checkpoint-every K]
//!                   [--drain-deadline-ms MS] [--breaker-threshold N]
//!                   [--breaker-open-ms MS] [--http-read-timeout-ms MS]
//! ```
//!
//! The server installs SIGTERM/SIGINT handlers: on either signal it
//! stops admissions, drains queued and in-flight jobs up to the drain
//! deadline (DESIGN.md §16), prints the drain summary, and exits 0.

use std::collections::HashMap;
use std::process::ExitCode;

use sygraph_core::engine::RecoveryPolicy;
use sygraph_core::frontier::exchange::ExchangeConfig;
use sygraph_core::graph::{validate_sources, CsrHost, Graph, PartitionSpec, PartitionedGraph};
use sygraph_core::inspector::{Balancing, Direction, OptConfig, Representation};
use sygraph_sim::{Device, DeviceProfile, FaultPlan, Queue};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sygraph-cli <bfs|sssp|cc|bc|pagerank|dobfs|delta|triangles|kcore|closeness|reach> <graph.{{mtx,el,gr,sygb}}|gen:NAME> \
         [--src V] [--sources A,B,...] [--batch-width 8|16|32|64] \
         [--device v100s|max1100|mi100|host] [--undirected] \
         [--no-msi] [--no-cf] [--no-2lb] [--balancing wg|bucketed|auto] \
         [--frontier dense|sparse|auto] [--direction push|pull|auto] \
         [--devices N] [--partition hash|range] \
         [--delta X] [--json] [--profile] [--sanitize] \
         [--inject-faults SPEC] [--retry N] [--checkpoint-every K]"
    );
    ExitCode::from(2)
}

fn load_graph(spec: &str) -> Result<CsrHost, String> {
    if let Some(name) = spec.strip_prefix("gen:") {
        // Same convention as the bench binaries' scale_from_env.
        let scale = match std::env::var("SYG_SCALE").as_deref() {
            Ok("test") => sygraph_gen::Scale::Test,
            _ => sygraph_gen::Scale::Bench,
        };
        let ds = match name {
            "ca" => sygraph_gen::datasets::road_ca(scale),
            "usa" => sygraph_gen::datasets::road_usa(scale),
            "hollyw" => sygraph_gen::datasets::hollywood(scale),
            "indo" => sygraph_gen::datasets::indochina(scale),
            "journal" => sygraph_gen::datasets::livejournal(scale),
            "kron" => sygraph_gen::datasets::kron(scale),
            "twitter" => sygraph_gen::datasets::twitter(scale),
            other => return Err(format!("unknown generated dataset '{other}'")),
        };
        return Ok(ds.host);
    }
    let file = std::fs::File::open(spec).map_err(|e| format!("{spec}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let result = if spec.ends_with(".mtx") {
        sygraph_io::mtx::read(reader)
    } else if spec.ends_with(".gr") {
        sygraph_io::dimacs::read(reader)
    } else if spec.ends_with(".sygb") {
        sygraph_io::binary::read(reader)
    } else {
        sygraph_io::edgelist::read(reader, 0)
    };
    result.map_err(|e| format!("{spec}: {e}"))
}

fn serve_usage() -> ExitCode {
    eprintln!(
        "usage: sygraph-cli serve [--addr HOST:PORT] [--device v100s|max1100|mi100|host] \
         [--workers N] [--batch-window-ms MS] [--batch-width 8|16|32|64] \
         [--job-mem-budget BYTES[K|M|G]] [--cache-entries N] \
         [--graphs name=spec[+undirected][+pull],...] [--paused] \
         [--max-queue N] [--default-timeout-ms MS] [--max-timeout-ms MS] \
         [--inject-faults SPEC] [--retry N] [--checkpoint-every K] \
         [--drain-deadline-ms MS] [--breaker-threshold N] [--breaker-open-ms MS] \
         [--http-read-timeout-ms MS]"
    );
    ExitCode::from(2)
}

/// Set by the SIGTERM/SIGINT handler; the serve loop polls it.
static TERMINATE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_terminate(_signum: i32) {
    TERMINATE.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs `on_terminate` for SIGTERM (15) and SIGINT (2) via the libc
/// `signal` symbol std already links — no signal crate in this offline
/// workspace. Only flag-setting happens in the handler; the drain runs
/// on the main thread.
fn install_terminate_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_terminate as *const () as usize); // SIGTERM
        signal(2, on_terminate as *const () as usize); // SIGINT
    }
}

/// Parses `--job-mem-budget` style sizes: plain bytes or a K/M/G suffix.
fn parse_bytes(text: &str) -> Result<u64, String> {
    let (digits, mult) = match text.as_bytes().last() {
        Some(b'K') | Some(b'k') => (&text[..text.len() - 1], 1u64 << 10),
        Some(b'M') | Some(b'm') => (&text[..text.len() - 1], 1u64 << 20),
        Some(b'G') | Some(b'g') => (&text[..text.len() - 1], 1u64 << 30),
        _ => (text, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad size {text:?}"))
}

/// `sygraph-cli serve`: start the analytics service and block.
fn serve_main(args: &[String]) -> ExitCode {
    use sygraph_service::{HttpServer, RegisterOptions, Service, ServiceConfig};

    let mut addr = "127.0.0.1:7878".to_string();
    let mut device = "v100s".to_string();
    let mut cfg = ServiceConfig::default();
    let mut graph_specs: Vec<String> = Vec::new();
    let mut http_read_timeout_ms: u64 = 30_000;
    let mut retry: Option<u32> = None;
    let mut checkpoint_every: Option<u32> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("{name} needs a value");
                serve_usage()
            })
        };
        match flag.as_str() {
            "--addr" => match value("--addr") {
                Ok(v) => addr = v,
                Err(e) => return e,
            },
            "--device" => match value("--device") {
                Ok(v) => device = v,
                Err(e) => return e,
            },
            "--workers" => match value("--workers").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.workers = n,
                _ => return serve_usage(),
            },
            "--batch-window-ms" => match value("--batch-window-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.batch_window_ms = n,
                _ => return serve_usage(),
            },
            "--batch-width" => match value("--batch-width").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.batch_width = n,
                _ => return serve_usage(),
            },
            "--job-mem-budget" => match value("--job-mem-budget").map(|v| parse_bytes(&v)) {
                Ok(Ok(n)) => cfg.job_mem_budget = Some(n),
                Ok(Err(e)) => {
                    eprintln!("{e}");
                    return serve_usage();
                }
                Err(e) => return e,
            },
            "--cache-entries" => match value("--cache-entries").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.cache_entries = n,
                _ => return serve_usage(),
            },
            "--graphs" => match value("--graphs") {
                Ok(v) => graph_specs.extend(v.split(',').map(str::to_string)),
                Err(e) => return e,
            },
            "--paused" => cfg.start_paused = true,
            "--max-queue" => match value("--max-queue").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.max_queue = n,
                _ => return serve_usage(),
            },
            "--default-timeout-ms" => match value("--default-timeout-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.default_timeout_ms = Some(n),
                _ => return serve_usage(),
            },
            "--max-timeout-ms" => match value("--max-timeout-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.max_timeout_ms = n,
                _ => return serve_usage(),
            },
            "--inject-faults" => match value("--inject-faults").map(|v| FaultPlan::parse(&v)) {
                Ok(Ok(plan)) => cfg.fault_plan = Some(plan),
                Ok(Err(e)) => {
                    eprintln!("bad --inject-faults spec: {e}");
                    return serve_usage();
                }
                Err(e) => return e,
            },
            "--retry" => match value("--retry").map(|v| v.parse()) {
                Ok(Ok(n)) => retry = Some(n),
                _ => return serve_usage(),
            },
            "--checkpoint-every" => match value("--checkpoint-every").map(|v| v.parse()) {
                Ok(Ok(n)) => checkpoint_every = Some(n),
                _ => return serve_usage(),
            },
            "--drain-deadline-ms" => match value("--drain-deadline-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.drain_deadline_ms = n,
                _ => return serve_usage(),
            },
            "--breaker-threshold" => match value("--breaker-threshold").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.breaker_threshold = n,
                _ => return serve_usage(),
            },
            "--breaker-open-ms" => match value("--breaker-open-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.breaker_open_ms = n,
                _ => return serve_usage(),
            },
            "--http-read-timeout-ms" => match value("--http-read-timeout-ms").map(|v| v.parse()) {
                Ok(Ok(n)) => http_read_timeout_ms = n,
                _ => return serve_usage(),
            },
            other => {
                eprintln!("unknown option {other}");
                return serve_usage();
            }
        }
    }
    cfg.profile = match device.as_str() {
        "v100s" => DeviceProfile::v100s(),
        "max1100" => DeviceProfile::max1100(),
        "mi100" => DeviceProfile::mi100(),
        "host" => DeviceProfile::host_test(),
        other => {
            eprintln!("unknown device {other}");
            return serve_usage();
        }
    };
    // Recovery policy: explicit --retry/--checkpoint-every win; a fault
    // plan with neither defaults to the resilient policy, since running
    // chaos against fail-fast workers tests nothing but the breaker.
    cfg.recovery = match (retry, checkpoint_every) {
        (None, None) if cfg.fault_plan.is_some() => RecoveryPolicy::resilient(3, 4),
        (None, None) => RecoveryPolicy::default(),
        (r, c) => {
            let mut p = RecoveryPolicy::resilient(r.unwrap_or(3), c.unwrap_or(4));
            p.degrade_on_oom = r.unwrap_or(3) > 0;
            p
        }
    };

    let service = match Service::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start service: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Preload graphs: `name=spec[+undirected][+pull]`.
    for entry in &graph_specs {
        let Some((name, rest)) = entry.split_once('=') else {
            eprintln!("bad --graphs entry {entry:?} (expected name=spec)");
            return serve_usage();
        };
        let mut options = RegisterOptions::default();
        let mut parts = rest.split('+');
        let spec = parts.next().unwrap_or_default();
        for flag in parts {
            match flag {
                "undirected" => options.undirected = true,
                "pull" => options.pull = true,
                other => {
                    eprintln!("bad --graphs flag {other:?} in {entry:?}");
                    return serve_usage();
                }
            }
        }
        let host = match load_graph(spec) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error loading graph {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match service.register_graph(name, host, options) {
            Ok(g) => eprintln!(
                "registered {name}: {} vertices, {} edges (version {})",
                g.vertex_count(),
                g.edge_count(),
                g.version
            ),
            Err(e) => {
                eprintln!("error registering graph {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let service = std::sync::Arc::new(service);
    let mut server = match HttpServer::serve_with_read_timeout(
        service.clone(),
        &addr,
        std::time::Duration::from_millis(http_read_timeout_ms),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    install_terminate_handlers();
    println!("listening on http://{}", server.addr());
    while !TERMINATE.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::park_timeout(std::time::Duration::from_millis(100));
    }

    // Graceful drain: stop admissions, finish what we can within the
    // deadline, then report and exit cleanly.
    eprintln!(
        "signal received; draining (deadline {} ms)",
        cfg.drain_deadline_ms
    );
    let report = service.drain(std::time::Duration::from_millis(cfg.drain_deadline_ms));
    server.shutdown();
    eprintln!(
        "drained: clean={} done={} failed={} shed_queued={} cancelled_in_flight={}",
        report.clean,
        report.jobs_done,
        report.jobs_failed,
        report.shed_queued,
        report.cancelled_in_flight
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.len() < 2 {
        return usage();
    }
    let algo = args[0].as_str();
    let graph_spec = args[1].as_str();

    // flag parsing
    let mut src: u32 = 0;
    let mut msources: Vec<u32> = Vec::new();
    let mut batch_width: u32 = 32;
    let mut device = "v100s".to_string();
    let mut undirected = false;
    let mut opts = OptConfig::all();
    let mut direction_explicit = false;
    let mut delta = 2.0f32;
    let mut json = false;
    let mut profile = false;
    let mut sanitize = false;
    let mut fault_spec: Option<String> = None;
    let mut retry: u32 = 0;
    let mut checkpoint_every: u32 = 0;
    let mut devices: u32 = 1;
    let mut partition = PartitionSpec::Hash;
    let mut partition_explicit = false;
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--src" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => src = v,
                None => return usage(),
            },
            "--sources" => {
                let parsed: Option<Vec<u32>> = it
                    .next()
                    .map(|s| s.split(',').map(|v| v.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(v) if !v.is_empty() => msources = v,
                    _ => return usage(),
                }
            }
            "--batch-width" => match it.next().and_then(|v| v.parse().ok()) {
                Some(w @ (8 | 16 | 32 | 64)) => batch_width = w,
                _ => return usage(),
            },
            "--device" => match it.next() {
                Some(d) => device = d.clone(),
                None => return usage(),
            },
            "--undirected" => undirected = true,
            "--no-msi" => opts.msi = false,
            "--no-cf" => opts.coarsening = false,
            "--no-2lb" => opts.two_layer = false,
            "--balancing" => match it.next().map(String::as_str) {
                Some("wg") => opts.balancing = Balancing::WorkgroupMapped,
                Some("bucketed") => opts.balancing = Balancing::Bucketed,
                Some("auto") => opts.balancing = Balancing::Auto,
                _ => return usage(),
            },
            "--frontier" => match it.next().map(String::as_str) {
                Some("dense") => opts.representation = Representation::Dense,
                Some("sparse") => opts.representation = Representation::Sparse,
                Some("auto") => opts.representation = Representation::Auto,
                _ => return usage(),
            },
            "--direction" => {
                direction_explicit = true;
                match it.next().map(String::as_str) {
                    Some("push") => opts.direction = Direction::Push,
                    Some("pull") => opts.direction = Direction::Pull,
                    Some("auto") => opts.direction = Direction::Auto,
                    _ => return usage(),
                }
            }
            "--delta" | "--k" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => delta = v,
                None => return usage(),
            },
            "--json" => json = true,
            "--profile" => profile = true,
            "--sanitize" => sanitize = true,
            "--inject-faults" => match it.next() {
                Some(s) => fault_spec = Some(s.clone()),
                None => return usage(),
            },
            "--retry" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => retry = v,
                None => return usage(),
            },
            "--checkpoint-every" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => checkpoint_every = v,
                None => return usage(),
            },
            "--devices" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => devices = v,
                _ => return usage(),
            },
            "--partition" => match it.next().and_then(|s| PartitionSpec::parse(s)) {
                Some(p) => {
                    partition = p;
                    partition_explicit = true;
                }
                None => return usage(),
            },
            other => {
                eprintln!("unknown option {other}");
                return usage();
            }
        }
    }

    let profile_dev = match device.as_str() {
        "v100s" => DeviceProfile::v100s(),
        "max1100" => DeviceProfile::max1100(),
        "mi100" => DeviceProfile::mi100(),
        "host" => DeviceProfile::host_test(),
        other => {
            eprintln!("unknown device {other}");
            return usage();
        }
    };

    let mut host = match load_graph(graph_spec) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error loading graph: {e}");
            return ExitCode::FAILURE;
        }
    };
    if undirected || algo == "cc" || algo == "triangles" || algo == "kcore" {
        host = match host.to_undirected() {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error loading graph: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    if host.vertex_count() == 0 {
        eprintln!("graph is empty");
        return ExitCode::FAILURE;
    }
    // The same typed boundary check the service request path uses: an
    // out-of-range --src/--sources is rejected here, never handed to the
    // engine where it would wrap or panic.
    if let Err(e) = validate_sources(host.vertex_count(), &[src])
        .and_then(|()| validate_sources(host.vertex_count(), &msources))
    {
        let e: sygraph_sim::SimError = e.into();
        eprintln!("run failed: {e}");
        return ExitCode::FAILURE;
    }

    if retry > 0 || checkpoint_every > 0 {
        opts.recovery = RecoveryPolicy {
            max_retries: retry,
            backoff_ns: 1_000,
            degrade_on_oom: retry > 0,
            checkpoint_every,
        };
    }

    // Partitioned multi-device path: shard the CSR, one queue per device,
    // superstep-aligned BSP with halo exchange at every boundary.
    if devices > 1 || partition_explicit {
        if sanitize {
            eprintln!("--sanitize is single-device only");
            return ExitCode::FAILURE;
        }
        if !msources.is_empty() {
            eprintln!("--sources is single-device only");
            return ExitCode::FAILURE;
        }
        if !matches!(algo, "bfs" | "sssp" | "cc") {
            eprintln!("--devices supports bfs|sssp|cc, not {algo}");
            return usage();
        }
        return run_partitioned(
            algo,
            graph_spec,
            &host,
            &profile_dev,
            &opts,
            partition,
            devices,
            src,
            fault_spec.as_deref(),
            json,
            profile,
        );
    }

    let mut q = if sanitize {
        // Fixed seed so a reported order dependence reproduces exactly.
        Queue::with_sanitizer(Device::new(profile_dev.clone()), 0xBADC0DE)
    } else {
        Queue::new(Device::new(profile_dev.clone()))
    };
    if let Some(spec) = &fault_spec {
        match FaultPlan::parse(spec) {
            Ok(plan) => q.attach_faults(plan),
            Err(e) => {
                eprintln!("bad --inject-faults spec: {e}");
                return usage();
            }
        }
    }
    let q = q;
    // dobfs always needs the CSC view; batched BC wants it for its
    // in-edge backward sweep; other traversals only pay for it when the
    // user explicitly opts into a pull-capable direction.
    let needs_pull = algo == "dobfs"
        || (algo == "bc" && !msources.is_empty())
        || (direction_explicit && opts.direction != Direction::Push);
    let g = match if needs_pull {
        Graph::with_pull(&q, &host)
    } else {
        Graph::new(&q, &host)
    } {
        Ok(g) => g,
        Err(e) => {
            eprintln!("device error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // run
    enum Out {
        U32(Vec<u32>, u32, f64),
        F32(Vec<f32>, u32, f64),
        Multi {
            iterations: u32,
            batches: u32,
            sim_ms: f64,
            summary: String,
            sources: Vec<u32>,
            values: serde_json::Value,
        },
    }
    // A --sources batch (and the inherently multi-source closeness/reach
    // algorithms) goes through the W-lane batched path; everything else
    // keeps the single-source entry points.
    let result = if !msources.is_empty() || algo == "closeness" || algo == "reach" {
        use sygraph_algos::multi;
        let srcs = if msources.is_empty() {
            vec![src]
        } else {
            msources.clone()
        };
        match algo {
            "bfs" => multi::bfs_multi(&q, &g.csr, &srcs, batch_width, &opts).map(|r| {
                let n = host.vertex_count();
                let reached: usize = r
                    .per_source
                    .iter()
                    .map(|d| d.iter().filter(|&&x| x != u32::MAX).count())
                    .sum();
                Out::Multi {
                    iterations: r.iterations,
                    batches: r.batches,
                    sim_ms: r.sim_ms,
                    summary: format!(
                        "{} sources, {reached}/{} vertices reached in total",
                        r.sources.len(),
                        n * r.sources.len()
                    ),
                    sources: r.sources,
                    values: serde_json::json!(r.per_source),
                }
            }),
            "bc" => multi::bc_multi(&q, &g, &srcs, batch_width, &opts).map(|r| {
                let max = r.per_source.iter().flatten().copied().fold(0f32, f32::max);
                Out::Multi {
                    iterations: r.iterations,
                    batches: r.batches,
                    sim_ms: r.sim_ms,
                    summary: format!("{} sources, max dependency {max:.4}", r.sources.len()),
                    sources: r.sources,
                    values: serde_json::json!(r.per_source),
                }
            }),
            "closeness" => multi::closeness_multi(&q, &g.csr, &srcs, batch_width, &opts).map(|r| {
                let max = r.scores.iter().copied().fold(0f32, f32::max);
                Out::Multi {
                    iterations: r.iterations,
                    batches: srcs.len().div_ceil(batch_width as usize) as u32,
                    sim_ms: r.sim_ms,
                    summary: format!("{} sources, max closeness {max:.4}", r.sources.len()),
                    sources: r.sources,
                    values: serde_json::json!(r.scores),
                }
            }),
            "reach" => multi::reachability_multi(&q, &g.csr, &srcs, batch_width, &opts).map(|r| {
                let reached: usize = r
                    .per_source
                    .iter()
                    .map(|m| m.iter().filter(|&&x| x).count())
                    .sum();
                Out::Multi {
                    iterations: r.iterations,
                    batches: r.batches,
                    sim_ms: r.sim_ms,
                    summary: format!(
                        "{} sources, {reached} (source, vertex) pairs reachable",
                        r.sources.len()
                    ),
                    sources: r.sources,
                    values: serde_json::json!(r.per_source),
                }
            }),
            other => {
                eprintln!("--sources supports bfs|bc|closeness|reach, not {other}");
                return usage();
            }
        }
    } else {
        match algo {
            // bfs and cc run through the graph view, so a pull-capable
            // `--direction` takes effect; the rest stay on the CSR.
            "bfs" => sygraph_algos::bfs::run(&q, &g, src, &opts)
                .map(|r| Out::U32(r.values, r.iterations, r.sim_ms)),
            "sssp" => sygraph_algos::sssp::run(&q, &g.csr, src, &opts)
                .map(|r| Out::F32(r.values, r.iterations, r.sim_ms)),
            "cc" => sygraph_algos::cc::run(&q, &g, &opts)
                .map(|r| Out::U32(r.values, r.iterations, r.sim_ms)),
            "bc" => sygraph_algos::bc::run(&q, &g.csr, src, &opts)
                .map(|r| Out::F32(r.values, r.iterations, r.sim_ms)),
            "pagerank" => sygraph_algos::pagerank::run(&q, &g.csr, &opts, Default::default())
                .map(|r| Out::F32(r.values, r.iterations, r.sim_ms)),
            "dobfs" => sygraph_algos::dobfs::run(&q, &g, src, &opts)
                .map(|r| Out::U32(r.values, r.iterations, r.sim_ms)),
            "delta" => sygraph_algos::delta::run(&q, &g.csr, src, &opts, delta)
                .map(|r| Out::F32(r.values, r.iterations, r.sim_ms)),
            "triangles" => sygraph_algos::triangles::run(&q, &g.csr, &opts)
                .map(|r| Out::U32(r.values, r.iterations, r.sim_ms)),
            "kcore" => sygraph_algos::kcore::run(&q, &g.csr, delta as u32, &opts)
                .map(|r| Out::U32(r.values, r.iterations, r.sim_ms)),
            other => {
                eprintln!("unknown algorithm {other}");
                return usage();
            }
        }
    };
    let out = match result {
        Ok(o) => o,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (iterations, sim_ms, summary) = match &out {
        Out::U32(v, i, ms) => {
            let reached = v.iter().filter(|&&d| d != u32::MAX).count();
            (*i, *ms, format!("{reached}/{} vertices reached", v.len()))
        }
        Out::F32(v, i, ms) => {
            let finite = v.iter().filter(|x| x.is_finite()).count();
            let max = v
                .iter()
                .copied()
                .filter(|x| x.is_finite())
                .fold(0f32, f32::max);
            (
                *i,
                *ms,
                format!("{finite}/{} finite values, max {max:.4}", v.len()),
            )
        }
        Out::Multi {
            iterations,
            batches,
            sim_ms,
            summary,
            ..
        } => (
            *iterations,
            *sim_ms,
            format!("{summary} ({batches} batches of width {batch_width})"),
        ),
    };

    if json {
        let mut doc = HashMap::new();
        doc.insert("algo", serde_json::json!(algo));
        doc.insert("graph", serde_json::json!(graph_spec));
        doc.insert("device", serde_json::json!(profile_dev.name));
        doc.insert("vertices", serde_json::json!(host.vertex_count()));
        doc.insert("edges", serde_json::json!(host.edge_count()));
        doc.insert("iterations", serde_json::json!(iterations));
        doc.insert("sim_ms", serde_json::json!(sim_ms));
        doc.insert(
            "recovery_events",
            serde_json::json!(q.profiler().recovery_count()),
        );
        match &out {
            Out::U32(v, _, _) => doc.insert("values", serde_json::json!(v)),
            Out::F32(v, _, _) => doc.insert("values", serde_json::json!(v)),
            Out::Multi {
                sources,
                batches,
                values,
                ..
            } => {
                doc.insert("sources", serde_json::json!(sources));
                doc.insert("batches", serde_json::json!(batches));
                doc.insert("batch_width", serde_json::json!(batch_width));
                doc.insert("values", values.clone())
            }
        };
        println!("{}", serde_json::to_string(&doc).unwrap());
    } else {
        println!(
            "{algo} on {graph_spec} ({} vertices, {} edges) @ {}",
            host.vertex_count(),
            host.edge_count(),
            profile_dev.name
        );
        println!("  {iterations} supersteps, {sim_ms:.3} simulated ms — {summary}");
        let recov = q.profiler().recovery_events();
        if !recov.is_empty() {
            let mut counts: Vec<(String, usize)> = Vec::new();
            for e in &recov {
                let key = format!("{}->{}", e.fault, e.action);
                match counts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((key, 1)),
                }
            }
            let parts: Vec<String> = counts
                .iter()
                .map(|(k, c)| format!("{k}\u{d7}{c}"))
                .collect();
            println!("  recovery: {} events ({})", recov.len(), parts.join(", "));
        }
    }

    if profile {
        // (total ms, launches, worst max/mean group-cycle imbalance,
        //  worst idle-lane fraction) per kernel name.
        let mut per: HashMap<String, (f64, usize, f64, f64)> = HashMap::new();
        for k in q.profiler().kernels() {
            let e = per.entry(k.name).or_insert((0.0, 0, 1.0, 0.0));
            e.0 += k.stats.total_ns() / 1e6;
            e.1 += 1;
            e.2 = e.2.max(k.stats.load_imbalance());
            e.3 = e.3.max(k.stats.idle_lane_fraction());
        }
        let mut rows: Vec<_> = per.into_iter().collect();
        rows.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));
        println!("  kernel profile:");
        for (name, (ms, count, imbalance, idle)) in rows {
            println!(
                "    {name:<22} {ms:>9.3} ms  ×{count:<5} imbal {imbalance:>6.2}×  idle {:>5.1}%",
                idle * 100.0
            );
        }
        // Per-superstep frontier-representation trace (recorded by the
        // engine whenever the run went through it), run-length encoded,
        // plus greppable switch counters and the frontier-maintenance
        // kernel cost split by representation.
        let reps = q.profiler().rep_events();
        if !reps.is_empty() {
            let mut rle: Vec<(String, usize)> = Vec::new();
            for e in &reps {
                match rle.last_mut() {
                    Some((r, c)) if *r == e.rep => *c += 1,
                    _ => rle.push((e.rep.clone(), 1)),
                }
            }
            let trace: Vec<String> = rle.iter().map(|(r, c)| format!("{r}\u{d7}{c}")).collect();
            println!("  frontier representation: {}", trace.join(" -> "));
            let s2d = reps
                .iter()
                .filter(|e| e.switched && e.rep == "dense")
                .count();
            let d2s = reps
                .iter()
                .filter(|e| e.switched && e.rep == "sparse")
                .count();
            println!("  sparse->dense switches: {s2d}");
            println!("  dense->sparse switches: {d2s}");
            let cost_of = |names: &[&str]| -> f64 {
                q.profiler()
                    .kernels()
                    .iter()
                    .filter(|k| names.contains(&k.name.as_str()))
                    .map(|k| k.stats.total_ns() / 1e6)
                    .sum()
            };
            println!(
                "  frontier maintenance: dense compaction {:.3} ms, sparse upkeep {:.3} ms",
                cost_of(&["frontier_compact", "frontier_lazy_clear"]),
                cost_of(&[
                    "frontier_sparsify",
                    "frontier_densify",
                    "frontier_sparse_lazy_clear"
                ]),
            );
        }
        // Per-superstep traversal-direction trace (push/pull), run-length
        // encoded like the representation trace above.
        let dirs = q.profiler().direction_events();
        if !dirs.is_empty() {
            let mut rle: Vec<(String, usize)> = Vec::new();
            for e in &dirs {
                match rle.last_mut() {
                    Some((d, c)) if *d == e.direction => *c += 1,
                    _ => rle.push((e.direction.clone(), 1)),
                }
            }
            let trace: Vec<String> = rle.iter().map(|(d, c)| format!("{d}\u{d7}{c}")).collect();
            println!("  traversal direction: {}", trace.join(" -> "));
            println!(
                "  direction switches: {}",
                q.profiler().direction_switch_count()
            );
        }
        // Per-superstep active-lane trace for multi-source runs,
        // run-length encoded like the representation/direction traces.
        let lanes = q.profiler().lane_events();
        if !lanes.is_empty() {
            let mut rle: Vec<(u32, usize)> = Vec::new();
            for e in &lanes {
                match rle.last_mut() {
                    Some((a, c)) if *a == e.active => *c += 1,
                    _ => rle.push((e.active, 1)),
                }
            }
            let trace: Vec<String> = rle.iter().map(|(a, c)| format!("{a}\u{d7}{c}")).collect();
            println!("  active lanes: {}", trace.join(" -> "));
            println!("  lanes retired: {}", q.profiler().lane_retired_count());
        }
        for e in q.profiler().recovery_events() {
            println!(
                "  recovery @superstep {:>4}: {} -> {} (attempt {}, t={:.3} ms)",
                e.superstep,
                e.fault,
                e.action,
                e.attempt,
                e.t_ns / 1e6
            );
        }
        println!("  device memory peak: {} KB", q.device().mem_peak() / 1024);
    }

    if let Some(san) = q.sanitizer() {
        println!("{}", san.report());
        if !san.is_clean() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The `--devices N` path: partition, run the multi-device BSP loop, and
/// print the merged per-partition report.
#[allow(clippy::too_many_arguments)]
fn run_partitioned(
    algo: &str,
    graph_spec: &str,
    host: &CsrHost,
    profile_dev: &DeviceProfile,
    opts: &OptConfig,
    partition: PartitionSpec,
    devices: u32,
    src: u32,
    fault_spec: Option<&str>,
    json: bool,
    profile: bool,
) -> ExitCode {
    use sygraph_algos::partitioned;

    let pg = PartitionedGraph::build(host, partition, devices);
    let mut queues: Vec<Queue> = (0..devices)
        .map(|_| Queue::new(Device::new(profile_dev.clone())))
        .collect();
    if let Some(spec) = fault_spec {
        // Deterministic plans land on partition 0's queue; the other
        // partitions keep running and the exchange carries them through
        // that partition's checkpoint resume.
        match FaultPlan::parse(spec) {
            Ok(plan) => queues[0].attach_faults(plan),
            Err(e) => {
                eprintln!("bad --inject-faults spec: {e}");
                return usage();
            }
        }
    }
    let queues = queues;
    let excfg = ExchangeConfig::default();

    enum POut {
        U32(Vec<u32>),
        F32(Vec<f32>),
    }
    let result = match algo {
        "bfs" => partitioned::bfs(&queues, &pg, src, opts, excfg).map(|r| {
            (
                POut::U32(r.values),
                r.supersteps,
                r.sim_ms,
                r.exchange,
                r.per_superstep,
                r.resumes,
            )
        }),
        "sssp" => partitioned::sssp(&queues, &pg, src, opts, excfg).map(|r| {
            (
                POut::F32(r.values),
                r.supersteps,
                r.sim_ms,
                r.exchange,
                r.per_superstep,
                r.resumes,
            )
        }),
        "cc" => partitioned::cc(&queues, &pg, opts, excfg).map(|r| {
            (
                POut::U32(r.values),
                r.supersteps,
                r.sim_ms,
                r.exchange,
                r.per_superstep,
                r.resumes,
            )
        }),
        _ => unreachable!("guarded by the caller"),
    };
    let (out, supersteps, sim_ms, exchange, per_superstep, resumes) = match result {
        Ok(t) => t,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let summary = match &out {
        POut::U32(v) => {
            let reached = v.iter().filter(|&&d| d != u32::MAX).count();
            format!("{reached}/{} vertices reached", v.len())
        }
        POut::F32(v) => {
            let finite = v.iter().filter(|x| x.is_finite()).count();
            let max = v
                .iter()
                .copied()
                .filter(|x| x.is_finite())
                .fold(0f32, f32::max);
            format!("{finite}/{} finite values, max {max:.4}", v.len())
        }
    };

    // Merged per-partition accounting: simulated kernel time per queue,
    // and the load imbalance the edge-cut produced.
    let part_ms: Vec<f64> = queues
        .iter()
        .map(|q| {
            q.profiler()
                .kernels()
                .iter()
                .map(|k| k.stats.total_ns() / 1e6)
                .sum()
        })
        .collect();
    let max_ms = part_ms.iter().copied().fold(0f64, f64::max);
    let mean_ms = part_ms.iter().sum::<f64>() / part_ms.len() as f64;
    let imbalance = if mean_ms > 0.0 { max_ms / mean_ms } else { 1.0 };
    let recovery_events: usize = queues.iter().map(|q| q.profiler().recovery_count()).sum();

    if json {
        let mut doc = HashMap::new();
        doc.insert("algo", serde_json::json!(algo));
        doc.insert("graph", serde_json::json!(graph_spec));
        doc.insert("device", serde_json::json!(profile_dev.name));
        doc.insert("devices", serde_json::json!(devices));
        doc.insert("partition", serde_json::json!(partition.label()));
        doc.insert("vertices", serde_json::json!(host.vertex_count()));
        doc.insert("edges", serde_json::json!(host.edge_count()));
        doc.insert("supersteps", serde_json::json!(supersteps));
        doc.insert("iterations", serde_json::json!(supersteps));
        doc.insert("sim_ms", serde_json::json!(sim_ms));
        doc.insert("exchange_words", serde_json::json!(exchange.words));
        doc.insert("exchange_msgs", serde_json::json!(exchange.msgs));
        doc.insert("exchange_bytes", serde_json::json!(exchange.bytes));
        doc.insert("load_imbalance", serde_json::json!(imbalance));
        doc.insert("recovery_events", serde_json::json!(recovery_events));
        doc.insert("checkpoint_resumes", serde_json::json!(resumes));
        match &out {
            POut::U32(v) => doc.insert("values", serde_json::json!(v)),
            POut::F32(v) => doc.insert("values", serde_json::json!(v)),
        };
        println!("{}", serde_json::to_string(&doc).unwrap());
    } else {
        println!(
            "{algo} on {graph_spec} ({} vertices, {} edges) @ {} \u{d7}{devices} devices, {} partition",
            host.vertex_count(),
            host.edge_count(),
            profile_dev.name,
            partition.label()
        );
        println!("  {supersteps} supersteps, {sim_ms:.3} simulated ms — {summary}");
        println!(
            "  exchange: {} B in {} msgs over {} words ({} supersteps moved bytes)",
            exchange.bytes,
            exchange.msgs,
            exchange.words,
            per_superstep.len()
        );
        if recovery_events > 0 || resumes > 0 {
            println!("  recovery: {recovery_events} events, {resumes} checkpoint resumes");
        }
    }

    if profile {
        println!("  multi-device profile:");
        for (p, q) in queues.iter().enumerate() {
            let launches = q.profiler().kernels().len();
            println!(
                "    device {p}: owned {:>8}, halo {:>7}, kernel {:>9.3} ms \u{d7}{launches:<5} launches, exch out {:>10} B, mem peak {} KB",
                pg.parts[p].owned,
                pg.parts[p].halo.len(),
                part_ms[p],
                q.profiler().exchange_byte_total(),
                q.device().mem_peak() / 1024
            );
        }
        println!("    load imbalance (max/mean kernel ms): {imbalance:.2}\u{d7}");
        // Merged kernel table: per-name totals summed across every
        // device's profiler.
        let mut per: HashMap<String, (f64, usize)> = HashMap::new();
        for q in &queues {
            for k in q.profiler().kernels() {
                let e = per.entry(k.name).or_insert((0.0, 0));
                e.0 += k.stats.total_ns() / 1e6;
                e.1 += 1;
            }
        }
        let mut rows: Vec<_> = per.into_iter().collect();
        rows.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));
        println!("    merged kernel profile (all devices):");
        for (name, (ms, count)) in rows {
            println!("      {name:<26} {ms:>9.3} ms  \u{d7}{count}");
        }
        if !per_superstep.is_empty() {
            println!("    exchange per superstep:");
            for x in &per_superstep {
                println!(
                    "      superstep {:>4}: {:>7} words, {:>7} msgs, {:>9} B, {:>7} accepted",
                    x.superstep, x.words, x.msgs, x.bytes, x.accepted
                );
            }
        }
        for (p, q) in queues.iter().enumerate() {
            for e in q.profiler().recovery_events() {
                println!(
                    "    device {p} recovery @superstep {:>4}: {} -> {} (attempt {}, t={:.3} ms)",
                    e.superstep,
                    e.fault,
                    e.action,
                    e.attempt,
                    e.t_ns / 1e6
                );
            }
        }
    }
    ExitCode::SUCCESS
}
