//! SNAP-style edge lists: one `u v [w]` per line, `#` comments.

use std::io::{BufRead, Write};

use sygraph_core::graph::CsrHost;

use crate::{IoError, IoResult};

/// Reads an edge list. Vertex ids are as written; the vertex count is
/// `max id + 1` unless `min_vertices` is larger.
pub fn read(r: impl BufRead, min_vertices: usize) -> IoResult<CsrHost> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    let mut any_weight = false;
    let mut max_id = 0u32;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> IoResult<u32> {
            s.ok_or_else(|| IoError::Parse {
                line: lineno + 1,
                msg: format!("missing {what}"),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                line: lineno + 1,
                msg: format!("bad {what}: {e}"),
            })
        };
        let u = parse(parts.next(), "source")?;
        let v = parse(parts.next(), "target")?;
        let w = match parts.next() {
            Some(ws) => {
                any_weight = true;
                ws.parse().map_err(|e| IoError::Parse {
                    line: lineno + 1,
                    msg: format!("bad weight: {e}"),
                })?
            }
            None => 1.0,
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
        weights.push(w);
    }
    let n = min_vertices.max(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    Ok(CsrHost::try_from_edges_weighted(
        n,
        &edges,
        any_weight.then_some(weights.as_slice()),
    )?)
}

/// Writes an edge list (weights included when present).
pub fn write(g: &CsrHost, mut w: impl Write) -> IoResult<()> {
    writeln!(
        w,
        "# sygraph edge list: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    )?;
    for u in 0..g.vertex_count() as u32 {
        let ws = g.neighbor_weights(u);
        for (k, &v) in g.neighbors(u).iter().enumerate() {
            match ws {
                Some(ws) => writeln!(w, "{u} {v} {}", ws[k])?,
                None => writeln!(w, "{u} {v}")?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unweighted() {
        let g = CsrHost::from_edges(4, &[(0, 1), (0, 2), (3, 0)]);
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let g2 = read(buf.as_slice(), 0).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_weighted() {
        let g = CsrHost::from_edges_weighted(3, &[(0, 1), (1, 2)], Some(&[0.5, 2.5]));
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let g2 = read(buf.as_slice(), 0).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0 1\n% more\n1 2\n";
        let g = read(text.as_bytes(), 0).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.vertex_count(), 3);
    }

    #[test]
    fn min_vertices_pads() {
        let g = read("0 1\n".as_bytes(), 10).unwrap();
        assert_eq!(g.vertex_count(), 10);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = read("0 1\nx y\n".as_bytes(), 0).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
