//! # sygraph-io — graph input/output
//!
//! The paper's IO API "defines a set of functions for reading and writing
//! graphs from and to files" (§3.1). Supported formats:
//!
//! * [`mtx`] — MatrixMarket coordinate format (what Network Repository and
//!   SuiteSparse distribute);
//! * [`edgelist`] — whitespace-separated `u v [w]` lines, `#` comments
//!   (SNAP style, e.g. roadNet-CA);
//! * [`dimacs`] — the DIMACS shortest-path challenge format (road-USA);
//! * [`binary`] — a fast internal binary CSR snapshot.

pub mod binary;
pub mod dimacs;
pub mod edgelist;
pub mod mtx;

use std::fmt;

/// IO-layer errors.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse { line: usize, msg: String },
    Format(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<sygraph_core::graph::GraphError> for IoError {
    fn from(e: sygraph_core::graph::GraphError) -> Self {
        // A structurally impossible graph in a parsed file is a format
        // defect of that file (e.g. an edge beyond the declared
        // dimensions), reported instead of panicking in CSR construction.
        IoError::Format(e.to_string())
    }
}

/// Crate-wide result alias.
pub type IoResult<T> = Result<T, IoError>;
