//! DIMACS shortest-path challenge format (`.gr`), the distribution format
//! of the road-USA dataset: `c` comments, one `p sp <n> <m>` problem
//! line, and `a <u> <v> <w>` arc lines with 1-based indices.

use std::io::{BufRead, Write};

use sygraph_core::graph::CsrHost;

use crate::{IoError, IoResult};

/// Reads a DIMACS `.gr` graph.
pub fn read(r: impl BufRead) -> IoResult<CsrHost> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        let perr = |msg: String| IoError::Parse {
            line: lineno + 1,
            msg,
        };
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        match parts[0] {
            "p" => {
                if parts.len() != 4 || parts[1] != "sp" {
                    return Err(perr("expected 'p sp <n> <m>'".into()));
                }
                n = Some(parts[2].parse().map_err(|e| perr(format!("{e}")))?);
                let m: usize = parts[3].parse().map_err(|e| perr(format!("{e}")))?;
                edges.reserve(m);
                weights.reserve(m);
            }
            "a" => {
                if parts.len() != 4 {
                    return Err(perr("expected 'a <u> <v> <w>'".into()));
                }
                let u: u32 = parts[1].parse().map_err(|e| perr(format!("{e}")))?;
                let v: u32 = parts[2].parse().map_err(|e| perr(format!("{e}")))?;
                let w: f32 = parts[3].parse().map_err(|e| perr(format!("{e}")))?;
                if u == 0 || v == 0 {
                    return Err(perr("DIMACS indices are 1-based".into()));
                }
                edges.push((u - 1, v - 1));
                weights.push(w);
            }
            other => return Err(perr(format!("unknown record type '{other}'"))),
        }
    }
    let n = n.ok_or_else(|| IoError::Format("missing problem line".into()))?;
    Ok(CsrHost::try_from_edges_weighted(n, &edges, Some(&weights))?)
}

/// Writes a DIMACS `.gr` graph (unweighted edges get weight 1).
pub fn write(g: &CsrHost, mut w: impl Write) -> IoResult<()> {
    writeln!(w, "c written by sygraph-io")?;
    writeln!(w, "p sp {} {}", g.vertex_count(), g.edge_count())?;
    for u in 0..g.vertex_count() as u32 {
        let ws = g.neighbor_weights(u);
        for (k, &v) in g.neighbors(u).iter().enumerate() {
            let weight = ws.map_or(1.0, |ws| ws[k]);
            writeln!(w, "a {} {} {}", u + 1, v + 1, weight)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = CsrHost::from_edges_weighted(3, &[(0, 1), (1, 2)], Some(&[5.0, 7.0]));
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let g2 = read(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_ignored_and_problem_required() {
        let text = "c road\np sp 2 1\nc mid\na 1 2 3.5\n";
        let g = read(text.as_bytes()).unwrap();
        assert_eq!(g.neighbor_weights(0).unwrap(), &[3.5]);
        assert!(read("a 1 2 3\n".as_bytes()).is_err(), "no problem line");
    }

    #[test]
    fn rejects_unknown_records() {
        assert!(read("p sp 2 1\nz 1 2 3\n".as_bytes()).is_err());
    }
}
