//! Fast binary CSR snapshots.
//!
//! Layout (little-endian):
//! `magic "SYGB" | version u32 | n u64 | m u64 | flags u32 |`
//! `offsets (n+1)×u32 | indices m×u32 | [weights m×f32]`
//! where bit 0 of `flags` marks the presence of weights.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sygraph_core::graph::CsrHost;

use crate::{IoError, IoResult};

const MAGIC: &[u8; 4] = b"SYGB";
const VERSION: u32 = 1;
const FLAG_WEIGHTED: u32 = 1;

/// Serializes a CSR into a byte buffer.
pub fn to_bytes(g: &CsrHost) -> Bytes {
    let n = g.vertex_count();
    let m = g.edge_count();
    let weighted = g.weights.is_some();
    let cap = 4 + 4 + 16 + 4 + (n + 1) * 4 + m * 4 + if weighted { m * 4 } else { 0 };
    let mut buf = BytesMut::with_capacity(cap);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    buf.put_u32_le(if weighted { FLAG_WEIGHTED } else { 0 });
    for &o in &g.offsets {
        buf.put_u32_le(o);
    }
    for &i in &g.indices {
        buf.put_u32_le(i);
    }
    if let Some(ws) = &g.weights {
        for &w in ws {
            buf.put_f32_le(w);
        }
    }
    buf.freeze()
}

/// Deserializes a CSR from bytes.
pub fn from_bytes(mut b: &[u8]) -> IoResult<CsrHost> {
    if b.len() < 36 {
        return Err(IoError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic".into()));
    }
    let version = b.get_u32_le();
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let n = b.get_u64_le() as usize;
    let m = b.get_u64_le() as usize;
    let flags = b.get_u32_le();
    let weighted = flags & FLAG_WEIGHTED != 0;
    // Checked arithmetic: a hostile header can claim n/m near usize::MAX,
    // and the unchecked `(n + 1) * 4` wrapped in release builds — turning
    // the truncation guard below into a huge-allocation abort.
    let need = n
        .checked_add(1)
        .and_then(|x| x.checked_mul(4))
        .and_then(|x| x.checked_add(m.checked_mul(if weighted { 8 } else { 4 })?))
        .ok_or_else(|| IoError::Format(format!("header sizes overflow: n={n}, m={m}")))?;
    if b.remaining() < need {
        return Err(IoError::Format(format!(
            "truncated body: need {need}, have {}",
            b.remaining()
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(b.get_u32_le());
    }
    let mut indices = Vec::with_capacity(m);
    for _ in 0..m {
        indices.push(b.get_u32_le());
    }
    let weights = weighted.then(|| (0..m).map(|_| b.get_f32_le()).collect());
    let g = CsrHost {
        offsets,
        indices,
        weights,
    };
    g.validate().map_err(|e| IoError::Format(e.to_string()))?;
    Ok(g)
}

/// Writes a binary snapshot to `w`.
pub fn write(g: &CsrHost, mut w: impl Write) -> IoResult<()> {
    w.write_all(&to_bytes(g))?;
    Ok(())
}

/// Reads a binary snapshot from `r`.
pub fn read(mut r: impl Read) -> IoResult<CsrHost> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unweighted() {
        let g = CsrHost::from_edges(5, &[(0, 4), (4, 0), (2, 3)]);
        let g2 = from_bytes(&to_bytes(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_weighted() {
        let g = CsrHost::from_edges_weighted(3, &[(0, 1), (2, 1)], Some(&[0.25, 8.5]));
        let g2 = from_bytes(&to_bytes(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn corruption_detected() {
        let g = CsrHost::from_edges(3, &[(0, 1)]);
        let mut bytes = to_bytes(&g).to_vec();
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err(), "bad magic");
        let bytes = to_bytes(&g);
        assert!(from_bytes(&bytes[..bytes.len() - 2]).is_err(), "truncated");
    }

    #[test]
    fn stream_roundtrip() {
        let g = CsrHost::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        assert_eq!(read(buf.as_slice()).unwrap(), g);
    }
}
