//! MatrixMarket coordinate format (the distribution format of Network
//! Repository and SuiteSparse graphs).
//!
//! Supports `matrix coordinate {pattern|real|integer} {general|symmetric}`.
//! Symmetric inputs are expanded to both directions on read, as graph
//! frameworks conventionally do. Indices are 1-based in the file.

use std::io::{BufRead, Write};

use sygraph_core::graph::CsrHost;

use crate::{IoError, IoResult};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Pattern,
    Real,
    Integer,
}

/// Reads a MatrixMarket graph.
pub fn read(r: impl BufRead) -> IoResult<CsrHost> {
    let mut lines = r.lines().enumerate();
    // Header
    let (_, header) = lines
        .next()
        .ok_or_else(|| IoError::Format("empty file".into()))?;
    let header = header?;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() < 5
        || !h[0].starts_with("%%MatrixMarket")
        || h[1] != "matrix"
        || h[2] != "coordinate"
    {
        return Err(IoError::Format(format!("unsupported header: {header}")));
    }
    let field = match h[3] {
        "pattern" => Field::Pattern,
        "real" => Field::Real,
        "integer" => Field::Integer,
        other => return Err(IoError::Format(format!("unsupported field type {other}"))),
    };
    let symmetric = match h[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(IoError::Format(format!("unsupported symmetry {other}"))),
    };

    // Size line (first non-comment line)
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    for (lineno, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let perr = |msg: String| IoError::Parse {
            line: lineno + 1,
            msg,
        };
        if dims.is_none() {
            if parts.len() != 3 {
                return Err(perr("expected 'rows cols nnz'".into()));
            }
            let rows = parts[0].parse().map_err(|e| perr(format!("{e}")))?;
            let cols = parts[1].parse().map_err(|e| perr(format!("{e}")))?;
            let nnz = parts[2].parse().map_err(|e| perr(format!("{e}")))?;
            dims = Some((rows, cols, nnz));
            edges.reserve(nnz * if symmetric { 2 } else { 1 });
            continue;
        }
        let need = if field == Field::Pattern { 2 } else { 3 };
        if parts.len() < need {
            return Err(perr(format!("expected {need} fields")));
        }
        let u: u32 = parts[0].parse().map_err(|e| perr(format!("{e}")))?;
        let v: u32 = parts[1].parse().map_err(|e| perr(format!("{e}")))?;
        if u == 0 || v == 0 {
            return Err(perr("MatrixMarket indices are 1-based".into()));
        }
        let w: f32 = if field == Field::Pattern {
            1.0
        } else {
            parts[2].parse().map_err(|e| perr(format!("{e}")))?
        };
        edges.push((u - 1, v - 1));
        weights.push(w);
        if symmetric && u != v {
            edges.push((v - 1, u - 1));
            weights.push(w);
        }
    }
    let (rows, cols, _nnz) = dims.ok_or_else(|| IoError::Format("missing size line".into()))?;
    let n = rows.max(cols);
    Ok(CsrHost::try_from_edges_weighted(
        n,
        &edges,
        if field == Field::Pattern {
            None
        } else {
            Some(weights.as_slice())
        },
    )?)
}

/// Writes a general MatrixMarket file (pattern when unweighted).
pub fn write(g: &CsrHost, mut w: impl Write) -> IoResult<()> {
    let field = if g.weights.is_some() {
        "real"
    } else {
        "pattern"
    };
    writeln!(w, "%%MatrixMarket matrix coordinate {field} general")?;
    writeln!(w, "% written by sygraph-io")?;
    let n = g.vertex_count();
    writeln!(w, "{n} {n} {}", g.edge_count())?;
    for u in 0..n as u32 {
        let ws = g.neighbor_weights(u);
        for (k, &v) in g.neighbors(u).iter().enumerate() {
            match ws {
                Some(ws) => writeln!(w, "{} {} {}", u + 1, v + 1, ws[k])?,
                None => writeln!(w, "{} {}", u + 1, v + 1)?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general_real() {
        let g = CsrHost::from_edges_weighted(3, &[(0, 1), (2, 0)], Some(&[1.5, 2.0]));
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let g2 = read(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_pattern() {
        let g = CsrHost::from_edges(4, &[(0, 1), (1, 2), (3, 3)]);
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let g2 = read(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n";
        let g = read(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn symmetric_diagonal_not_duplicated() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n";
        let g = read(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 3, "self-loop once + expanded pair");
    }

    #[test]
    fn rejects_garbage_header() {
        assert!(read("hello\n1 1 0\n".as_bytes()).is_err());
        assert!(read("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
    }

    #[test]
    fn one_based_enforced() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn comments_in_body() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% c\n3 3 1\n% mid\n1 2\n";
        let g = read(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
