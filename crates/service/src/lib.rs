//! # sygraph-service — long-running graph analytics service
//!
//! The SYgraph paper frames the framework as a building block for
//! interactive analytics; this crate supplies the serving layer above
//! the simulator (DESIGN.md §15):
//!
//! - **Resident graphs** ([`Registry`]): named, version-tagged graphs
//!   load once, get device-uploaded per worker, and stay warm (pull
//!   mirror included) across jobs.
//! - **Concurrent scheduler** ([`Scheduler`]): worker threads, each
//!   owning one simulated device queue, drain a shared job queue with
//!   admission control backed by the allocation ledger's memory model.
//! - **Result cache** ([`ResultCache`]): keyed on (graph, version,
//!   algo, params); hits are bit-identical to recomputes.
//! - **Request coalescing**: single-source BFS requests inside the
//!   batching window fold into one W-lane multi-source pass and demux
//!   back, per-lane bit-identical to serial runs.
//! - **HTTP front end** ([`HttpServer`]): `/health`, `/ready`,
//!   `/graphs`, `/jobs` over a hand-rolled `std::net` server.
//! - **Resilience** (DESIGN.md §16): per-job deadlines enforced at
//!   superstep-checkpoint boundaries, bounded-queue backpressure with
//!   `Retry-After` hints, fault-wired workers with a per-worker circuit
//!   breaker, and a [`Service::drain`] graceful-shutdown path.
//!
//! ```
//! use sygraph_service::{JobRequest, RegisterOptions, Service, ServiceConfig};
//! use sygraph_core::graph::CsrHost;
//!
//! let service = Service::start(ServiceConfig::default()).unwrap();
//! let host = CsrHost::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! service.register_graph("line", host, RegisterOptions::default()).unwrap();
//! let id = service.submit(JobRequest::rooted("line", "bfs", 0)).unwrap();
//! let done = service.wait(id).unwrap();
//! assert_eq!(done.values.unwrap().len(), 4);
//! ```

pub mod cache;
pub mod error;
pub mod http;
pub mod job;
pub mod registry;
pub mod scheduler;

use std::sync::Arc;

pub use cache::{CacheKey, CachedResult, ResultCache};
pub use error::{ServiceError, ServiceResult};
pub use http::HttpServer;
pub use job::{Algo, JobMetrics, JobRecord, JobRequest, JobState, JobValues};
pub use registry::{RegisterOptions, RegisteredGraph, Registry};
pub use scheduler::{modeled_peak_bytes, DrainReport, Scheduler, ServiceConfig, StatsSnapshot};

use sygraph_core::graph::CsrHost;

/// The assembled service: registry + cache + scheduler behind one
/// facade. Cloneable via `Arc`; the HTTP layer holds one.
pub struct Service {
    registry: Arc<Registry>,
    cache: Arc<ResultCache>,
    scheduler: Scheduler,
}

impl Service {
    /// Builds the registry/cache and spins up the worker pool.
    pub fn start(config: ServiceConfig) -> ServiceResult<Service> {
        let registry = Arc::new(Registry::new());
        let cache = Arc::new(ResultCache::new(config.cache_entries));
        let scheduler = Scheduler::new(config, registry.clone(), cache.clone())?;
        Ok(Service {
            registry,
            cache,
            scheduler,
        })
    }

    pub fn config(&self) -> &ServiceConfig {
        self.scheduler.config()
    }

    /// Registers (or re-registers) a graph; see [`Registry::register`].
    pub fn register_graph(
        &self,
        name: &str,
        host: CsrHost,
        options: RegisterOptions,
    ) -> ServiceResult<Arc<RegisteredGraph>> {
        self.registry.register(name, host, options)
    }

    /// All registered graphs, name-sorted.
    pub fn graphs(&self) -> Vec<Arc<RegisteredGraph>> {
        self.registry.list()
    }

    /// Submits a job; see [`Scheduler::submit`].
    pub fn submit(&self, request: JobRequest) -> ServiceResult<u64> {
        self.scheduler.submit(request)
    }

    /// Snapshot of a job record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.scheduler.job(id)
    }

    /// All job ids, ascending.
    pub fn job_ids(&self) -> Vec<u64> {
        self.scheduler.job_ids()
    }

    /// Blocks until `id` is terminal.
    pub fn wait(&self, id: u64) -> Option<JobRecord> {
        self.scheduler.wait(id)
    }

    /// Blocks until no work is queued or running.
    pub fn wait_idle(&self) {
        self.scheduler.wait_idle()
    }

    /// Pauses job claiming (submissions still queue).
    pub fn pause(&self) {
        self.scheduler.pause()
    }

    /// Resumes job claiming.
    pub fn resume(&self) {
        self.scheduler.resume()
    }

    /// Accepting jobs and below the queue high-water mark?
    pub fn ready(&self) -> bool {
        self.scheduler.ready()
    }

    /// Gracefully drains the service: stops admissions, finishes queued
    /// and in-flight work up to `deadline`, cancels the rest, joins the
    /// workers, and reports every terminal job record. See
    /// [`Scheduler::drain`].
    pub fn drain(&self, deadline: std::time::Duration) -> DrainReport {
        self.scheduler.drain(deadline)
    }

    /// Hard stop: see [`Scheduler::shutdown`]. Queued jobs stay
    /// `Queued`; prefer [`Service::drain`] in servers.
    pub fn shutdown(&self) {
        self.scheduler.shutdown()
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.scheduler.stats()
    }

    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Resolves a CLI-style graph spec: `gen:<key>` for the generated
/// datasets (`SYG_SCALE=test` shrinks them, same convention as the
/// bench binaries), anything else as a file path routed by extension.
pub fn load_graph_spec(spec: &str) -> ServiceResult<CsrHost> {
    if let Some(name) = spec.strip_prefix("gen:") {
        let scale = match std::env::var("SYG_SCALE").as_deref() {
            Ok("test") => sygraph_gen::Scale::Test,
            _ => sygraph_gen::Scale::Bench,
        };
        let ds = match name {
            "ca" => sygraph_gen::datasets::road_ca(scale),
            "usa" => sygraph_gen::datasets::road_usa(scale),
            "hollyw" => sygraph_gen::datasets::hollywood(scale),
            "indo" => sygraph_gen::datasets::indochina(scale),
            "journal" => sygraph_gen::datasets::livejournal(scale),
            "kron" => sygraph_gen::datasets::kron(scale),
            "twitter" => sygraph_gen::datasets::twitter(scale),
            other => {
                return Err(ServiceError::BadRequest(format!(
                    "unknown generated dataset {other:?}"
                )))
            }
        };
        return Ok(ds.host);
    }
    let file =
        std::fs::File::open(spec).map_err(|e| ServiceError::BadRequest(format!("{spec}: {e}")))?;
    let reader = std::io::BufReader::new(file);
    let result = if spec.ends_with(".mtx") {
        sygraph_io::mtx::read(reader)
    } else if spec.ends_with(".gr") {
        sygraph_io::dimacs::read(reader)
    } else if spec.ends_with(".sygb") {
        sygraph_io::binary::read(reader)
    } else {
        sygraph_io::edgelist::read(reader, 0)
    };
    result.map_err(|e| ServiceError::BadRequest(format!("{spec}: {e}")))
}
