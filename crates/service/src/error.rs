//! Service-layer errors with an HTTP status mapping.
//!
//! Every input boundary — JSON bodies, graph uploads, job parameters —
//! funnels into [`ServiceError`], so a hostile or malformed request is a
//! 4xx response, never a panic that takes the server (and every resident
//! graph) down with it.

use std::fmt;

use sygraph_core::graph::GraphError;
use sygraph_sim::SimError;

/// Typed service failure. `http_status` decides the response class:
/// caller mistakes are 4xx, device/engine failures are 5xx.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Unparseable or semantically invalid request (bad JSON, unknown
    /// algorithm, missing fields).
    BadRequest(String),
    /// Structurally invalid graph upload — wraps the typed
    /// [`GraphError`] from `CsrHost::validate`/`try_from_edges`.
    InvalidGraph(GraphError),
    /// Request names a graph or job that is not registered.
    NotFound(String),
    /// Admission control: the job's modelled peak memory exceeds the
    /// per-job budget (or can never fit the device), so it is rejected
    /// up front instead of OOMing mid-run.
    AdmissionRejected {
        modeled_bytes: u64,
        budget_bytes: u64,
    },
    /// The simulated device failed while executing the job.
    Device(SimError),
    /// The job's deadline passed — either while it waited in the queue
    /// (shed before dispatch) or mid-run (the engine aborted at a
    /// superstep-checkpoint boundary). `timeout_ms` is the effective
    /// deadline after the server cap.
    DeadlineExceeded { timeout_ms: u64 },
    /// Backpressure: the submission queue is at capacity. Carries the
    /// observed queue state and a `Retry-After` hint computed from the
    /// measured drain rate.
    Overloaded {
        queued: usize,
        limit: usize,
        retry_after_ms: u64,
    },
    /// The service is draining: in-flight and queued jobs are finishing,
    /// but no new work is admitted.
    Draining,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ServiceError {
    /// HTTP status code for this error.
    pub fn http_status(&self) -> u16 {
        match self {
            ServiceError::BadRequest(_) | ServiceError::InvalidGraph(_) => 400,
            ServiceError::NotFound(_) => 404,
            ServiceError::AdmissionRejected { .. } => 413,
            // An out-of-range source travels as Device(InvalidInput)
            // when it is only caught inside the engine; still the
            // caller's fault.
            ServiceError::Device(SimError::InvalidInput(_)) => 400,
            ServiceError::Device(SimError::Unsupported(_)) => 400,
            // A cancellation that escapes unmapped is a deadline abort.
            ServiceError::Device(SimError::Cancelled { .. }) => 408,
            ServiceError::Device(_) => 500,
            ServiceError::DeadlineExceeded { .. } => 408,
            ServiceError::Overloaded { .. } => 429,
            ServiceError::Draining | ServiceError::ShuttingDown => 503,
        }
    }

    /// `Retry-After` hint in milliseconds, for errors that carry one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServiceError::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// Short machine-readable kind label for JSON error bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad-request",
            ServiceError::InvalidGraph(_) => "invalid-graph",
            ServiceError::NotFound(_) => "not-found",
            ServiceError::AdmissionRejected { .. } => "admission-rejected",
            ServiceError::Device(_) => "device",
            ServiceError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::Draining => "draining",
            ServiceError::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::InvalidGraph(e) => write!(f, "invalid graph: {e}"),
            ServiceError::NotFound(what) => write!(f, "not found: {what}"),
            ServiceError::AdmissionRejected {
                modeled_bytes,
                budget_bytes,
            } => write!(
                f,
                "admission rejected: modelled peak {modeled_bytes} B exceeds per-job budget {budget_bytes} B"
            ),
            ServiceError::Device(e) => write!(f, "device error: {e}"),
            ServiceError::DeadlineExceeded { timeout_ms } => {
                write!(f, "deadline exceeded: job did not finish within {timeout_ms} ms")
            }
            ServiceError::Overloaded {
                queued,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "overloaded: {queued} jobs queued (limit {limit}); retry after {retry_after_ms} ms"
            ),
            ServiceError::Draining => write!(f, "service draining: no new work admitted"),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<GraphError> for ServiceError {
    fn from(e: GraphError) -> Self {
        ServiceError::InvalidGraph(e)
    }
}

impl From<SimError> for ServiceError {
    fn from(e: SimError) -> Self {
        ServiceError::Device(e)
    }
}

/// Crate-wide result alias.
pub type ServiceResult<T> = Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping() {
        assert_eq!(ServiceError::BadRequest("x".into()).http_status(), 400);
        assert_eq!(
            ServiceError::InvalidGraph(GraphError::EmptyOffsets).http_status(),
            400
        );
        assert_eq!(ServiceError::NotFound("g".into()).http_status(), 404);
        assert_eq!(
            ServiceError::AdmissionRejected {
                modeled_bytes: 10,
                budget_bytes: 5
            }
            .http_status(),
            413
        );
        assert_eq!(
            ServiceError::Device(SimError::InvalidInput("src".into())).http_status(),
            400
        );
        assert_eq!(
            ServiceError::Device(SimError::OutOfMemory {
                requested: 1,
                used: 0,
                capacity: 1
            })
            .http_status(),
            500
        );
        assert_eq!(
            ServiceError::DeadlineExceeded { timeout_ms: 50 }.http_status(),
            408
        );
        let overloaded = ServiceError::Overloaded {
            queued: 9,
            limit: 8,
            retry_after_ms: 1500,
        };
        assert_eq!(overloaded.http_status(), 429);
        assert_eq!(overloaded.retry_after_ms(), Some(1500));
        assert_eq!(overloaded.kind(), "overloaded");
        assert_eq!(ServiceError::Draining.http_status(), 503);
        assert_eq!(ServiceError::Draining.kind(), "draining");
        assert_eq!(ServiceError::Draining.retry_after_ms(), None);
    }
}
