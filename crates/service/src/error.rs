//! Service-layer errors with an HTTP status mapping.
//!
//! Every input boundary — JSON bodies, graph uploads, job parameters —
//! funnels into [`ServiceError`], so a hostile or malformed request is a
//! 4xx response, never a panic that takes the server (and every resident
//! graph) down with it.

use std::fmt;

use sygraph_core::graph::GraphError;
use sygraph_sim::SimError;

/// Typed service failure. `http_status` decides the response class:
/// caller mistakes are 4xx, device/engine failures are 5xx.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Unparseable or semantically invalid request (bad JSON, unknown
    /// algorithm, missing fields).
    BadRequest(String),
    /// Structurally invalid graph upload — wraps the typed
    /// [`GraphError`] from `CsrHost::validate`/`try_from_edges`.
    InvalidGraph(GraphError),
    /// Request names a graph or job that is not registered.
    NotFound(String),
    /// Admission control: the job's modelled peak memory exceeds the
    /// per-job budget (or can never fit the device), so it is rejected
    /// up front instead of OOMing mid-run.
    AdmissionRejected {
        modeled_bytes: u64,
        budget_bytes: u64,
    },
    /// The simulated device failed while executing the job.
    Device(SimError),
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl ServiceError {
    /// HTTP status code for this error.
    pub fn http_status(&self) -> u16 {
        match self {
            ServiceError::BadRequest(_) | ServiceError::InvalidGraph(_) => 400,
            ServiceError::NotFound(_) => 404,
            ServiceError::AdmissionRejected { .. } => 413,
            // An out-of-range source travels as Device(InvalidInput)
            // when it is only caught inside the engine; still the
            // caller's fault.
            ServiceError::Device(SimError::InvalidInput(_)) => 400,
            ServiceError::Device(SimError::Unsupported(_)) => 400,
            ServiceError::Device(_) => 500,
            ServiceError::ShuttingDown => 503,
        }
    }

    /// Short machine-readable kind label for JSON error bodies.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad-request",
            ServiceError::InvalidGraph(_) => "invalid-graph",
            ServiceError::NotFound(_) => "not-found",
            ServiceError::AdmissionRejected { .. } => "admission-rejected",
            ServiceError::Device(_) => "device",
            ServiceError::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::InvalidGraph(e) => write!(f, "invalid graph: {e}"),
            ServiceError::NotFound(what) => write!(f, "not found: {what}"),
            ServiceError::AdmissionRejected {
                modeled_bytes,
                budget_bytes,
            } => write!(
                f,
                "admission rejected: modelled peak {modeled_bytes} B exceeds per-job budget {budget_bytes} B"
            ),
            ServiceError::Device(e) => write!(f, "device error: {e}"),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<GraphError> for ServiceError {
    fn from(e: GraphError) -> Self {
        ServiceError::InvalidGraph(e)
    }
}

impl From<SimError> for ServiceError {
    fn from(e: SimError) -> Self {
        ServiceError::Device(e)
    }
}

/// Crate-wide result alias.
pub type ServiceResult<T> = Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping() {
        assert_eq!(ServiceError::BadRequest("x".into()).http_status(), 400);
        assert_eq!(
            ServiceError::InvalidGraph(GraphError::EmptyOffsets).http_status(),
            400
        );
        assert_eq!(ServiceError::NotFound("g".into()).http_status(), 404);
        assert_eq!(
            ServiceError::AdmissionRejected {
                modeled_bytes: 10,
                budget_bytes: 5
            }
            .http_status(),
            413
        );
        assert_eq!(
            ServiceError::Device(SimError::InvalidInput("src".into())).http_status(),
            400
        );
        assert_eq!(
            ServiceError::Device(SimError::OutOfMemory {
                requested: 1,
                used: 0,
                capacity: 1
            })
            .http_status(),
            500
        );
    }
}
