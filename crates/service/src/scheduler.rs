//! Concurrent job scheduler: a shared submission queue drained by worker
//! threads, each owning one simulated device queue.
//!
//! The pieces the ISSUE names live here:
//!
//! - **Admission control** — at submit time the job's peak scratch
//!   memory is modelled ([`modeled_peak_bytes`]) and checked against the
//!   per-job budget and the device's free capacity; oversized jobs stop
//!   at `Rejected` instead of OOMing a worker mid-run.
//! - **Request coalescing** — when a worker claims a coalescible head
//!   job (single-source BFS), it folds every compatible pending request
//!   (same graph, same version, coalescing not opted out) into one
//!   W-lane multi-source pass, waiting up to the batching window for
//!   stragglers, then demuxes the per-lane vectors back to the
//!   individual jobs. Per-lane output is bit-identical to a serial
//!   rooted run (the PR-7 lane property), so callers cannot observe
//!   whether their job was batched — except in the metrics.
//! - **Result caching** — before queueing, the scheduler consults the
//!   [`ResultCache`]; a hit completes the job immediately with zero
//!   device time. Workers store what they compute (including every lane
//!   of a coalesced batch, under single-source keys).
//!
//! The resilience layer (DESIGN.md §16) adds:
//!
//! - **Deadlines** — every job may carry one (client `timeout_ms` capped
//!   by `max_timeout_ms`, else `default_timeout_ms`). Expired queued
//!   jobs are shed at claim time; running jobs are aborted by a
//!   [`CancelToken`] the engine polls at superstep-checkpoint
//!   boundaries. Both produce a typed `deadline-exceeded` record.
//! - **Backpressure** — the submission queue is bounded by `max_queue`;
//!   overflow is refused with [`ServiceError::Overloaded`] carrying a
//!   `Retry-After` hint from the measured per-job service-time EWMA, and
//!   [`Scheduler::ready`] flips unready above the high-water mark.
//! - **Fault-wired workers** — an optional [`FaultPlan`] attaches to
//!   every worker queue, so injected transient/OOM/device-lost faults
//!   exercise the engine's recovery ladder *in service*. A worker whose
//!   device dies (or whose job panics) rebuilds its device state;
//!   repeated consecutive rebuilds trip a per-worker circuit breaker
//!   (quarantine for `breaker_open_ms`, then a half-open probe batch).
//! - **Graceful drain** — [`Scheduler::drain`] stops admissions (typed
//!   `Draining` 503), lets queued and in-flight work finish up to a
//!   deadline, cancels whatever is still running, and returns a snapshot
//!   of every terminal job record.
//!
//! Workers survive algorithm panics: a panicking job is recorded as
//! `Failed` and the worker rebuilds its device state, so one poisoned
//! request cannot take the service down.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use sygraph_algos::common::AlgoResult;
use sygraph_algos::{bc, bfs, cc, delta, multi, pagerank, sssp};
use sygraph_core::engine::RecoveryPolicy;
use sygraph_core::graph::{validate_sources, Graph};
use sygraph_core::inspector::OptConfig;
use sygraph_sim::{CancelToken, Device, DeviceProfile, FaultPlan, Queue, SimError};

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::error::{ServiceError, ServiceResult};
use crate::job::{Algo, JobMetrics, JobRecord, JobRequest, JobState, JobValues};
use crate::registry::{DeviceMirror, Registry};

/// Scheduler / service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulated device profile each worker instantiates.
    pub profile: DeviceProfile,
    /// Worker threads (= simulated device queues).
    pub workers: usize,
    /// How long a worker holding an underfull coalescible batch waits
    /// for stragglers, in milliseconds. 0 = batch only what is already
    /// pending at claim time (deterministic; what the bench uses).
    pub batch_window_ms: u64,
    /// Maximum lanes per coalesced pass; must be 8, 16, 32 or 64.
    pub batch_width: u32,
    /// Per-job modelled peak scratch budget in bytes. `None` = the
    /// device's full capacity.
    pub job_mem_budget: Option<u64>,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Start with the queue paused: jobs accumulate until
    /// [`Scheduler::resume`], letting tests and benches stage a burst
    /// deterministically.
    pub start_paused: bool,
    /// Submission-queue bound (0 = unbounded). Overflow is refused with
    /// a typed 429; `ready()` flips unready at 3/4 of this.
    pub max_queue: usize,
    /// Server-side default deadline applied when a request carries no
    /// `timeout_ms`. `None` = no deadline.
    pub default_timeout_ms: Option<u64>,
    /// Cap on client-supplied `timeout_ms`.
    pub max_timeout_ms: u64,
    /// Fault plan attached to every worker's device queue (chaos / CI
    /// smoke). `None` = clean devices.
    pub fault_plan: Option<FaultPlan>,
    /// Engine recovery policy jobs run under (retry/backoff, OOM
    /// degradation ladder, checkpoint cadence — which is also the
    /// deadline-check cadence).
    pub recovery: RecoveryPolicy,
    /// Default drain deadline for [`Scheduler::drain`] callers that use
    /// the configured value (the CLI's SIGTERM path).
    pub drain_deadline_ms: u64,
    /// Consecutive worker rebuilds that trip the per-worker circuit
    /// breaker (0 disables the breaker).
    pub breaker_threshold: u32,
    /// How long a tripped worker stays quarantined before its half-open
    /// probe.
    pub breaker_open_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            profile: DeviceProfile::host_test(),
            workers: 2,
            batch_window_ms: 0,
            batch_width: 32,
            job_mem_budget: None,
            cache_entries: 1024,
            start_paused: false,
            max_queue: 1024,
            default_timeout_ms: None,
            max_timeout_ms: 300_000,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            drain_deadline_ms: 5_000,
            breaker_threshold: 3,
            breaker_open_ms: 250,
        }
    }
}

impl ServiceConfig {
    pub fn validate(&self) -> ServiceResult<()> {
        if self.workers == 0 {
            return Err(ServiceError::BadRequest("workers must be >= 1".into()));
        }
        if !matches!(self.batch_width, 8 | 16 | 32 | 64) {
            return Err(ServiceError::BadRequest(format!(
                "batch_width must be 8|16|32|64, got {}",
                self.batch_width
            )));
        }
        Ok(())
    }

    /// Queue depth above which `ready()` reports unready (3/4 of the
    /// bound; the gap between high water and the bound absorbs the burst
    /// that is already in flight at the balancer).
    pub fn high_water(&self) -> usize {
        (self.max_queue * 3 / 4).max(1)
    }
}

/// Coarse peak-scratch model for admission control, in bytes. Counts the
/// algorithm's value/state arrays plus double-buffered two-layer
/// frontiers; deliberately a little generous so a pass never exceeds the
/// admitted figure by more than slack. `lanes` scales the multi-source
/// BFS layout (per-lane depth rows + packed lane masks).
pub fn modeled_peak_bytes(algo: Algo, n: u64, _m: u64, lanes: u32) -> u64 {
    let lanes = lanes.max(1) as u64;
    // Two in/out frontiers, each a two-layer bitmap plus compaction
    // scratch: ~1 byte/vertex covers every word width used.
    let frontier = 2 * n + 256;
    let state = match algo {
        // depth rows (4B per lane per vertex) + packed visited lanes.
        Algo::Bfs => lanes * 4 * n + lanes * n / 4 + lanes * frontier / 2,
        Algo::Sssp => 4 * n,
        // distances + bucket tags.
        Algo::DeltaSssp => 8 * n,
        Algo::Cc => 4 * n,
        // depth + sigma + delta + retained per-level frontier pool.
        Algo::Bc => 12 * n + 4 * n,
        // rank + next + share + scalars.
        Algo::Pagerank => 12 * n + 64,
    };
    state + frontier
}

/// One queued unit of work. Carries the match fields for coalescing so
/// workers never need the job table while holding the queue lock.
struct PendingJob {
    id: u64,
    graph: String,
    version: u64,
    algo: Algo,
    source: u32,
    coalesce: bool,
    enqueued_at: Instant,
    /// Wall-clock deadline (admission time + effective timeout).
    deadline: Option<Instant>,
    /// Effective timeout in ms (for the typed error), 0 when none.
    timeout_ms: u64,
}

impl PendingJob {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

struct SchedState {
    pending: VecDeque<PendingJob>,
    paused: bool,
    draining: bool,
    shutdown: bool,
    in_flight: usize,
}

/// Monotone counters exposed to `/stats` and the bench.
#[derive(Debug, Default)]
pub struct Counters {
    pub jobs_done: AtomicU64,
    pub jobs_failed: AtomicU64,
    pub jobs_rejected: AtomicU64,
    /// Jobs that blew their deadline (shed from the queue or aborted
    /// mid-run).
    pub jobs_timeout: AtomicU64,
    /// Submissions refused at the door with 429 (queue full).
    pub jobs_shed: AtomicU64,
    pub coalesced_batches: AtomicU64,
    pub coalesced_jobs: AtomicU64,
    /// Total modelled device nanoseconds spent executing (each
    /// coalesced batch counted once).
    pub device_ns: AtomicU64,
    /// Worker device rebuilds (panic or sticky device-lost).
    pub worker_rebuilds: AtomicU64,
    /// Circuit-breaker trips (a worker entering quarantine).
    pub breaker_trips: AtomicU64,
    /// Half-open probe batches after quarantine.
    pub breaker_probes: AtomicU64,
}

/// Point-in-time statistics snapshot.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StatsSnapshot {
    pub jobs_done: u64,
    pub jobs_failed: u64,
    pub jobs_rejected: u64,
    pub jobs_timeout: u64,
    pub jobs_shed: u64,
    pub coalesced_batches: u64,
    pub coalesced_jobs: u64,
    pub device_ms: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_ratio: f64,
    pub cache_entries: u64,
    pub cache_evictions: u64,
    pub queue_depth: u64,
    pub worker_rebuilds: u64,
    pub breaker_trips: u64,
    pub breaker_probes: u64,
    pub workers_quarantined: u64,
    pub draining: bool,
}

/// Outcome of a graceful drain: what finished, what had to be cut off.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Every job (queued + in-flight at drain start) reached a terminal
    /// state before the drain deadline.
    pub clean: bool,
    /// Queued jobs failed with a typed `draining` record at the
    /// deadline.
    pub shed_queued: usize,
    /// Workers whose in-flight batch was cancelled at the deadline.
    pub cancelled_in_flight: usize,
    /// Totals at snapshot time.
    pub jobs_done: u64,
    pub jobs_failed: u64,
    /// Terminal job records, id-ascending.
    pub records: Vec<JobRecord>,
}

struct Shared {
    registry: Arc<Registry>,
    cache: Arc<ResultCache>,
    jobs: RwLock<HashMap<u64, JobRecord>>,
    state: StdMutex<SchedState>,
    /// Wakes workers: new work, pause/resume, shutdown.
    work_cv: Condvar,
    /// Wakes completion waiters (`wait`, `wait_idle`).
    done_cv: Condvar,
    next_id: AtomicU64,
    counters: Counters,
    /// Workers currently quarantined by their circuit breaker (gauge).
    quarantined: AtomicU64,
    /// EWMA of wall-clock service time per job, in ns (drives the
    /// `Retry-After` hint). 0 until the first batch lands.
    service_ns_ewma: AtomicU64,
    /// Per-worker slot holding the cancel token of the batch the worker
    /// is currently running; drain fires them at its deadline.
    active_cancels: Vec<StdMutex<Option<CancelToken>>>,
    cfg: ServiceConfig,
}

/// The scheduler: submission front end plus the worker pool.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: StdMutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    pub fn new(
        cfg: ServiceConfig,
        registry: Arc<Registry>,
        cache: Arc<ResultCache>,
    ) -> ServiceResult<Scheduler> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            registry,
            cache,
            jobs: RwLock::new(HashMap::new()),
            state: StdMutex::new(SchedState {
                pending: VecDeque::new(),
                paused: cfg.start_paused,
                draining: false,
                shutdown: false,
                in_flight: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            quarantined: AtomicU64::new(0),
            service_ns_ewma: AtomicU64::new(0),
            active_cancels: (0..cfg.workers).map(|_| StdMutex::new(None)).collect(),
            cfg: cfg.clone(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sygraph-worker-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Scheduler {
            shared,
            workers: StdMutex::new(workers),
        })
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// True while the service can take more work: not shut down, not
    /// draining, and the queue below the high-water mark. An external
    /// balancer polls this to steer load away before the 429s start.
    pub fn ready(&self) -> bool {
        let st = lock(&self.shared.state);
        if st.shutdown || st.draining {
            return false;
        }
        self.shared.cfg.max_queue == 0 || st.pending.len() < self.shared.cfg.high_water()
    }

    /// Validates and submits a job. Well-formed requests always get an
    /// id; admission-rejected jobs come back with an id too, their
    /// record already terminal at [`JobState::Rejected`]. Malformed
    /// requests (unknown algorithm, unknown graph, missing or
    /// out-of-range source, non-positive Δ) are refused with the typed
    /// error instead — nothing is queued, nothing panics. A full queue
    /// refuses with [`ServiceError::Overloaded`] (429 + Retry-After); a
    /// draining service with [`ServiceError::Draining`] (503).
    pub fn submit(&self, request: JobRequest) -> ServiceResult<u64> {
        {
            let st = lock(&self.shared.state);
            if st.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if st.draining {
                return Err(ServiceError::Draining);
            }
        }
        let algo = Algo::parse(&request.algo)?;
        let reg = self.shared.registry.get(&request.graph)?;
        let n = reg.vertex_count();

        let source = if algo.needs_source() {
            let src = request.source.ok_or_else(|| {
                ServiceError::BadRequest(format!("{} requires a source", algo.label()))
            })?;
            validate_sources(n, &[src]).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            Some(src)
        } else {
            None
        };
        let delta_bits = match algo {
            Algo::DeltaSssp => {
                let d = request.delta.unwrap_or(2.0);
                if d <= 0.0 || d.is_nan() {
                    return Err(ServiceError::BadRequest(format!(
                        "delta must be positive, got {d}"
                    )));
                }
                Some(d.to_bits())
            }
            _ => None,
        };

        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let mut record = JobRecord::queued(id, request.clone(), reg.version);

        // Cache lookup first: a hit does no device work, so it cannot
        // be admission-rejected, never waits for a worker, and needs no
        // deadline.
        let no_cache = request.no_cache.unwrap_or(false);
        let key = CacheKey {
            graph: reg.name.clone(),
            version: reg.version,
            algo,
            source,
            delta_bits,
        };
        if !no_cache {
            if let Some(hit) = self.shared.cache.get(&key) {
                record.state = JobState::Done;
                record.values = Some(hit.values.clone());
                record.metrics = JobMetrics {
                    iterations: hit.iterations,
                    sim_ms: 0.0,
                    cache_hit: true,
                    batch_size: 1,
                    ..JobMetrics::default()
                };
                self.shared
                    .counters
                    .jobs_done
                    .fetch_add(1, Ordering::Relaxed);
                self.finish(record);
                return Ok(id);
            }
        }

        // Admission control against the modelled single-job peak.
        let modeled = modeled_peak_bytes(algo, n as u64, reg.edge_count() as u64, 1);
        let budget = self.job_budget();
        let free = self
            .shared
            .cfg
            .profile
            .vram_bytes
            .saturating_sub(self.shared.registry.resident_bytes());
        if modeled > budget || modeled > free {
            let limit = budget.min(free);
            let err = ServiceError::AdmissionRejected {
                modeled_bytes: modeled,
                budget_bytes: limit,
            };
            record.state = JobState::Rejected;
            record.error = Some(err.to_string());
            record.error_kind = Some(err.kind().to_string());
            record.http_status = Some(err.http_status());
            record.metrics.modeled_peak_bytes = modeled;
            self.shared
                .counters
                .jobs_rejected
                .fetch_add(1, Ordering::Relaxed);
            self.finish(record);
            return Ok(id);
        }
        record.metrics.modeled_peak_bytes = modeled;

        // Effective deadline: client timeout capped by the server max,
        // else the server default.
        let cfg = &self.shared.cfg;
        let timeout_ms = match request.timeout_ms {
            Some(t) => Some(t.min(cfg.max_timeout_ms)),
            None => cfg.default_timeout_ms.map(|t| t.min(cfg.max_timeout_ms)),
        };
        let deadline = timeout_ms.map(|t| Instant::now() + Duration::from_millis(t));

        let mut st = lock(&self.shared.state);
        // Re-check under the lock: drain/shutdown may have started while
        // we validated.
        if st.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if st.draining {
            return Err(ServiceError::Draining);
        }
        if cfg.max_queue > 0 && st.pending.len() >= cfg.max_queue {
            let queued = st.pending.len();
            drop(st);
            self.shared
                .counters
                .jobs_shed
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded {
                queued,
                limit: cfg.max_queue,
                retry_after_ms: self.retry_after_ms(queued),
            });
        }
        self.shared.jobs.write().insert(id, record);
        st.pending.push_back(PendingJob {
            id,
            graph: reg.name.clone(),
            version: reg.version,
            algo,
            source: source.unwrap_or(0),
            coalesce: algo.coalescible() && !request.no_coalesce.unwrap_or(false),
            enqueued_at: Instant::now(),
            deadline,
            timeout_ms: timeout_ms.unwrap_or(0),
        });
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// `Retry-After` hint from the service-time EWMA: time for the
    /// current backlog to drain across the worker pool, clamped to
    /// [100 ms, 60 s]. Before any job has landed the EWMA is unknown and
    /// the hint defaults to 1 s.
    fn retry_after_ms(&self, queued: usize) -> u64 {
        let ewma_ns = self.shared.service_ns_ewma.load(Ordering::Relaxed);
        if ewma_ns == 0 {
            return 1_000;
        }
        let workers = self.shared.cfg.workers.max(1) as u64;
        let drain_ns = (queued as u64 / workers + 1).saturating_mul(ewma_ns);
        (drain_ns / 1_000_000).clamp(100, 60_000)
    }

    /// Records a job that completed without ever being queued.
    fn finish(&self, record: JobRecord) {
        self.shared.jobs.write().insert(record.id, record);
        self.shared.done_cv.notify_all();
    }

    fn job_budget(&self) -> u64 {
        self.shared
            .cfg
            .job_mem_budget
            .unwrap_or(self.shared.cfg.profile.vram_bytes)
    }

    /// Snapshot of a job record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.shared.jobs.read().get(&id).cloned()
    }

    /// All job ids, ascending (listing endpoint).
    pub fn job_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.shared.jobs.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Blocks until `id` reaches a terminal state; `None` for unknown ids.
    pub fn wait(&self, id: u64) -> Option<JobRecord> {
        loop {
            match self.job(id) {
                None => return None,
                Some(rec) if terminal(rec.state) => return Some(rec),
                Some(_) => {
                    let st = lock(&self.shared.state);
                    let _ = self
                        .shared
                        .done_cv
                        .wait_timeout(st, Duration::from_millis(20));
                }
            }
        }
    }

    /// Blocks until the queue is empty and no job is executing.
    pub fn wait_idle(&self) {
        loop {
            let st = lock(&self.shared.state);
            if st.pending.is_empty() && st.in_flight == 0 {
                return;
            }
            let _ = self
                .shared
                .done_cv
                .wait_timeout(st, Duration::from_millis(20));
        }
    }

    /// Pauses claiming (already-running batches finish).
    pub fn pause(&self) {
        lock(&self.shared.state).paused = true;
        self.shared.work_cv.notify_all();
    }

    /// Resumes claiming.
    pub fn resume(&self) {
        lock(&self.shared.state).paused = false;
        self.shared.work_cv.notify_all();
    }

    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.counters;
        let (queue_depth, draining) = {
            let st = lock(&self.shared.state);
            (st.pending.len() as u64, st.draining)
        };
        StatsSnapshot {
            jobs_done: c.jobs_done.load(Ordering::Relaxed),
            jobs_failed: c.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: c.jobs_rejected.load(Ordering::Relaxed),
            jobs_timeout: c.jobs_timeout.load(Ordering::Relaxed),
            jobs_shed: c.jobs_shed.load(Ordering::Relaxed),
            coalesced_batches: c.coalesced_batches.load(Ordering::Relaxed),
            coalesced_jobs: c.coalesced_jobs.load(Ordering::Relaxed),
            device_ms: c.device_ns.load(Ordering::Relaxed) as f64 / 1e6,
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
            cache_hit_ratio: self.shared.cache.hit_ratio(),
            cache_entries: self.shared.cache.len() as u64,
            cache_evictions: self.shared.cache.evictions(),
            queue_depth,
            worker_rebuilds: c.worker_rebuilds.load(Ordering::Relaxed),
            breaker_trips: c.breaker_trips.load(Ordering::Relaxed),
            breaker_probes: c.breaker_probes.load(Ordering::Relaxed),
            workers_quarantined: self.shared.quarantined.load(Ordering::Relaxed),
            draining,
        }
    }

    /// Graceful drain: stop admissions (new submissions get a typed
    /// `Draining` 503), unpause, let queued and in-flight jobs finish.
    /// At `deadline`, still-queued jobs are failed with a `draining`
    /// record and in-flight batches are cancelled through their tokens
    /// (the engine aborts at its next checkpoint boundary). Afterwards
    /// the workers are joined and every terminal record is snapshotted.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let deadline_at = Instant::now() + deadline;
        {
            let mut st = lock(&self.shared.state);
            st.draining = true;
            // Drain means "finish everything": a paused queue would
            // never empty.
            st.paused = false;
        }
        self.shared.work_cv.notify_all();

        let mut shed_queued = 0usize;
        let mut cancelled_in_flight = 0usize;
        let mut cut_off = false;
        loop {
            let mut st = lock(&self.shared.state);
            if st.pending.is_empty() && st.in_flight == 0 {
                break;
            }
            if !cut_off && Instant::now() >= deadline_at {
                cut_off = true;
                let leftovers: Vec<PendingJob> = st.pending.drain(..).collect();
                shed_queued = leftovers.len();
                let ids: Vec<u64> = leftovers.iter().map(|p| p.id).collect();
                fail_ids(&self.shared, &ids, &ServiceError::Draining);
                for slot in &self.shared.active_cancels {
                    if let Some(tok) = &*lock(slot) {
                        tok.cancel();
                        cancelled_in_flight += 1;
                    }
                }
            }
            let _ = self
                .shared
                .done_cv
                .wait_timeout(st, Duration::from_millis(10));
        }

        self.shutdown();

        let jobs = self.shared.jobs.read();
        let mut records: Vec<JobRecord> = jobs
            .values()
            .filter(|r| terminal(r.state))
            .cloned()
            .collect();
        drop(jobs);
        records.sort_by_key(|r| r.id);
        let c = &self.shared.counters;
        DrainReport {
            clean: !cut_off,
            shed_queued,
            cancelled_in_flight,
            jobs_done: c.jobs_done.load(Ordering::Relaxed),
            jobs_failed: c.jobs_failed.load(Ordering::Relaxed),
            records,
        }
    }

    /// Stops accepting work, wakes and joins every worker. Pending jobs
    /// stay `Queued` in the table — use [`Scheduler::drain`] for the
    /// graceful variant that completes or terminally fails them.
    pub fn shutdown(&self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        let mut workers = lock(&self.workers);
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn terminal(state: JobState) -> bool {
    matches!(
        state,
        JobState::Done | JobState::Failed | JobState::Rejected
    )
}

fn lock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Workers catch panics, so poisoning is all but impossible; if it
    // ever happens the protected state is still structurally sound.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Largest supported lane width (8|16|32|64) that is ≤ `cap` and whose
/// modelled batch peak fits `budget`; 1 when even 8 lanes do not fit.
fn admissible_width(n: u64, m: u64, cap: u32, budget: u64) -> u32 {
    let mut width = 0;
    for w in [8u32, 16, 32, 64] {
        if w <= cap && modeled_peak_bytes(Algo::Bfs, n, m, w) <= budget {
            width = w;
        }
    }
    width.max(1)
}

/// Builds a worker's device queue, attaching the configured fault plan.
fn build_worker_queue(shared: &Shared) -> Queue {
    let device = Device::new(shared.cfg.profile.clone());
    match &shared.cfg.fault_plan {
        Some(plan) => Queue::with_faults(device, plan.clone()),
        None => Queue::new(device),
    }
}

fn worker_loop(shared: Arc<Shared>, widx: usize) {
    let mut q = build_worker_queue(&shared);
    let mut mirror = DeviceMirror::new();
    // Consecutive rebuilds since the last healthy batch; reaching the
    // breaker threshold quarantines this worker.
    let mut consecutive_rebuilds = 0u32;
    loop {
        let threshold = shared.cfg.breaker_threshold;
        if threshold > 0 && consecutive_rebuilds >= threshold {
            // Circuit open: quarantine, then come back half-open with
            // exactly one probe batch. A failed probe lands back here.
            shared
                .counters
                .breaker_trips
                .fetch_add(1, Ordering::Relaxed);
            shared.quarantined.fetch_add(1, Ordering::Relaxed);
            let opened = Instant::now();
            let open_for = Duration::from_millis(shared.cfg.breaker_open_ms);
            let mut st = lock(&shared.state);
            while !st.shutdown {
                let elapsed = opened.elapsed();
                if elapsed >= open_for {
                    break;
                }
                let (guard, _) = shared
                    .work_cv
                    .wait_timeout(st, open_for - elapsed)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
            let stop = st.shutdown;
            drop(st);
            shared.quarantined.fetch_sub(1, Ordering::Relaxed);
            if stop {
                return;
            }
            shared
                .counters
                .breaker_probes
                .fetch_add(1, Ordering::Relaxed);
            // Half-open: one rebuild away from re-tripping, one healthy
            // batch away from closing.
            consecutive_rebuilds = threshold - 1;
        }

        let batch = match claim(&shared) {
            Some(batch) => batch,
            None => return, // shutdown
        };
        let panicked = {
            let run = AssertUnwindSafe(|| execute(&shared, &q, &mut mirror, &batch, widx));
            catch_unwind(run).is_err()
        };
        if panicked {
            fail_batch(&shared, &batch, "worker panicked while executing the job");
        }
        // Clear the drain-cancellation slot and any leftover token on
        // the queue (harmless when execute already did).
        *lock(&shared.active_cancels[widx]) = None;
        q.set_cancel_token(None);

        // A panic leaves the device state mid-kernel garbage; a sticky
        // pending fault (device lost beyond the recovery policy's reach)
        // leaves the queue refusing every launch. Both need a rebuild.
        let rebuild = panicked || q.fault_pending();
        if rebuild {
            q = build_worker_queue(&shared);
            mirror = DeviceMirror::new();
            shared
                .counters
                .worker_rebuilds
                .fetch_add(1, Ordering::Relaxed);
            consecutive_rebuilds += 1;
        } else {
            consecutive_rebuilds = 0;
        }

        let mut st = lock(&shared.state);
        st.in_flight -= batch.len();
        drop(st);
        shared.done_cv.notify_all();
    }
}

/// Fails every expired job currently in `pending`, removing it from the
/// queue. Called with the scheduler state locked.
fn shed_expired(shared: &Shared, st: &mut SchedState) {
    let now = Instant::now();
    if !st.pending.iter().any(|p| p.expired(now)) {
        return;
    }
    let mut kept = VecDeque::with_capacity(st.pending.len());
    for p in st.pending.drain(..) {
        if p.expired(now) {
            fail_ids(
                shared,
                &[p.id],
                &ServiceError::DeadlineExceeded {
                    timeout_ms: p.timeout_ms,
                },
            );
        } else {
            kept.push_back(p);
        }
    }
    st.pending = kept;
}

/// Claims the next unit of work: one job, or a coalesced batch grown
/// from a coalescible head. Expired queued jobs are shed (typed
/// `deadline-exceeded`) before anything is handed out. Returns `None`
/// on shutdown.
fn claim(shared: &Shared) -> Option<Vec<PendingJob>> {
    let mut st = lock(&shared.state);
    loop {
        if st.shutdown {
            return None;
        }
        shed_expired(shared, &mut st);
        if !st.paused && !st.pending.is_empty() {
            break;
        }
        st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    let head = st.pending.pop_front().expect("pending checked non-empty");
    let mut batch = vec![head];
    if batch[0].coalesce {
        let budget = shared
            .cfg
            .job_mem_budget
            .unwrap_or(shared.cfg.profile.vram_bytes);
        let reg = shared.registry.get(&batch[0].graph).ok();
        let width = reg
            .map(|r| {
                admissible_width(
                    r.vertex_count() as u64,
                    r.edge_count() as u64,
                    shared.cfg.batch_width,
                    budget,
                )
            })
            .unwrap_or(1) as usize;
        let window = Duration::from_millis(shared.cfg.batch_window_ms);
        let deadline = batch[0].enqueued_at + window;
        loop {
            // Drain currently-pending mates into the batch.
            let mut i = 0;
            while i < st.pending.len() && batch.len() < width {
                let p = &st.pending[i];
                if p.coalesce
                    && p.graph == batch[0].graph
                    && p.version == batch[0].version
                    && p.algo == batch[0].algo
                {
                    batch.push(st.pending.remove(i).expect("index in bounds"));
                } else {
                    i += 1;
                }
            }
            // A draining service stops waiting for stragglers: nothing
            // new is being admitted, so the window can only add latency.
            if batch.len() >= width || st.paused || st.shutdown || st.draining {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = shared
                .work_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
    st.in_flight += batch.len();
    Some(batch)
}

fn mark_running(shared: &Shared, batch: &[&PendingJob]) {
    let mut jobs = shared.jobs.write();
    for p in batch {
        if let Some(rec) = jobs.get_mut(&p.id) {
            rec.state = JobState::Running;
        }
    }
}

fn fail_batch(shared: &Shared, batch: &[PendingJob], msg: &str) {
    let err = ServiceError::Device(SimError::Algorithm(msg.to_string()));
    let ids: Vec<u64> = batch.iter().map(|p| p.id).collect();
    fail_ids(shared, &ids, &err);
}

/// Marks the given (non-terminal) records `Failed` with `err`'s typed
/// fields, bumping the counter the error class belongs to.
fn fail_ids(shared: &Shared, ids: &[u64], err: &ServiceError) {
    let msg = err.to_string();
    let counter = match err {
        ServiceError::DeadlineExceeded { .. } => &shared.counters.jobs_timeout,
        _ => &shared.counters.jobs_failed,
    };
    let mut jobs = shared.jobs.write();
    for id in ids {
        if let Some(rec) = jobs.get_mut(id) {
            if !terminal(rec.state) {
                rec.state = JobState::Failed;
                rec.error = Some(msg.clone());
                rec.error_kind = Some(err.kind().to_string());
                rec.http_status = Some(err.http_status());
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    drop(jobs);
    shared.done_cv.notify_all();
}

/// Executes a claimed batch on this worker's queue.
fn execute(
    shared: &Shared,
    q: &Queue,
    mirror: &mut DeviceMirror,
    batch: &[PendingJob],
    widx: usize,
) {
    // Shed batch members whose deadline passed between claim and here
    // (e.g. mates that expired during the coalescing window).
    let now = Instant::now();
    let mut live: Vec<&PendingJob> = Vec::with_capacity(batch.len());
    for p in batch {
        if p.expired(now) {
            fail_ids(
                shared,
                &[p.id],
                &ServiceError::DeadlineExceeded {
                    timeout_ms: p.timeout_ms,
                },
            );
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    mark_running(shared, &live);

    // Re-resolve the graph; it may have been superseded since submit.
    let reg = match shared.registry.get(&live[0].graph) {
        Ok(reg) if reg.version == live[0].version => reg,
        Ok(reg) => {
            let msg = format!(
                "graph {:?} version {} superseded by {} before the job ran",
                live[0].graph, live[0].version, reg.version
            );
            return fail_live(shared, &live, ServiceError::NotFound(msg));
        }
        Err(e) => return fail_live(shared, &live, e),
    };
    let graph = match mirror.resolve(q, &reg) {
        Ok(g) => g,
        Err(e) => return fail_live(shared, &live, e),
    };

    // Cancellation: the batch runs under one token whose deadline is the
    // earliest live deadline (coalesced mates share a pass, so the
    // tightest deadline governs). The token is also published to the
    // drain path, which fires it when the drain deadline passes.
    let batch_deadline = live.iter().filter_map(|p| p.deadline).min();
    let token = match batch_deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    q.set_cancel_token(Some(token.clone()));
    *lock(&shared.active_cancels[widx]) = Some(token);

    // Per-job metric scoping on this worker's reused queue: a profiler
    // epoch (kernel/recovery counts) plus a peak-watermark reset (the
    // worker runs one batch at a time, so the device ledger is ours).
    let epoch = q.profiler().begin_epoch();
    q.device().reset_mem_peak();
    let used_before = q.device().mem_used();
    let opts = OptConfig {
        recovery: shared.cfg.recovery,
        ..OptConfig::all()
    };

    let wall_start = Instant::now();
    let coalesced = live.len() > 1;
    let outcome: Result<BatchOutcome, ServiceError> = if coalesced {
        let sources: Vec<u32> = live.iter().map(|p| p.source).collect();
        let width = admissible_width(
            reg.vertex_count() as u64,
            reg.edge_count() as u64,
            shared.cfg.batch_width,
            shared
                .cfg
                .job_mem_budget
                .unwrap_or(shared.cfg.profile.vram_bytes),
        );
        multi::bfs_multi(q, &graph.csr, &sources, width, &opts)
            .map(|r| BatchOutcome {
                per_job: r.per_source.into_iter().map(JobValues::U32).collect(),
                iterations: r.iterations,
                sim_ms: r.sim_ms,
            })
            .map_err(ServiceError::from)
    } else {
        run_single(shared, q, &graph, live[0], &opts).map(|(values, iterations, sim_ms)| {
            BatchOutcome {
                per_job: vec![values],
                iterations,
                sim_ms,
            }
        })
    };

    // Detach the token before result handling: the batch is no longer
    // cancellable, and drain must not fire a token for finished work.
    q.set_cancel_token(None);
    *lock(&shared.active_cancels[widx]) = None;

    let outcome = match outcome {
        Ok(o) => o,
        Err(ServiceError::Device(SimError::Cancelled { .. })) => {
            // The engine aborted at a checkpoint boundary. Per job,
            // decide what the cancellation was: its own deadline, or the
            // drain deadline cutting the batch off.
            let now = Instant::now();
            for p in &live {
                let err = if p.expired(now) {
                    ServiceError::DeadlineExceeded {
                        timeout_ms: p.timeout_ms,
                    }
                } else {
                    ServiceError::Draining
                };
                fail_ids(shared, &[p.id], &err);
            }
            return;
        }
        Err(e) => return fail_live(shared, &live, e),
    };

    // Service-time EWMA (wall clock per job) for the Retry-After hint.
    let per_job_ns = (wall_start.elapsed().as_nanos() as u64) / live.len().max(1) as u64;
    let old = shared.service_ns_ewma.load(Ordering::Relaxed);
    let next = if old == 0 {
        per_job_ns
    } else {
        (old * 4 + per_job_ns) / 5
    };
    shared.service_ns_ewma.store(next, Ordering::Relaxed);

    let mem_peak = q.device().mem_peak().saturating_sub(used_before);
    let kernel_launches = q.profiler().kernel_count_since(&epoch) as u64;
    let recovery_events = q.profiler().recovery_count_since(&epoch) as u64;
    shared
        .counters
        .device_ns
        .fetch_add((outcome.sim_ms * 1e6) as u64, Ordering::Relaxed);
    if coalesced {
        shared
            .counters
            .coalesced_batches
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .coalesced_jobs
            .fetch_add(live.len() as u64, Ordering::Relaxed);
    }

    // Store lanes in the cache, then complete the records.
    let mut jobs = shared.jobs.write();
    for (p, values) in live.iter().zip(outcome.per_job) {
        let rec = match jobs.get_mut(&p.id) {
            Some(rec) => rec,
            None => continue,
        };
        if !rec.request.no_cache.unwrap_or(false) {
            shared.cache.put(
                CacheKey {
                    graph: p.graph.clone(),
                    version: p.version,
                    algo: p.algo,
                    source: if p.algo.needs_source() {
                        Some(p.source)
                    } else {
                        None
                    },
                    delta_bits: match p.algo {
                        Algo::DeltaSssp => Some(rec.request.delta.unwrap_or(2.0).to_bits()),
                        _ => None,
                    },
                },
                CachedResult {
                    values: values.clone(),
                    iterations: outcome.iterations,
                    sim_ms: outcome.sim_ms,
                },
            );
        }
        rec.state = JobState::Done;
        rec.values = Some(values);
        rec.metrics = JobMetrics {
            iterations: outcome.iterations,
            sim_ms: outcome.sim_ms,
            kernel_launches,
            mem_peak_bytes: mem_peak,
            modeled_peak_bytes: rec.metrics.modeled_peak_bytes,
            cache_hit: false,
            coalesced,
            batch_size: live.len() as u32,
            recovery_events,
        };
        shared.counters.jobs_done.fetch_add(1, Ordering::Relaxed);
    }
    drop(jobs);
    shared.done_cv.notify_all();
}

struct BatchOutcome {
    per_job: Vec<JobValues>,
    iterations: u32,
    sim_ms: f64,
}

fn fail_live(shared: &Shared, live: &[&PendingJob], err: ServiceError) {
    let ids: Vec<u64> = live.iter().map(|p| p.id).collect();
    fail_ids(shared, &ids, &err);
}

/// Runs one non-coalesced job. BFS runs on the push (CSR) view even
/// when a pull mirror is resident, keeping serial output exactly the
/// baseline that `bfs_multi` lanes are bit-identical to — coalescing
/// must be unobservable in the values.
fn run_single(
    shared: &Shared,
    q: &Queue,
    graph: &Graph,
    p: &PendingJob,
    opts: &OptConfig,
) -> ServiceResult<(JobValues, u32, f64)> {
    fn unpack<T>(
        r: AlgoResult<T>,
        wrap: impl FnOnce(Vec<T>) -> JobValues,
    ) -> (JobValues, u32, f64) {
        (wrap(r.values), r.iterations, r.sim_ms)
    }
    let rec_delta = shared
        .jobs
        .read()
        .get(&p.id)
        .and_then(|r| r.request.delta)
        .unwrap_or(2.0);
    Ok(match p.algo {
        Algo::Bfs => unpack(bfs::run(q, &graph.csr, p.source, opts)?, JobValues::U32),
        Algo::Sssp => unpack(sssp::run(q, &graph.csr, p.source, opts)?, JobValues::F32),
        Algo::DeltaSssp => unpack(
            delta::run(q, &graph.csr, p.source, opts, rec_delta)?,
            JobValues::F32,
        ),
        Algo::Cc => unpack(cc::run(q, graph, opts)?, JobValues::U32),
        Algo::Bc => unpack(bc::run(q, &graph.csr, p.source, opts)?, JobValues::F32),
        Algo::Pagerank => unpack(
            pagerank::run(q, &graph.csr, opts, Default::default())?,
            JobValues::F32,
        ),
    })
}
