//! Concurrent job scheduler: a shared submission queue drained by worker
//! threads, each owning one simulated device queue.
//!
//! The pieces the ISSUE names live here:
//!
//! - **Admission control** — at submit time the job's peak scratch
//!   memory is modelled ([`modeled_peak_bytes`]) and checked against the
//!   per-job budget and the device's free capacity; oversized jobs stop
//!   at `Rejected` instead of OOMing a worker mid-run.
//! - **Request coalescing** — when a worker claims a coalescible head
//!   job (single-source BFS), it folds every compatible pending request
//!   (same graph, same version, coalescing not opted out) into one
//!   W-lane multi-source pass, waiting up to the batching window for
//!   stragglers, then demuxes the per-lane vectors back to the
//!   individual jobs. Per-lane output is bit-identical to a serial
//!   rooted run (the PR-7 lane property), so callers cannot observe
//!   whether their job was batched — except in the metrics.
//! - **Result caching** — before queueing, the scheduler consults the
//!   [`ResultCache`]; a hit completes the job immediately with zero
//!   device time. Workers store what they compute (including every lane
//!   of a coalesced batch, under single-source keys).
//!
//! Workers survive algorithm panics: a panicking job is recorded as
//! `Failed` and the worker rebuilds its device state, so one poisoned
//! request cannot take the service down.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use sygraph_algos::common::AlgoResult;
use sygraph_algos::{bc, bfs, cc, delta, multi, pagerank, sssp};
use sygraph_core::graph::{validate_sources, Graph};
use sygraph_core::inspector::OptConfig;
use sygraph_sim::{Device, DeviceProfile, Queue};

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::error::{ServiceError, ServiceResult};
use crate::job::{Algo, JobMetrics, JobRecord, JobRequest, JobState, JobValues};
use crate::registry::{DeviceMirror, Registry};

/// Scheduler / service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulated device profile each worker instantiates.
    pub profile: DeviceProfile,
    /// Worker threads (= simulated device queues).
    pub workers: usize,
    /// How long a worker holding an underfull coalescible batch waits
    /// for stragglers, in milliseconds. 0 = batch only what is already
    /// pending at claim time (deterministic; what the bench uses).
    pub batch_window_ms: u64,
    /// Maximum lanes per coalesced pass; must be 8, 16, 32 or 64.
    pub batch_width: u32,
    /// Per-job modelled peak scratch budget in bytes. `None` = the
    /// device's full capacity.
    pub job_mem_budget: Option<u64>,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Start with the queue paused: jobs accumulate until
    /// [`Scheduler::resume`], letting tests and benches stage a burst
    /// deterministically.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            profile: DeviceProfile::host_test(),
            workers: 2,
            batch_window_ms: 0,
            batch_width: 32,
            job_mem_budget: None,
            cache_entries: 1024,
            start_paused: false,
        }
    }
}

impl ServiceConfig {
    pub fn validate(&self) -> ServiceResult<()> {
        if self.workers == 0 {
            return Err(ServiceError::BadRequest("workers must be >= 1".into()));
        }
        if !matches!(self.batch_width, 8 | 16 | 32 | 64) {
            return Err(ServiceError::BadRequest(format!(
                "batch_width must be 8|16|32|64, got {}",
                self.batch_width
            )));
        }
        Ok(())
    }
}

/// Coarse peak-scratch model for admission control, in bytes. Counts the
/// algorithm's value/state arrays plus double-buffered two-layer
/// frontiers; deliberately a little generous so a pass never exceeds the
/// admitted figure by more than slack. `lanes` scales the multi-source
/// BFS layout (per-lane depth rows + packed lane masks).
pub fn modeled_peak_bytes(algo: Algo, n: u64, _m: u64, lanes: u32) -> u64 {
    let lanes = lanes.max(1) as u64;
    // Two in/out frontiers, each a two-layer bitmap plus compaction
    // scratch: ~1 byte/vertex covers every word width used.
    let frontier = 2 * n + 256;
    let state = match algo {
        // depth rows (4B per lane per vertex) + packed visited lanes.
        Algo::Bfs => lanes * 4 * n + lanes * n / 4 + lanes * frontier / 2,
        Algo::Sssp => 4 * n,
        // distances + bucket tags.
        Algo::DeltaSssp => 8 * n,
        Algo::Cc => 4 * n,
        // depth + sigma + delta + retained per-level frontier pool.
        Algo::Bc => 12 * n + 4 * n,
        // rank + next + share + scalars.
        Algo::Pagerank => 12 * n + 64,
    };
    state + frontier
}

/// One queued unit of work. Carries the match fields for coalescing so
/// workers never need the job table while holding the queue lock.
struct PendingJob {
    id: u64,
    graph: String,
    version: u64,
    algo: Algo,
    source: u32,
    coalesce: bool,
    enqueued_at: Instant,
}

struct SchedState {
    pending: VecDeque<PendingJob>,
    paused: bool,
    shutdown: bool,
    in_flight: usize,
}

/// Monotone counters exposed to `/stats` and the bench.
#[derive(Debug, Default)]
pub struct Counters {
    pub jobs_done: AtomicU64,
    pub jobs_failed: AtomicU64,
    pub jobs_rejected: AtomicU64,
    pub coalesced_batches: AtomicU64,
    pub coalesced_jobs: AtomicU64,
    /// Total modelled device nanoseconds spent executing (each
    /// coalesced batch counted once).
    pub device_ns: AtomicU64,
}

/// Point-in-time statistics snapshot.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StatsSnapshot {
    pub jobs_done: u64,
    pub jobs_failed: u64,
    pub jobs_rejected: u64,
    pub coalesced_batches: u64,
    pub coalesced_jobs: u64,
    pub device_ms: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_ratio: f64,
    pub cache_entries: u64,
}

struct Shared {
    registry: Arc<Registry>,
    cache: Arc<ResultCache>,
    jobs: RwLock<HashMap<u64, JobRecord>>,
    state: StdMutex<SchedState>,
    /// Wakes workers: new work, pause/resume, shutdown.
    work_cv: Condvar,
    /// Wakes completion waiters (`wait`, `wait_idle`).
    done_cv: Condvar,
    next_id: AtomicU64,
    counters: Counters,
    ready: AtomicBool,
    cfg: ServiceConfig,
}

/// The scheduler: submission front end plus the worker pool.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    pub fn new(
        cfg: ServiceConfig,
        registry: Arc<Registry>,
        cache: Arc<ResultCache>,
    ) -> ServiceResult<Scheduler> {
        cfg.validate()?;
        let shared = Arc::new(Shared {
            registry,
            cache,
            jobs: RwLock::new(HashMap::new()),
            state: StdMutex::new(SchedState {
                pending: VecDeque::new(),
                paused: cfg.start_paused,
                shutdown: false,
                in_flight: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            counters: Counters::default(),
            ready: AtomicBool::new(true),
            cfg: cfg.clone(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("sygraph-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker")
            })
            .collect();
        Ok(Scheduler { shared, workers })
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// True once workers are accepting jobs (and not shut down).
    pub fn ready(&self) -> bool {
        self.shared.ready.load(Ordering::SeqCst)
    }

    /// Validates and submits a job. Well-formed requests always get an
    /// id; admission-rejected jobs come back with an id too, their
    /// record already terminal at [`JobState::Rejected`]. Malformed
    /// requests (unknown algorithm, unknown graph, missing or
    /// out-of-range source, non-positive Δ) are refused with the typed
    /// error instead — nothing is queued, nothing panics.
    pub fn submit(&self, request: JobRequest) -> ServiceResult<u64> {
        {
            let st = lock(&self.shared.state);
            if st.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
        }
        let algo = Algo::parse(&request.algo)?;
        let reg = self.shared.registry.get(&request.graph)?;
        let n = reg.vertex_count();

        let source = if algo.needs_source() {
            let src = request.source.ok_or_else(|| {
                ServiceError::BadRequest(format!("{} requires a source", algo.label()))
            })?;
            validate_sources(n, &[src]).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
            Some(src)
        } else {
            None
        };
        let delta_bits = match algo {
            Algo::DeltaSssp => {
                let d = request.delta.unwrap_or(2.0);
                if d <= 0.0 || d.is_nan() {
                    return Err(ServiceError::BadRequest(format!(
                        "delta must be positive, got {d}"
                    )));
                }
                Some(d.to_bits())
            }
            _ => None,
        };

        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let mut record = JobRecord::queued(id, request.clone(), reg.version);

        // Cache lookup first: a hit does no device work, so it cannot
        // be admission-rejected and never waits for a worker.
        let no_cache = request.no_cache.unwrap_or(false);
        let key = CacheKey {
            graph: reg.name.clone(),
            version: reg.version,
            algo,
            source,
            delta_bits,
        };
        if !no_cache {
            if let Some(hit) = self.shared.cache.get(&key) {
                record.state = JobState::Done;
                record.values = Some(hit.values.clone());
                record.metrics = JobMetrics {
                    iterations: hit.iterations,
                    sim_ms: 0.0,
                    cache_hit: true,
                    batch_size: 1,
                    ..JobMetrics::default()
                };
                self.shared
                    .counters
                    .jobs_done
                    .fetch_add(1, Ordering::Relaxed);
                self.finish(record);
                return Ok(id);
            }
        }

        // Admission control against the modelled single-job peak.
        let modeled = modeled_peak_bytes(algo, n as u64, reg.edge_count() as u64, 1);
        let budget = self.job_budget();
        let free = self
            .shared
            .cfg
            .profile
            .vram_bytes
            .saturating_sub(self.shared.registry.resident_bytes());
        if modeled > budget || modeled > free {
            let limit = budget.min(free);
            let err = ServiceError::AdmissionRejected {
                modeled_bytes: modeled,
                budget_bytes: limit,
            };
            record.state = JobState::Rejected;
            record.error = Some(err.to_string());
            record.error_kind = Some(err.kind().to_string());
            record.http_status = Some(err.http_status());
            record.metrics.modeled_peak_bytes = modeled;
            self.shared
                .counters
                .jobs_rejected
                .fetch_add(1, Ordering::Relaxed);
            self.finish(record);
            return Ok(id);
        }
        record.metrics.modeled_peak_bytes = modeled;

        self.shared.jobs.write().insert(id, record);
        let mut st = lock(&self.shared.state);
        st.pending.push_back(PendingJob {
            id,
            graph: reg.name.clone(),
            version: reg.version,
            algo,
            source: source.unwrap_or(0),
            coalesce: algo.coalescible() && !request.no_coalesce.unwrap_or(false),
            enqueued_at: Instant::now(),
        });
        drop(st);
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Records a job that completed without ever being queued.
    fn finish(&self, record: JobRecord) {
        self.shared.jobs.write().insert(record.id, record);
        self.shared.done_cv.notify_all();
    }

    fn job_budget(&self) -> u64 {
        self.shared
            .cfg
            .job_mem_budget
            .unwrap_or(self.shared.cfg.profile.vram_bytes)
    }

    /// Snapshot of a job record.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.shared.jobs.read().get(&id).cloned()
    }

    /// All job ids, ascending (listing endpoint).
    pub fn job_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.shared.jobs.read().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Blocks until `id` reaches a terminal state; `None` for unknown ids.
    pub fn wait(&self, id: u64) -> Option<JobRecord> {
        loop {
            match self.job(id) {
                None => return None,
                Some(rec) if terminal(rec.state) => return Some(rec),
                Some(_) => {
                    let st = lock(&self.shared.state);
                    let _ = self
                        .shared
                        .done_cv
                        .wait_timeout(st, Duration::from_millis(20));
                }
            }
        }
    }

    /// Blocks until the queue is empty and no job is executing.
    pub fn wait_idle(&self) {
        loop {
            let st = lock(&self.shared.state);
            if st.pending.is_empty() && st.in_flight == 0 {
                return;
            }
            let _ = self
                .shared
                .done_cv
                .wait_timeout(st, Duration::from_millis(20));
        }
    }

    /// Pauses claiming (already-running batches finish).
    pub fn pause(&self) {
        lock(&self.shared.state).paused = true;
        self.shared.work_cv.notify_all();
    }

    /// Resumes claiming.
    pub fn resume(&self) {
        lock(&self.shared.state).paused = false;
        self.shared.work_cv.notify_all();
    }

    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.counters;
        StatsSnapshot {
            jobs_done: c.jobs_done.load(Ordering::Relaxed),
            jobs_failed: c.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: c.jobs_rejected.load(Ordering::Relaxed),
            coalesced_batches: c.coalesced_batches.load(Ordering::Relaxed),
            coalesced_jobs: c.coalesced_jobs.load(Ordering::Relaxed),
            device_ms: c.device_ns.load(Ordering::Relaxed) as f64 / 1e6,
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
            cache_hit_ratio: self.shared.cache.hit_ratio(),
            cache_entries: self.shared.cache.len() as u64,
        }
    }

    /// Stops accepting work, wakes and joins every worker. Pending jobs
    /// stay `Queued` in the table.
    pub fn shutdown(&mut self) {
        self.shared.ready.store(false, Ordering::SeqCst);
        lock(&self.shared.state).shutdown = true;
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn terminal(state: JobState) -> bool {
    matches!(
        state,
        JobState::Done | JobState::Failed | JobState::Rejected
    )
}

fn lock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Workers catch panics, so poisoning is all but impossible; if it
    // ever happens the protected state is still structurally sound.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Largest supported lane width (8|16|32|64) that is ≤ `cap` and whose
/// modelled batch peak fits `budget`; 1 when even 8 lanes do not fit.
fn admissible_width(n: u64, m: u64, cap: u32, budget: u64) -> u32 {
    let mut width = 0;
    for w in [8u32, 16, 32, 64] {
        if w <= cap && modeled_peak_bytes(Algo::Bfs, n, m, w) <= budget {
            width = w;
        }
    }
    width.max(1)
}

fn worker_loop(shared: Arc<Shared>) {
    let mut device = Device::new(shared.cfg.profile.clone());
    let mut q = Queue::new(device.clone());
    let mut mirror = DeviceMirror::new();
    loop {
        let batch = match claim(&shared) {
            Some(batch) => batch,
            None => return, // shutdown
        };
        let panicked = {
            let run = AssertUnwindSafe(|| execute(&shared, &q, &mut mirror, &batch));
            catch_unwind(run).is_err()
        };
        if panicked {
            fail_batch(&shared, &batch, "worker panicked while executing the job");
            // The device state may be mid-kernel garbage; rebuild it.
            device = Device::new(shared.cfg.profile.clone());
            q = Queue::new(device.clone());
            mirror = DeviceMirror::new();
        }
        let mut st = lock(&shared.state);
        st.in_flight -= batch.len();
        drop(st);
        shared.done_cv.notify_all();
    }
}

/// Claims the next unit of work: one job, or a coalesced batch grown
/// from a coalescible head. Returns `None` on shutdown.
fn claim(shared: &Shared) -> Option<Vec<PendingJob>> {
    let mut st = lock(&shared.state);
    loop {
        if st.shutdown {
            return None;
        }
        if !st.paused && !st.pending.is_empty() {
            break;
        }
        st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    let head = st.pending.pop_front().expect("pending checked non-empty");
    let mut batch = vec![head];
    if batch[0].coalesce {
        let budget = shared
            .cfg
            .job_mem_budget
            .unwrap_or(shared.cfg.profile.vram_bytes);
        let reg = shared.registry.get(&batch[0].graph).ok();
        let width = reg
            .map(|r| {
                admissible_width(
                    r.vertex_count() as u64,
                    r.edge_count() as u64,
                    shared.cfg.batch_width,
                    budget,
                )
            })
            .unwrap_or(1) as usize;
        let window = Duration::from_millis(shared.cfg.batch_window_ms);
        let deadline = batch[0].enqueued_at + window;
        loop {
            // Drain currently-pending mates into the batch.
            let mut i = 0;
            while i < st.pending.len() && batch.len() < width {
                let p = &st.pending[i];
                if p.coalesce
                    && p.graph == batch[0].graph
                    && p.version == batch[0].version
                    && p.algo == batch[0].algo
                {
                    batch.push(st.pending.remove(i).expect("index in bounds"));
                } else {
                    i += 1;
                }
            }
            if batch.len() >= width || st.paused || st.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = shared
                .work_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
    st.in_flight += batch.len();
    Some(batch)
}

fn mark_running(shared: &Shared, batch: &[PendingJob]) {
    let mut jobs = shared.jobs.write();
    for p in batch {
        if let Some(rec) = jobs.get_mut(&p.id) {
            rec.state = JobState::Running;
        }
    }
}

fn fail_batch(shared: &Shared, batch: &[PendingJob], msg: &str) {
    let err = ServiceError::Device(sygraph_sim::SimError::Algorithm(msg.to_string()));
    let mut jobs = shared.jobs.write();
    for p in batch {
        if let Some(rec) = jobs.get_mut(&p.id) {
            if !terminal(rec.state) {
                rec.state = JobState::Failed;
                rec.error = Some(msg.to_string());
                rec.error_kind = Some(err.kind().to_string());
                rec.http_status = Some(err.http_status());
                shared.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    drop(jobs);
    shared.done_cv.notify_all();
}

/// Executes a claimed batch on this worker's queue.
fn execute(shared: &Shared, q: &Queue, mirror: &mut DeviceMirror, batch: &[PendingJob]) {
    mark_running(shared, batch);

    // Re-resolve the graph; it may have been superseded since submit.
    let reg = match shared.registry.get(&batch[0].graph) {
        Ok(reg) if reg.version == batch[0].version => reg,
        Ok(reg) => {
            let msg = format!(
                "graph {:?} version {} superseded by {} before the job ran",
                batch[0].graph, batch[0].version, reg.version
            );
            return fail_with(shared, batch, ServiceError::NotFound(msg));
        }
        Err(e) => return fail_with(shared, batch, e),
    };
    let graph = match mirror.resolve(q, &reg) {
        Ok(g) => g,
        Err(e) => return fail_with(shared, batch, e),
    };

    // Per-job metric scoping on this worker's reused queue: a profiler
    // epoch (kernel/recovery counts) plus a peak-watermark reset (the
    // worker runs one batch at a time, so the device ledger is ours).
    let epoch = q.profiler().begin_epoch();
    q.device().reset_mem_peak();
    let used_before = q.device().mem_used();
    let opts = OptConfig::all();

    let coalesced = batch.len() > 1;
    let outcome: Result<BatchOutcome, ServiceError> = if coalesced {
        let sources: Vec<u32> = batch.iter().map(|p| p.source).collect();
        let width = admissible_width(
            reg.vertex_count() as u64,
            reg.edge_count() as u64,
            shared.cfg.batch_width,
            shared
                .cfg
                .job_mem_budget
                .unwrap_or(shared.cfg.profile.vram_bytes),
        );
        multi::bfs_multi(q, &graph.csr, &sources, width, &opts)
            .map(|r| BatchOutcome {
                per_job: r.per_source.into_iter().map(JobValues::U32).collect(),
                iterations: r.iterations,
                sim_ms: r.sim_ms,
            })
            .map_err(ServiceError::from)
    } else {
        run_single(shared, q, &graph, &batch[0]).map(|(values, iterations, sim_ms)| BatchOutcome {
            per_job: vec![values],
            iterations,
            sim_ms,
        })
    };

    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => return fail_with(shared, batch, e),
    };

    let mem_peak = q.device().mem_peak().saturating_sub(used_before);
    let kernel_launches = q.profiler().kernel_count_since(&epoch) as u64;
    let recovery_events = q.profiler().recovery_count_since(&epoch) as u64;
    shared
        .counters
        .device_ns
        .fetch_add((outcome.sim_ms * 1e6) as u64, Ordering::Relaxed);
    if coalesced {
        shared
            .counters
            .coalesced_batches
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .coalesced_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }

    // Store lanes in the cache, then complete the records.
    let mut jobs = shared.jobs.write();
    for (p, values) in batch.iter().zip(outcome.per_job) {
        let rec = match jobs.get_mut(&p.id) {
            Some(rec) => rec,
            None => continue,
        };
        if !rec.request.no_cache.unwrap_or(false) {
            shared.cache.put(
                CacheKey {
                    graph: p.graph.clone(),
                    version: p.version,
                    algo: p.algo,
                    source: if p.algo.needs_source() {
                        Some(p.source)
                    } else {
                        None
                    },
                    delta_bits: match p.algo {
                        Algo::DeltaSssp => Some(rec.request.delta.unwrap_or(2.0).to_bits()),
                        _ => None,
                    },
                },
                CachedResult {
                    values: values.clone(),
                    iterations: outcome.iterations,
                    sim_ms: outcome.sim_ms,
                },
            );
        }
        rec.state = JobState::Done;
        rec.values = Some(values);
        rec.metrics = JobMetrics {
            iterations: outcome.iterations,
            sim_ms: outcome.sim_ms,
            kernel_launches,
            mem_peak_bytes: mem_peak,
            modeled_peak_bytes: rec.metrics.modeled_peak_bytes,
            cache_hit: false,
            coalesced,
            batch_size: batch.len() as u32,
            recovery_events,
        };
        shared.counters.jobs_done.fetch_add(1, Ordering::Relaxed);
    }
    drop(jobs);
    shared.done_cv.notify_all();
}

struct BatchOutcome {
    per_job: Vec<JobValues>,
    iterations: u32,
    sim_ms: f64,
}

fn fail_with(shared: &Shared, batch: &[PendingJob], err: ServiceError) {
    let msg = err.to_string();
    let mut jobs = shared.jobs.write();
    for p in batch {
        if let Some(rec) = jobs.get_mut(&p.id) {
            rec.state = JobState::Failed;
            rec.error = Some(msg.clone());
            rec.error_kind = Some(err.kind().to_string());
            rec.http_status = Some(err.http_status());
            shared.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    drop(jobs);
    shared.done_cv.notify_all();
}

/// Runs one non-coalesced job. BFS runs on the push (CSR) view even
/// when a pull mirror is resident, keeping serial output exactly the
/// baseline that `bfs_multi` lanes are bit-identical to — coalescing
/// must be unobservable in the values.
fn run_single(
    shared: &Shared,
    q: &Queue,
    graph: &Graph,
    p: &PendingJob,
) -> ServiceResult<(JobValues, u32, f64)> {
    fn unpack<T>(
        r: AlgoResult<T>,
        wrap: impl FnOnce(Vec<T>) -> JobValues,
    ) -> (JobValues, u32, f64) {
        (wrap(r.values), r.iterations, r.sim_ms)
    }
    let opts = OptConfig::all();
    let rec_delta = shared
        .jobs
        .read()
        .get(&p.id)
        .and_then(|r| r.request.delta)
        .unwrap_or(2.0);
    Ok(match p.algo {
        Algo::Bfs => unpack(bfs::run(q, &graph.csr, p.source, &opts)?, JobValues::U32),
        Algo::Sssp => unpack(sssp::run(q, &graph.csr, p.source, &opts)?, JobValues::F32),
        Algo::DeltaSssp => unpack(
            delta::run(q, &graph.csr, p.source, &opts, rec_delta)?,
            JobValues::F32,
        ),
        Algo::Cc => unpack(cc::run(q, graph, &opts)?, JobValues::U32),
        Algo::Bc => unpack(bc::run(q, &graph.csr, p.source, &opts)?, JobValues::F32),
        Algo::Pagerank => unpack(
            pagerank::run(q, &graph.csr, &opts, Default::default())?,
            JobValues::F32,
        ),
    })
}
