//! Resident-graph registry: named, version-tagged graphs that load once
//! and stay resident on the worker devices across jobs.
//!
//! The registry owns the validated host CSR plus residency policy
//! (symmetrize on upload, warm the pull mirror). Each scheduler worker
//! keeps a device-side [`ResidentGraph`] mirror per name, re-uploading
//! only when the registry's version for that name moves — so the upload
//! cost is paid once per (worker device, graph version), not per job.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use sygraph_core::graph::{CsrHost, DeviceGraphView, Graph};
use sygraph_sim::Queue;

use crate::error::{ServiceError, ServiceResult};

/// Residency policy for a registered graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegisterOptions {
    /// Symmetrize at registration (required for component semantics of
    /// `cc`; applied once on the host, so every device upload is
    /// already undirected).
    pub undirected: bool,
    /// Warm the pull (CSC) mirror at upload time instead of lazily on
    /// the first pull-direction superstep.
    pub pull: bool,
}

/// Host-side record of a registered graph.
#[derive(Debug)]
pub struct RegisteredGraph {
    pub name: String,
    /// Monotone per-name version; bumps on re-registration. Part of
    /// every cache key, so stale results can never serve a new upload.
    pub version: u64,
    pub host: Arc<CsrHost>,
    pub options: RegisterOptions,
}

impl RegisteredGraph {
    pub fn vertex_count(&self) -> usize {
        self.host.vertex_count()
    }

    pub fn edge_count(&self) -> usize {
        self.host.edge_count()
    }

    pub fn weighted(&self) -> bool {
        self.host.weights.is_some()
    }

    /// Device bytes this graph occupies while resident: CSR arrays,
    /// plus the CSC mirror when the pull policy is set.
    pub fn resident_bytes(&self) -> u64 {
        let n = self.vertex_count() as u64;
        let m = self.edge_count() as u64;
        let w = if self.weighted() { 4 * m } else { 0 };
        let csr = 4 * (n + 1) + 4 * m + w;
        if self.options.pull {
            2 * csr
        } else {
            csr
        }
    }
}

/// One worker device's resident copy of a graph.
pub struct ResidentGraph {
    pub version: u64,
    pub graph: Arc<Graph>,
}

/// Named graph registry shared between the front end and the workers.
pub struct Registry {
    graphs: RwLock<HashMap<String, Arc<RegisteredGraph>>>,
    /// Bumps on every successful (re-)registration; workers compare it
    /// against their last-synced value to find stale mirrors cheaply.
    generation: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            graphs: RwLock::new(HashMap::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// Validates and registers `host` under `name`, bumping the
    /// per-name version. A structurally broken graph is refused with
    /// the typed [`GraphError`](sygraph_core::graph::GraphError) — it
    /// never becomes resident, and the previous version (if any) stays
    /// servable.
    pub fn register(
        &self,
        name: &str,
        host: CsrHost,
        options: RegisterOptions,
    ) -> ServiceResult<Arc<RegisteredGraph>> {
        if name.is_empty() {
            return Err(ServiceError::BadRequest("graph name is empty".into()));
        }
        host.validate()?;
        let host = if options.undirected {
            host.to_undirected()?
        } else {
            host
        };
        let mut graphs = self.graphs.write();
        let version = graphs.get(name).map(|g| g.version + 1).unwrap_or(1);
        let entry = Arc::new(RegisteredGraph {
            name: name.to_string(),
            version,
            host: Arc::new(host),
            options,
        });
        graphs.insert(name.to_string(), entry.clone());
        self.generation.fetch_add(1, Ordering::SeqCst);
        Ok(entry)
    }

    /// Looks up a graph by name.
    pub fn get(&self, name: &str) -> ServiceResult<Arc<RegisteredGraph>> {
        self.graphs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::NotFound(format!("graph {name:?}")))
    }

    /// All registered graphs, name-sorted (stable listing output).
    pub fn list(&self) -> Vec<Arc<RegisteredGraph>> {
        let mut all: Vec<_> = self.graphs.read().values().cloned().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Registration generation counter (workers poll this).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Total modelled resident bytes across all registered graphs —
    /// admission control subtracts this from device capacity.
    pub fn resident_bytes(&self) -> u64 {
        self.graphs
            .read()
            .values()
            .map(|g| g.resident_bytes())
            .sum()
    }
}

/// Per-worker device mirror: uploads on first use or version change,
/// then serves the resident copy.
pub struct DeviceMirror {
    resident: HashMap<String, ResidentGraph>,
}

impl Default for DeviceMirror {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceMirror {
    pub fn new() -> DeviceMirror {
        DeviceMirror {
            resident: HashMap::new(),
        }
    }

    /// Returns this device's resident copy of `reg`, uploading (and
    /// warming the pull mirror, per policy) only when the version is
    /// new to this device.
    pub fn resolve(&mut self, q: &Queue, reg: &RegisteredGraph) -> ServiceResult<Arc<Graph>> {
        if let Some(res) = self.resident.get(&reg.name) {
            if res.version == reg.version {
                return Ok(res.graph.clone());
            }
        }
        let graph = if reg.options.pull {
            let g = Graph::with_pull(q, &reg.host)?;
            // Warm the CSC mirror now: residency means the first
            // pull-direction superstep pays zero upload cost.
            g.ensure_pull(q)?;
            g
        } else {
            Graph::new(q, &reg.host)?
        };
        let graph = Arc::new(graph);
        self.resident.insert(
            reg.name.clone(),
            ResidentGraph {
                version: reg.version,
                graph: graph.clone(),
            },
        );
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sygraph_sim::{Device, DeviceProfile};

    fn line_graph(n: usize) -> CsrHost {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        CsrHost::from_edges(n, &edges)
    }

    #[test]
    fn register_versions_and_lists() {
        let reg = Registry::new();
        let g1 = reg
            .register("line", line_graph(8), RegisterOptions::default())
            .unwrap();
        assert_eq!(g1.version, 1);
        let g2 = reg
            .register("line", line_graph(16), RegisterOptions::default())
            .unwrap();
        assert_eq!(g2.version, 2);
        assert_eq!(reg.get("line").unwrap().vertex_count(), 16);
        assert_eq!(reg.list().len(), 1);
        assert!(matches!(
            reg.get("absent").unwrap_err(),
            ServiceError::NotFound(_)
        ));
    }

    #[test]
    fn malformed_registration_is_typed_and_keeps_old_version() {
        let reg = Registry::new();
        reg.register("g", line_graph(4), RegisterOptions::default())
            .unwrap();
        // Non-monotone offsets: structurally broken.
        let bad = CsrHost {
            offsets: vec![0, 3, 1, 4],
            indices: vec![1, 2, 3, 0],
            weights: None,
        };
        let err = reg
            .register("g", bad, RegisterOptions::default())
            .unwrap_err();
        assert_eq!(err.http_status(), 400);
        assert_eq!(reg.get("g").unwrap().version, 1);
    }

    #[test]
    fn mirror_uploads_once_per_version() {
        let reg = Registry::new();
        reg.register(
            "g",
            line_graph(32),
            RegisterOptions {
                undirected: true,
                pull: true,
            },
        )
        .unwrap();
        let q = Queue::new(Device::new(DeviceProfile::host_test()));
        let mut mirror = DeviceMirror::new();
        let entry = reg.get("g").unwrap();
        let a = mirror.resolve(&q, &entry).unwrap();
        let b = mirror.resolve(&q, &entry).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same version must not re-upload");
        // Pull policy warms the CSC mirror at upload.
        assert!(a.pull_view().is_some());

        reg.register("g", line_graph(64), RegisterOptions::default())
            .unwrap();
        let entry2 = reg.get("g").unwrap();
        let c = mirror.resolve(&q, &entry2).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "new version must re-upload");
        assert_eq!(c.vertex_count(), 64);
    }
}
