//! Result cache keyed on `(graph, graph-version, algo, params)`.
//!
//! Entries store the exact value vector the device produced, so a cache
//! hit is bit-identical to a recompute: the property tests compare
//! `f32::to_bits` between cached and forced-recompute runs. Version
//! participation in the key means re-registering a graph silently
//! invalidates every result computed against the old upload — no
//! explicit flush protocol, no stale serve.
//!
//! Bounded by entry count with LRU eviction: a lookup or overwrite
//! refreshes the entry's recency, so the working set of a skewed query
//! mix stays resident while one-shot results age out first. Recency is a
//! monotone stamp per entry plus a `BTreeMap` from stamp to key, keeping
//! every operation O(log capacity) under one short lock. Evictions are
//! counted for `/stats`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::job::{Algo, JobValues};

/// Full identity of a result. `delta_bits` carries Δ-stepping's float
/// parameter as raw bits so the key stays `Eq + Hash` without rounding
/// games.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub graph: String,
    pub version: u64,
    pub algo: Algo,
    pub source: Option<u32>,
    pub delta_bits: Option<u32>,
}

/// Cached outcome of one job.
#[derive(Debug, Clone)]
pub struct CachedResult {
    pub values: JobValues,
    pub iterations: u32,
    /// Modelled device ms the original computation cost (reported on
    /// hits so callers can see what the cache saved).
    pub sim_ms: f64,
}

struct Entry {
    result: Arc<CachedResult>,
    /// This entry's position in the recency order (key into `recency`).
    stamp: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    /// Recency order: smallest stamp = least recently used.
    recency: BTreeMap<u64, CacheKey>,
    /// Monotone stamp source.
    tick: u64,
}

impl CacheInner {
    /// Moves `key`'s entry (already in `map`) to most-recently-used.
    fn touch(&mut self, key: &CacheKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(key) {
            self.recency.remove(&entry.stamp);
            entry.stamp = tick;
            self.recency.insert(tick, key.clone());
        }
    }
}

/// Shared result cache with hit/miss/eviction counters.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// `capacity` = maximum retained entries (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, bumping the hit/miss counters. A hit refreshes
    /// the entry's recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedResult>> {
        let mut inner = self.inner.lock();
        let found = inner.map.get(key).map(|e| e.result.clone());
        if found.is_some() {
            inner.touch(key);
        }
        drop(inner);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or overwrites) `key` at most-recently-used, evicting the
    /// least recently used entries while over capacity.
    pub fn put(&self, key: CacheKey, result: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let old = inner.map.insert(
            key.clone(),
            Entry {
                result: Arc::new(result),
                stamp: tick,
            },
        );
        if let Some(old) = old {
            inner.recency.remove(&old.stamp);
        }
        inner.recency.insert(tick, key);
        while inner.map.len() > self.capacity {
            let Some((&stamp, _)) = inner.recency.iter().next() else {
                break;
            };
            if let Some(victim) = inner.recency.remove(&stamp) {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound (overwrites not counted).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits / lookups, 0.0 before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: u32) -> CacheKey {
        CacheKey {
            graph: "g".into(),
            version: 1,
            algo: Algo::Bfs,
            source: Some(src),
            delta_bits: None,
        }
    }

    fn result(v: u32) -> CachedResult {
        CachedResult {
            values: JobValues::U32(vec![v]),
            iterations: 1,
            sim_ms: 0.5,
        }
    }

    #[test]
    fn version_partitions_the_key_space() {
        let cache = ResultCache::new(16);
        cache.put(key(0), result(7));
        assert!(cache.get(&key(0)).is_some());
        let mut stale = key(0);
        stale.version = 2;
        assert!(cache.get(&stale).is_none(), "new version must miss");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_bounds_entries() {
        let cache = ResultCache::new(2);
        cache.put(key(0), result(0));
        cache.put(key(1), result(1));
        cache.put(key(2), result(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&key(0)).is_none(), "least recent entry evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn get_refreshes_recency() {
        let cache = ResultCache::new(2);
        cache.put(key(0), result(0));
        cache.put(key(1), result(1));
        // Touch key(0): key(1) becomes least recently used.
        assert!(cache.get(&key(0)).is_some());
        cache.put(key(2), result(2));
        assert!(cache.get(&key(0)).is_some(), "recently used entry survives");
        assert!(cache.get(&key(1)).is_none(), "LRU entry evicted");
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn overwrite_refreshes_recency_without_eviction() {
        let cache = ResultCache::new(2);
        cache.put(key(0), result(0));
        cache.put(key(1), result(1));
        cache.put(key(0), result(7)); // overwrite: refresh, no eviction
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        cache.put(key(2), result(2));
        assert!(cache.get(&key(1)).is_none(), "stale entry evicted first");
        let v = cache.get(&key(0)).unwrap();
        assert_eq!(v.values, JobValues::U32(vec![7]));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        cache.put(key(0), result(0));
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0);
    }
}
