//! Minimal HTTP/1.1 front end over `std::net::TcpListener`.
//!
//! No web framework exists in this offline workspace, so the server is
//! hand-rolled: blocking accept loop, one thread per connection,
//! `Content-Length`-framed bodies, `Connection: close` semantics. Every
//! parse step is fallible-by-construction — a malformed request line,
//! header, JSON body, or graph upload produces a 4xx JSON error body,
//! never a panic in the accept path.
//!
//! Routes:
//!
//! | Method | Path         | Meaning                                        |
//! |--------|--------------|------------------------------------------------|
//! | GET    | /health      | liveness (always 200 once listening)           |
//! | GET    | /ready       | readiness (workers accepting jobs)             |
//! | GET    | /graphs      | list resident graphs                           |
//! | POST   | /graphs      | register a graph (CSR, edge list, or spec)     |
//! | POST   | /jobs        | submit a job (`?wait=1` blocks for the result) |
//! | GET    | /jobs        | list job ids                                   |
//! | GET    | /jobs/<id>   | job record (`?wait=1`, `?values=0`)            |
//! | GET    | /stats       | scheduler + cache counters                     |

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;
use sygraph_core::graph::CsrHost;

use crate::error::ServiceError;
use crate::job::JobRequest;
use crate::Service;

/// Largest accepted request body (64 MiB) — an upload beyond this is
/// refused, not buffered until the allocator gives out.
const MAX_BODY: usize = 64 << 20;

/// A running HTTP server bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `service` until [`HttpServer::shutdown`], with the default
    /// 30 s per-connection read timeout.
    pub fn serve(service: Arc<Service>, addr: &str) -> std::io::Result<HttpServer> {
        HttpServer::serve_with_read_timeout(service, addr, Duration::from_secs(30))
    }

    /// [`HttpServer::serve`] with an explicit read timeout: a client
    /// that connects but never completes its request within `timeout`
    /// gets a typed 408 `read-timeout` JSON body instead of holding a
    /// connection thread open (slow-loris shedding).
    pub fn serve_with_read_timeout(
        service: Arc<Service>,
        addr: &str,
        timeout: Duration,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("sygraph-http-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let stream = match conn {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let service = service.clone();
                    let _ = std::thread::Builder::new()
                        .name("sygraph-http-conn".into())
                        .spawn(move || handle_connection(service, stream, timeout));
                }
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Request plumbing
// ---------------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn flag(&self, key: &str, default: bool) -> bool {
        match self.query(key) {
            Some("0") | Some("false") => false,
            Some(_) => true,
            None => default,
        }
    }
}

fn handle_connection(service: Arc<Service>, mut stream: TcpStream, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let (status, body) = match read_request(&mut stream) {
        Ok(req) => route(&service, &req),
        Err(ReadError::Timeout) => error_body(
            408,
            "read-timeout",
            &format!(
                "request not received within {} ms",
                read_timeout.as_millis()
            ),
        ),
        Err(ReadError::Bad(msg)) => error_body(400, "bad-request", &msg),
    };
    // 429 bodies carry the drain-rate hint; surface it as the standard
    // Retry-After header (seconds, rounded up) for header-only clients.
    let retry_after = match (&body, status) {
        (Value::Object(_), 429) => match body.get_field("retry_after_ms") {
            Some(Value::UInt(ms)) => Some(ms.div_ceil(1000).max(1)),
            Some(Value::Int(ms)) if *ms >= 0 => Some((*ms as u64).div_ceil(1000).max(1)),
            _ => None,
        },
        _ => None,
    };
    let text = serde_json::to_string(&body).unwrap_or_else(|_| "{}".into());
    let retry_header = retry_after.map_or(String::new(), |secs| format!("Retry-After: {secs}\r\n"));
    let _ = write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        status,
        status_text(status),
        text.len(),
        retry_header,
        text
    );
    let _ = stream.flush();
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Why a request could not be read: the socket read timed out (→ 408),
/// or the bytes were malformed / the peer hung up (→ 400).
enum ReadError {
    Timeout,
    Bad(String),
}

fn read_err(e: std::io::Error) -> ReadError {
    match e.kind() {
        // Unix reports a read timeout as WouldBlock, Windows as TimedOut.
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::Timeout,
        _ => ReadError::Bad(e.to_string()),
    }
}

/// Reads one request: request line, headers, `Content-Length` body.
fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let bad = |msg: &str| ReadError::Bad(msg.to_string());
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 << 10 {
            return Err(bad("headers exceed 64 KiB"));
        }
        let got = stream.read(&mut chunk).map_err(read_err)?;
        if got == 0 {
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..got]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(bad("empty request line"))?
        .to_uppercase();
    let target = parts.next().ok_or(bad("request line missing path"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(&format!("bad Content-Length {value:?}")))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad(&format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        )));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let got = stream.read(&mut chunk).map_err(read_err)?;
        if got == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..got]);
    }
    body.truncate(content_length);

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn error_body(status: u16, kind: &str, msg: &str) -> (u16, Value) {
    (
        status,
        Value::Object(vec![
            ("error".into(), Value::Str(msg.to_string())),
            ("error_kind".into(), Value::Str(kind.to_string())),
        ]),
    )
}

fn service_error(e: &ServiceError) -> (u16, Value) {
    let (status, mut body) = error_body(e.http_status(), e.kind(), &e.to_string());
    if let (Some(ms), Value::Object(fields)) = (e.retry_after_ms(), &mut body) {
        fields.push(("retry_after_ms".into(), Value::UInt(ms)));
    }
    (status, body)
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

fn route(service: &Service, req: &Request) -> (u16, Value) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (200, serde_json::json!("ok")),
        ("GET", "/ready") => {
            if service.ready() {
                (200, serde_json::json!("ready"))
            } else {
                error_body(
                    503,
                    "not-ready",
                    "not accepting jobs (draining, shutting down, or above high water)",
                )
            }
        }
        ("GET", "/graphs") => (200, list_graphs(service)),
        ("POST", "/graphs") => post_graph(service, req),
        ("POST", "/jobs") => post_job(service, req),
        ("GET", "/jobs") => (
            200,
            Value::Object(vec![(
                "jobs".into(),
                serde_json::to_value(&service.job_ids()),
            )]),
        ),
        ("GET", "/stats") => (200, serde_json::to_value(&service.stats())),
        ("GET", path) if path.starts_with("/jobs/") => get_job(service, req, &path[6..]),
        (_, "/health" | "/ready" | "/graphs" | "/jobs" | "/stats") => {
            error_body(405, "bad-request", "method not allowed")
        }
        _ => error_body(404, "not-found", &format!("no route {}", req.path)),
    }
}

fn list_graphs(service: &Service) -> Value {
    let graphs: Vec<Value> = service
        .graphs()
        .iter()
        .map(|g| {
            Value::Object(vec![
                ("name".into(), Value::Str(g.name.clone())),
                ("version".into(), serde_json::to_value(&g.version)),
                ("vertices".into(), serde_json::to_value(&g.vertex_count())),
                ("edges".into(), serde_json::to_value(&g.edge_count())),
                ("weighted".into(), Value::Bool(g.weighted())),
                ("undirected".into(), Value::Bool(g.options.undirected)),
                ("pull".into(), Value::Bool(g.options.pull)),
                (
                    "resident_bytes".into(),
                    serde_json::to_value(&g.resident_bytes()),
                ),
            ])
        })
        .collect();
    Value::Object(vec![("graphs".into(), Value::Array(graphs))])
}

/// Graph upload body: `{"name": ..., ...}` plus exactly one input form —
/// `"spec"` (a CLI-style `gen:<key>` or file path resolved server-side),
/// CSR arrays (`"offsets"` + `"targets"` [+ `"weights"`]), or an edge
/// list (`"vertices"` + `"edges": [[u,v],...]` [+ `"weights"`]) — and
/// optional `"undirected"` / `"pull"` residency flags.
fn post_graph(service: &Service, req: &Request) -> (u16, Value) {
    let doc: Value = match parse_json_body(&req.body) {
        Ok(v) => v,
        Err(e) => return error_body(400, "bad-request", &e),
    };
    let name = match doc.get_field("name") {
        Some(Value::Str(s)) if !s.is_empty() => s.clone(),
        _ => {
            return error_body(
                400,
                "bad-request",
                "graph upload needs a non-empty \"name\"",
            )
        }
    };
    let host = match build_host(&doc) {
        Ok(h) => h,
        Err(resp) => return resp,
    };
    let options = crate::RegisterOptions {
        undirected: matches!(doc.get_field("undirected"), Some(Value::Bool(true))),
        pull: matches!(doc.get_field("pull"), Some(Value::Bool(true))),
    };
    match service.register_graph(&name, host, options) {
        Ok(g) => (
            200,
            Value::Object(vec![
                ("name".into(), Value::Str(g.name.clone())),
                ("version".into(), serde_json::to_value(&g.version)),
                ("vertices".into(), serde_json::to_value(&g.vertex_count())),
                ("edges".into(), serde_json::to_value(&g.edge_count())),
            ]),
        ),
        Err(e) => service_error(&e),
    }
}

fn build_host(doc: &Value) -> Result<CsrHost, (u16, Value)> {
    let bad = |msg: &str| Err(error_body(400, "bad-request", msg));
    if let Some(Value::Str(spec)) = doc.get_field("spec") {
        return crate::load_graph_spec(spec).map_err(|e| service_error(&e));
    }
    if doc.get_field("offsets").is_some() || doc.get_field("targets").is_some() {
        let offsets = match u32_array(doc.get_field("offsets")) {
            Some(v) => v,
            None => return bad("\"offsets\" must be an array of non-negative integers"),
        };
        let targets = match u32_array(doc.get_field("targets")) {
            Some(v) => v,
            None => return bad("\"targets\" must be an array of non-negative integers"),
        };
        let weights = match doc.get_field("weights") {
            None | Some(Value::Null) => None,
            some => match f32_array(some) {
                Some(v) => Some(v),
                None => return bad("\"weights\" must be an array of numbers"),
            },
        };
        // Structural validation happens in Registry::register.
        return Ok(CsrHost {
            offsets,
            indices: targets,
            weights,
        });
    }
    if let Some(Value::Array(raw)) = doc.get_field("edges") {
        let n = match doc.get_field("vertices") {
            Some(Value::Int(n)) if *n >= 0 => *n as usize,
            Some(Value::UInt(n)) => *n as usize,
            _ => return bad("edge-list upload needs a non-negative \"vertices\" count"),
        };
        let mut edges = Vec::with_capacity(raw.len());
        for e in raw {
            match e {
                Value::Array(pair) if pair.len() == 2 => {
                    match (as_u32(&pair[0]), as_u32(&pair[1])) {
                        (Some(u), Some(v)) => edges.push((u, v)),
                        _ => return bad("\"edges\" entries must be pairs of vertex ids"),
                    }
                }
                _ => return bad("\"edges\" entries must be pairs of vertex ids"),
            }
        }
        let weights = match doc.get_field("weights") {
            None | Some(Value::Null) => None,
            some => match f32_array(some) {
                Some(v) => Some(v),
                None => return bad("\"weights\" must be an array of numbers"),
            },
        };
        return CsrHost::try_from_edges_weighted(n, &edges, weights.as_deref())
            .map_err(|e| service_error(&ServiceError::InvalidGraph(e)));
    }
    bad("graph upload needs \"spec\", \"offsets\"+\"targets\", or \"vertices\"+\"edges\"")
}

fn as_u32(v: &Value) -> Option<u32> {
    match v {
        Value::Int(i) if *i >= 0 && *i <= u32::MAX as i64 => Some(*i as u32),
        Value::UInt(u) if *u <= u32::MAX as u64 => Some(*u as u32),
        _ => None,
    }
}

fn u32_array(v: Option<&Value>) -> Option<Vec<u32>> {
    match v {
        Some(Value::Array(items)) => items.iter().map(as_u32).collect(),
        _ => None,
    }
}

fn f32_array(v: Option<&Value>) -> Option<Vec<f32>> {
    match v {
        Some(Value::Array(items)) => items
            .iter()
            .map(|x| match x {
                Value::Int(i) => Some(*i as f32),
                Value::UInt(u) => Some(*u as f32),
                Value::Float(f) => Some(*f as f32),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

fn parse_json_body(body: &[u8]) -> Result<Value, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body (expected a JSON object)".into());
    }
    serde_json::from_str::<Value>(text).map_err(|e| format!("invalid JSON body: {e}"))
}

fn post_job(service: &Service, req: &Request) -> (u16, Value) {
    let doc = match parse_json_body(&req.body) {
        Ok(v) => v,
        Err(e) => return error_body(400, "bad-request", &e),
    };
    let request: JobRequest = match serde::Deserialize::deserialize_value(&doc) {
        Ok(r) => r,
        Err(e) => return error_body(400, "bad-request", &format!("bad job request: {e}")),
    };
    let id = match service.submit(request) {
        Ok(id) => id,
        Err(e) => return service_error(&e),
    };
    let record = if req.flag("wait", false) {
        service.wait(id)
    } else {
        service.job(id)
    };
    match record {
        Some(rec) => {
            let status = rec.http_status.unwrap_or(match rec.state {
                crate::JobState::Done => 200,
                _ => 202,
            });
            (status, rec.to_json(req.flag("values", false)))
        }
        None => error_body(500, "device", "job record vanished"),
    }
}

fn get_job(service: &Service, req: &Request, id_text: &str) -> (u16, Value) {
    let id: u64 = match id_text.parse() {
        Ok(id) => id,
        Err(_) => return error_body(400, "bad-request", &format!("bad job id {id_text:?}")),
    };
    let record = if req.flag("wait", false) {
        service.wait(id)
    } else {
        service.job(id)
    };
    match record {
        Some(rec) => {
            let status = rec.http_status.unwrap_or(200);
            (status, rec.to_json(req.flag("values", true)))
        }
        None => error_body(404, "not-found", &format!("no job {id}")),
    }
}
