//! Job model: requests, lifecycle states, results, and per-job metrics.
//!
//! A job is one algorithm execution against a resident graph. Requests
//! arrive as JSON (HTTP) or structs (in-process), are validated at the
//! admission boundary, and flow through the scheduler as
//! `Queued → Running → Done/Failed`, or stop at `Rejected` when
//! admission control refuses them.

use serde::{Deserialize, Serialize};

use crate::error::{ServiceError, ServiceResult};

/// Algorithms the service can run. Single-source BFS requests are the
/// coalescible class: the scheduler may fold several of them into one
/// W-lane multi-source pass (bit-identical per lane to rooted runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    Bfs,
    Sssp,
    DeltaSssp,
    Cc,
    Bc,
    Pagerank,
}

impl Algo {
    /// Parses the wire name; rejects unknown algorithms with a typed
    /// error instead of panicking deep in dispatch.
    pub fn parse(name: &str) -> ServiceResult<Algo> {
        match name {
            "bfs" => Ok(Algo::Bfs),
            "sssp" => Ok(Algo::Sssp),
            "delta" | "delta-sssp" => Ok(Algo::DeltaSssp),
            "cc" => Ok(Algo::Cc),
            "bc" => Ok(Algo::Bc),
            "pagerank" | "pr" => Ok(Algo::Pagerank),
            other => Err(ServiceError::BadRequest(format!(
                "unknown algorithm {other:?} (expected bfs|sssp|delta|cc|bc|pagerank)"
            ))),
        }
    }

    /// Canonical wire name.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Bfs => "bfs",
            Algo::Sssp => "sssp",
            Algo::DeltaSssp => "delta",
            Algo::Cc => "cc",
            Algo::Bc => "bc",
            Algo::Pagerank => "pagerank",
        }
    }

    /// Whether the algorithm is rooted (requires a `source`).
    pub fn needs_source(&self) -> bool {
        !matches!(self, Algo::Cc | Algo::Pagerank)
    }

    /// Whether single-source requests of this algorithm may be folded
    /// into one multi-source lane pass with bit-identical per-lane
    /// output. BFS only: `bc_multi` matches the rooted pass to float
    /// tolerance, not bit-for-bit, so coalescing it would break the
    /// cache's bit-identity contract.
    pub fn coalescible(&self) -> bool {
        matches!(self, Algo::Bfs)
    }
}

/// A job submission. `algo` stays a string here so parse failures reach
/// the caller as a 400, not a deserialization panic; `Service::submit`
/// converts it via [`Algo::parse`]. Optional knobs default to service
/// policy when absent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRequest {
    /// Name of a registered resident graph.
    pub graph: String,
    /// Algorithm wire name (`bfs|sssp|delta|cc|bc|pagerank`).
    pub algo: String,
    /// Source vertex for rooted algorithms.
    pub source: Option<u32>,
    /// Δ for delta-stepping SSSP (default 2.0).
    pub delta: Option<f32>,
    /// Opt this job out of the result cache (forces recompute and
    /// skips the store).
    pub no_cache: Option<bool>,
    /// Opt this job out of request coalescing (forces a serial rooted
    /// pass even when batchmates are available).
    pub no_coalesce: Option<bool>,
    /// Client deadline in milliseconds, measured from admission. Capped
    /// by the server's `max_timeout_ms`; absent means the server's
    /// `default_timeout_ms` (which may be no deadline at all). Jobs past
    /// their deadline are shed from the queue or aborted mid-run with a
    /// typed `deadline-exceeded` record (HTTP 408).
    pub timeout_ms: Option<u64>,
}

impl JobRequest {
    /// Minimal rooted request with service-default policy knobs.
    pub fn rooted(graph: &str, algo: &str, source: u32) -> JobRequest {
        JobRequest {
            graph: graph.to_string(),
            algo: algo.to_string(),
            source: Some(source),
            delta: None,
            no_cache: None,
            no_coalesce: None,
            timeout_ms: None,
        }
    }

    /// Minimal unrooted request (cc / pagerank).
    pub fn unrooted(graph: &str, algo: &str) -> JobRequest {
        JobRequest {
            graph: graph.to_string(),
            algo: algo.to_string(),
            source: None,
            delta: None,
            no_cache: None,
            no_coalesce: None,
            timeout_ms: None,
        }
    }
}

/// Job lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Rejected,
}

/// A finished job's per-vertex values. `PartialEq` here is the
/// bit-identity check the cache tests rely on (no NaNs escape the
/// algorithms, so float equality is exact equality of bits in practice;
/// the tests additionally compare `f32::to_bits`).
#[derive(Debug, Clone, PartialEq)]
pub enum JobValues {
    U32(Vec<u32>),
    F32(Vec<f32>),
}

impl JobValues {
    pub fn len(&self) -> usize {
        match self {
            JobValues::U32(v) => v.len(),
            JobValues::F32(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact bit-level equality (distinguishes NaN payloads and signed
    /// zeros, unlike `PartialEq` on floats).
    pub fn bits_eq(&self, other: &JobValues) -> bool {
        match (self, other) {
            (JobValues::U32(a), JobValues::U32(b)) => a == b,
            (JobValues::F32(a), JobValues::F32(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => false,
        }
    }
}

// Hand-written so the wire shape is a flat array (matching the CLI's
// `"values": [...]`), not the derive's `{"U32": [...]}` tagging.
impl Serialize for JobValues {
    fn serialize_value(&self) -> serde::Value {
        match self {
            JobValues::U32(v) => v.serialize_value(),
            JobValues::F32(v) => v.serialize_value(),
        }
    }
}

/// Per-job execution metrics, filled in by the worker that ran it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Supersteps the algorithm ran.
    pub iterations: u32,
    /// Modelled device milliseconds.
    pub sim_ms: f64,
    /// Kernel launches attributed to this job (profiler-epoch scoped,
    /// so a worker's reused queue never bleeds counts across jobs).
    pub kernel_launches: u64,
    /// Measured device-memory peak while the job ran, from the
    /// allocation ledger.
    pub mem_peak_bytes: u64,
    /// Admission control's modelled peak for this job.
    pub modeled_peak_bytes: u64,
    /// Served from the result cache (no device work).
    pub cache_hit: bool,
    /// Ran as a lane of a coalesced multi-source batch.
    pub coalesced: bool,
    /// Lanes in the batch this job rode in (1 when serial).
    pub batch_size: u32,
    /// Fault-recovery events during the job (profiler-epoch scoped).
    pub recovery_events: u64,
}

/// Full job record, as returned by `GET /jobs/<id>`.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub id: u64,
    pub request: JobRequest,
    pub state: JobState,
    /// Graph registry version the job ran against (cache-key input).
    pub graph_version: u64,
    pub values: Option<JobValues>,
    pub error: Option<String>,
    pub error_kind: Option<String>,
    pub http_status: Option<u16>,
    pub metrics: JobMetrics,
}

impl JobRecord {
    pub(crate) fn queued(id: u64, request: JobRequest, graph_version: u64) -> JobRecord {
        JobRecord {
            id,
            request,
            state: JobState::Queued,
            graph_version,
            values: None,
            error: None,
            error_kind: None,
            http_status: None,
            metrics: JobMetrics::default(),
        }
    }

    /// JSON document for the HTTP layer. `include_values` lets the
    /// status poll omit the (possibly huge) value vector.
    pub fn to_json(&self, include_values: bool) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("id".into(), serde_json::to_value(&self.id)),
            ("graph".into(), serde_json::to_value(&self.request.graph)),
            (
                "graph_version".into(),
                serde_json::to_value(&self.graph_version),
            ),
            ("algo".into(), serde_json::to_value(&self.request.algo)),
            ("state".into(), serde_json::to_value(&self.state)),
        ];
        if let Some(src) = self.request.source {
            fields.push(("source".into(), serde_json::to_value(&src)));
        }
        if let Some(err) = &self.error {
            fields.push(("error".into(), serde_json::to_value(err)));
        }
        if let Some(kind) = &self.error_kind {
            fields.push(("error_kind".into(), serde_json::to_value(kind)));
        }
        if self.state == JobState::Done {
            fields.push((
                "iterations".into(),
                serde_json::to_value(&self.metrics.iterations),
            ));
            fields.push(("sim_ms".into(), serde_json::to_value(&self.metrics.sim_ms)));
            fields.push(("metrics".into(), serde_json::to_value(&self.metrics)));
            if include_values {
                if let Some(values) = &self.values {
                    fields.push(("values".into(), serde_json::to_value(values)));
                }
            }
        }
        serde::Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_parse_round_trips_and_rejects() {
        for name in ["bfs", "sssp", "delta", "cc", "bc", "pagerank"] {
            assert_eq!(Algo::parse(name).unwrap().label(), name);
        }
        assert_eq!(Algo::parse("pr").unwrap(), Algo::Pagerank);
        let err = Algo::parse("tarjan").unwrap_err();
        assert_eq!(err.http_status(), 400);
    }

    #[test]
    fn only_bfs_coalesces() {
        assert!(Algo::Bfs.coalescible());
        for a in [
            Algo::Sssp,
            Algo::DeltaSssp,
            Algo::Cc,
            Algo::Bc,
            Algo::Pagerank,
        ] {
            assert!(!a.coalescible(), "{:?}", a);
        }
    }

    #[test]
    fn job_request_json_round_trip() {
        let req = JobRequest::rooted("road", "bfs", 7);
        let text = serde_json::to_string(&req).unwrap();
        let back: JobRequest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.graph, "road");
        assert_eq!(back.algo, "bfs");
        assert_eq!(back.source, Some(7));
        assert_eq!(back.no_cache, None);
    }

    #[test]
    fn values_serialize_flat() {
        let v = JobValues::U32(vec![1, 2, 3]);
        assert_eq!(serde_json::to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn float_bit_identity_is_stricter_than_eq() {
        let a = JobValues::F32(vec![0.0]);
        let b = JobValues::F32(vec![-0.0]);
        assert_eq!(a, b); // IEEE equality
        assert!(!a.bits_eq(&b)); // bit identity
    }
}
