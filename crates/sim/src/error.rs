//! Simulator error types.

use std::fmt;

/// Errors surfaced by the simulated runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Device memory exhausted. Frameworks whose data layouts outgrow VRAM
    /// (e.g. vector frontiers plus BC bookkeeping on road-USA) fail with
    /// this, reproducing the paper's OOM table entries.
    OutOfMemory {
        requested: u64,
        used: u64,
        capacity: u64,
    },
    /// A kernel asked for an unsupported launch shape.
    InvalidLaunch(String),
    /// Algorithm-level failure (e.g. negative-weight cycle in SSSP input).
    Algorithm(String),
    /// The framework does not implement the requested algorithm
    /// (SEP-Graph has no CC implementation; rendered as `-` in Table 6).
    Unsupported(String),
    /// Request-boundary rejection: the caller handed in something that can
    /// never run (out-of-range source vertex, malformed graph, unknown
    /// parameter). Unlike [`SimError::Algorithm`] this is the *input's*
    /// fault, so services map it to a 4xx instead of a 5xx.
    InvalidInput(String),
    /// A transient launch failure (injected by a [`FaultPlan`]); the same
    /// launch is expected to succeed on retry. Carries the kernel label and
    /// the launch-attempt ordinal at which the fault fired.
    ///
    /// [`FaultPlan`]: crate::fault::FaultPlan
    Transient { kernel: String, launch: u64 },
    /// The device died (sticky): every subsequent launch fails until the
    /// queue is revived. Recovery requires replaying from a checkpoint.
    DeviceLost { kernel: String, launch: u64 },
    /// Cooperative cancellation: a [`CancelToken`] attached to the queue
    /// was cancelled or its deadline passed. The engine checks the token
    /// at superstep-checkpoint boundaries, so the abort is clean — no
    /// half-applied superstep ever escapes. This is the *caller's*
    /// request (a service deadline or drain), not a device failure, so
    /// recovery policies never retry it.
    ///
    /// [`CancelToken`]: crate::cancel::CancelToken
    Cancelled { reason: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                used,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {used}/{capacity} B in use"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid kernel launch: {msg}"),
            SimError::Algorithm(msg) => write!(f, "algorithm error: {msg}"),
            SimError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            SimError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SimError::Transient { kernel, launch } => {
                write!(
                    f,
                    "transient launch failure: kernel `{kernel}` at launch #{launch}"
                )
            }
            SimError::DeviceLost { kernel, launch } => {
                write!(f, "device lost: kernel `{kernel}` at launch #{launch}")
            }
            SimError::Cancelled { reason } => write!(f, "cancelled: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Crate-wide result alias.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SimError::OutOfMemory {
            requested: 10,
            used: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("requested 10 B"));
        assert!(SimError::Unsupported("cc".into())
            .to_string()
            .contains("cc"));
    }
}
