//! Analytic kernel cost model.
//!
//! Converts per-compute-unit workgroup statistics into a modelled execution
//! time and an achieved-occupancy figure. The model is throughput-based
//! (roofline-style): a CU's time is the maximum of its compute-issue time
//! and its memory-service time, plus serialization terms (barriers, atomic
//! conflicts) and per-workgroup scheduling overhead. The kernel ends when
//! its slowest CU finishes, so workload imbalance directly lengthens the
//! modelled time — which is exactly the effect the paper's load-balancing
//! strategy targets.

use crate::device::DeviceProfile;
use crate::exec::LaunchConfig;
use crate::stats::{GroupStats, KernelStats};

/// Statistics aggregated over the workgroups one CU executed.
#[derive(Debug, Default, Clone)]
pub struct CuAgg {
    pub stats: GroupStats,
    pub groups: u64,
    /// Cycles of the single most expensive workgroup this CU ran
    /// (per-group cost via [`group_cycles`]).
    pub max_group_cycles: f64,
    /// Sum of per-workgroup cycles — with `groups`, yields the mean.
    pub sum_group_cycles: f64,
}

impl CuAgg {
    /// Folds one finished workgroup into the aggregate.
    pub fn add_group(&mut self, profile: &DeviceProfile, cfg: &LaunchConfig, stats: &GroupStats) {
        let gc = group_cycles(profile, cfg, stats);
        self.stats.merge(stats);
        self.groups += 1;
        self.max_group_cycles = self.max_group_cycles.max(gc);
        self.sum_group_cycles += gc;
    }
}

/// Subgroup instructions the CU can issue per cycle (schedulers per SM).
const ISSUE_WIDTH: f64 = 4.0;
/// L1 transactions serviced per cycle.
const L1_THROUGHPUT: f64 = 4.0;
/// Memory-level parallelism: outstanding misses amortizing DRAM latency.
const MLP: f64 = 24.0;
/// Fixed cycles to schedule one workgroup onto a CU.
const GROUP_SCHED_CYCLES: f64 = 220.0;

/// Resident workgroups per CU given launch shape and device limits.
pub fn resident_workgroups(profile: &DeviceProfile, cfg: &LaunchConfig) -> u32 {
    let by_count = profile.max_workgroups_per_cu;
    let by_threads = (profile.max_threads_per_cu / cfg.wg_size.max(1)).max(1);
    let by_local = profile
        .local_mem_bytes
        .checked_div(cfg.local_mem_bytes)
        .map_or(u32::MAX, |x| x.max(1));
    by_count.min(by_threads).min(by_local)
}

/// Theoretical occupancy: resident threads / max threads, in `[0, 1]`.
pub fn theoretical_occupancy(profile: &DeviceProfile, cfg: &LaunchConfig) -> f64 {
    let resident = resident_workgroups(profile, cfg) as u64 * cfg.wg_size as u64;
    (resident as f64 / profile.max_threads_per_cu as f64).min(1.0)
}

fn cu_cycles(profile: &DeviceProfile, cfg: &LaunchConfig, agg: &CuAgg, active_cus: u32) -> f64 {
    cycles_for(profile, cfg, &agg.stats, agg.groups, active_cus)
}

/// Modelled cycles for a *single* workgroup's statistics, costed as if it
/// had a CU to itself. Absolute values are optimistic (no contention from
/// co-resident groups), but the *ratios* across workgroups of one kernel
/// are exactly the load-imbalance signal the profiler reports.
pub fn group_cycles(profile: &DeviceProfile, cfg: &LaunchConfig, stats: &GroupStats) -> f64 {
    cycles_for(profile, cfg, stats, 1, profile.compute_units)
}

fn cycles_for(
    profile: &DeviceProfile,
    cfg: &LaunchConfig,
    s: &GroupStats,
    groups: u64,
    active_cus: u32,
) -> f64 {
    let compute = s.compute_cycles as f64 / ISSUE_WIDTH;
    let l1 = s.l1_hits as f64 / L1_THROUGHPUT;
    let l2 = s.l2_hits as f64 / profile.l2_throughput
        + s.l2_hits as f64 * profile.l2_latency as f64
            / MLP
            / resident_workgroups(profile, cfg).max(1) as f64;
    // DRAM: bandwidth-limited or latency-limited, whichever dominates.
    let per_cu_bw = profile.dram_bytes_per_cycle() / active_cus.max(1) as f64;
    let dram_bw = s.dram_bytes as f64 / per_cu_bw;
    let dram_lat = s.dram_transactions as f64 * profile.dram_latency as f64 / MLP;
    let mem = l1 + l2 + dram_bw.max(dram_lat);
    let local = s.local_accesses as f64 / L1_THROUGHPUT;
    let serial = s.atomic_conflict_cycles as f64;
    compute.max(mem + local) + serial + groups as f64 * GROUP_SCHED_CYCLES
}

/// Combines per-CU aggregates into final kernel statistics.
pub fn finalize(profile: &DeviceProfile, cfg: &LaunchConfig, cus: &[CuAgg]) -> KernelStats {
    let active_cus = cus.iter().filter(|c| c.groups > 0).count().max(1) as u32;
    let mut totals = GroupStats::default();
    let mut workgroups = 0;
    let mut max_cycles = 0f64;
    let mut sum_cycles = 0f64;
    let mut max_group_cycles = 0f64;
    let mut sum_group_cycles = 0f64;
    for agg in cus {
        totals.merge(&agg.stats);
        workgroups += agg.groups;
        let c = cu_cycles(profile, cfg, agg, active_cus);
        max_cycles = max_cycles.max(c);
        if agg.groups > 0 {
            sum_cycles += c;
        }
        max_group_cycles = max_group_cycles.max(agg.max_group_cycles);
        sum_group_cycles += agg.sum_group_cycles;
    }
    let balance = if max_cycles > 0.0 {
        (sum_cycles / active_cus as f64) / max_cycles
    } else {
        1.0
    };
    // Achieved occupancy: the theoretical ceiling scaled by cross-CU
    // balance (an imbalanced kernel leaves warps idle while the slow CU
    // drains). Launches smaller than one workgroup per CU additionally
    // lose occupancy — softly, as NCU's time-weighted metric does.
    let theo = theoretical_occupancy(profile, cfg);
    let tiny = if workgroups == 0 {
        0.0
    } else {
        (workgroups as f64 / profile.compute_units as f64)
            .min(1.0)
            .powf(0.3)
    };
    let occupancy = theo * tiny * (0.72 + 0.28 * balance);
    let exec_ns = max_cycles / profile.cycles_per_ns();
    KernelStats {
        totals,
        workgroups,
        workgroup_size: cfg.wg_size,
        subgroup_size: cfg.sg_size,
        local_mem_bytes: cfg.local_mem_bytes,
        exec_ns,
        overhead_ns: profile.launch_overhead_us * 1000.0,
        occupancy: occupancy.min(1.0),
        max_group_cycles,
        mean_group_cycles: if workgroups == 0 {
            0.0
        } else {
            sum_group_cycles / workgroups as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(groups: usize, wg: u32, sg: u32, local: u32) -> LaunchConfig {
        let mut c = LaunchConfig::new("t", groups, wg, sg);
        c.local_mem_bytes = local;
        c
    }

    fn agg(compute: u64, dram_tx: u64, groups: u64) -> CuAgg {
        CuAgg {
            stats: GroupStats {
                compute_cycles: compute,
                dram_transactions: dram_tx,
                dram_bytes: dram_tx * 128,
                ..Default::default()
            },
            groups,
            ..Default::default()
        }
    }

    #[test]
    fn resident_limited_by_threads() {
        let p = DeviceProfile::v100s();
        // 1024-thread groups: 2048/1024 = 2 resident.
        assert_eq!(resident_workgroups(&p, &cfg(10, 1024, 32, 0)), 2);
        // 64-thread groups: limited by the 32-group cap.
        assert_eq!(resident_workgroups(&p, &cfg(10, 64, 32, 0)), 32);
    }

    #[test]
    fn resident_limited_by_local_mem() {
        let p = DeviceProfile::v100s();
        // 48 KiB of 96 KiB local per group -> 2 resident.
        assert_eq!(resident_workgroups(&p, &cfg(10, 64, 32, 48 << 10)), 2);
    }

    #[test]
    fn occupancy_full_when_saturated() {
        let p = DeviceProfile::v100s();
        let c = cfg(10, 256, 32, 0);
        assert!((theoretical_occupancy(&p, &c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_dram_traffic_is_slower() {
        let p = DeviceProfile::v100s();
        let c = cfg(80, 256, 32, 0);
        let light: Vec<CuAgg> = (0..80).map(|_| agg(1000, 10, 1)).collect();
        let heavy: Vec<CuAgg> = (0..80).map(|_| agg(1000, 100_000, 1)).collect();
        let t1 = finalize(&p, &c, &light).exec_ns;
        let t2 = finalize(&p, &c, &heavy).exec_ns;
        assert!(t2 > t1 * 5.0, "t1={t1} t2={t2}");
    }

    #[test]
    fn imbalance_lowers_occupancy_and_raises_time() {
        let p = DeviceProfile::v100s();
        let c = cfg(80, 256, 32, 0);
        let balanced: Vec<CuAgg> = (0..80).map(|_| agg(10_000, 1000, 1)).collect();
        let mut skewed = balanced.clone();
        skewed[0] = agg(800_000, 80_000, 1);
        let b = finalize(&p, &c, &balanced);
        let s = finalize(&p, &c, &skewed);
        assert!(s.exec_ns > b.exec_ns);
        assert!(s.occupancy < b.occupancy);
    }

    #[test]
    fn group_cycle_aggregation_tracks_imbalance() {
        let p = DeviceProfile::v100s();
        let c = cfg(80, 256, 32, 0);
        // Balanced: every group identical -> max == mean, imbalance 1.0.
        let balanced: Vec<CuAgg> = (0..80)
            .map(|_| {
                let mut a = CuAgg::default();
                a.add_group(
                    &p,
                    &c,
                    &GroupStats {
                        compute_cycles: 10_000,
                        ..Default::default()
                    },
                );
                a
            })
            .collect();
        let b = finalize(&p, &c, &balanced);
        assert!(b.mean_group_cycles > 0.0);
        assert!((b.load_imbalance() - 1.0).abs() < 1e-9);

        // One hub group 100x heavier -> max/mean well above 1.
        let mut skewed = balanced;
        skewed[0] = CuAgg::default();
        skewed[0].add_group(
            &p,
            &c,
            &GroupStats {
                compute_cycles: 1_000_000,
                ..Default::default()
            },
        );
        let s = finalize(&p, &c, &skewed);
        assert!(s.max_group_cycles > s.mean_group_cycles * 5.0);
        assert!(s.load_imbalance() > 5.0);
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let p = DeviceProfile::v100s();
        let c = cfg(0, 256, 32, 0);
        let k = finalize(&p, &c, &[]);
        assert_eq!(k.exec_ns, 0.0);
        assert!(k.total_ns() > 0.0);
    }
}
