//! Simulated device memory.
//!
//! [`DeviceBuffer<T>`] is typed device memory with a *simulated* global
//! address (used by the coalescing and cache models) backed by real host
//! memory. All element access goes through relaxed atomics so that
//! workgroups running on different host threads may race through atomics
//! exactly the way GPU kernels do, without UB.
//!
//! Buffers are allocated from a [`MemTracker`] that enforces the device's
//! VRAM capacity — exceeding it yields [`SimError::OutOfMemory`], which is
//! how the paper's OOM entries (Gunrock on road-USA BC, etc.) reproduce.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{
    AtomicBool, AtomicI32, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering,
};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::error::SimError;

/// Scalar types storable in device memory. All are accessed atomically
/// (relaxed) so concurrent kernel lanes never cause UB.
pub trait DeviceScalar: Copy + Send + Sync + Default + 'static {
    /// Size of the element in bytes (4 or 8).
    const BYTES: usize;
    /// # Safety
    /// `p` must be valid, aligned to `BYTES` and only accessed atomically.
    unsafe fn atomic_load(p: *const u8) -> Self;
    /// # Safety
    /// Same contract as [`DeviceScalar::atomic_load`].
    unsafe fn atomic_store(p: *const u8, v: Self);
}

macro_rules! impl_scalar {
    ($t:ty, $at:ty, $bytes:expr) => {
        impl DeviceScalar for $t {
            const BYTES: usize = $bytes;
            unsafe fn atomic_load(p: *const u8) -> Self {
                (*(p as *const $at)).load(Ordering::Relaxed)
            }
            unsafe fn atomic_store(p: *const u8, v: Self) {
                (*(p as *const $at)).store(v, Ordering::Relaxed);
            }
        }
    };
}

impl_scalar!(u8, AtomicU8, 1);
impl_scalar!(u32, AtomicU32, 4);
impl_scalar!(u64, AtomicU64, 8);
impl_scalar!(i32, AtomicI32, 4);
impl_scalar!(i64, AtomicI64, 8);

impl DeviceScalar for f32 {
    const BYTES: usize = 4;
    unsafe fn atomic_load(p: *const u8) -> Self {
        f32::from_bits((*(p as *const AtomicU32)).load(Ordering::Relaxed))
    }
    unsafe fn atomic_store(p: *const u8, v: Self) {
        (*(p as *const AtomicU32)).store(v.to_bits(), Ordering::Relaxed);
    }
}

impl DeviceScalar for f64 {
    const BYTES: usize = 8;
    unsafe fn atomic_load(p: *const u8) -> Self {
        f64::from_bits((*(p as *const AtomicU64)).load(Ordering::Relaxed))
    }
    unsafe fn atomic_store(p: *const u8, v: Self) {
        (*(p as *const AtomicU64)).store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Integer scalars additionally supporting read-modify-write atomics
/// (`fetch_or` / `fetch_and` are what the bitmap frontier is built on).
pub trait AtomicInt: DeviceScalar {
    /// # Safety
    /// Same contract as [`DeviceScalar::atomic_load`].
    unsafe fn atomic_fetch_add(p: *const u8, v: Self) -> Self;
    /// # Safety
    /// Same contract as [`DeviceScalar::atomic_load`].
    unsafe fn atomic_fetch_min(p: *const u8, v: Self) -> Self;
    /// # Safety
    /// Same contract as [`DeviceScalar::atomic_load`].
    unsafe fn atomic_fetch_max(p: *const u8, v: Self) -> Self;
    /// # Safety
    /// Same contract as [`DeviceScalar::atomic_load`].
    unsafe fn atomic_fetch_or(p: *const u8, v: Self) -> Self;
    /// # Safety
    /// Same contract as [`DeviceScalar::atomic_load`].
    unsafe fn atomic_fetch_and(p: *const u8, v: Self) -> Self;
    /// # Safety
    /// Same contract as [`DeviceScalar::atomic_load`].
    unsafe fn atomic_cas(p: *const u8, current: Self, new: Self) -> Result<Self, Self>;
}

macro_rules! impl_atomic_int {
    ($t:ty, $at:ty) => {
        impl AtomicInt for $t {
            unsafe fn atomic_fetch_add(p: *const u8, v: Self) -> Self {
                (*(p as *const $at)).fetch_add(v, Ordering::Relaxed)
            }
            unsafe fn atomic_fetch_min(p: *const u8, v: Self) -> Self {
                (*(p as *const $at)).fetch_min(v, Ordering::Relaxed)
            }
            unsafe fn atomic_fetch_max(p: *const u8, v: Self) -> Self {
                (*(p as *const $at)).fetch_max(v, Ordering::Relaxed)
            }
            unsafe fn atomic_fetch_or(p: *const u8, v: Self) -> Self {
                (*(p as *const $at)).fetch_or(v, Ordering::Relaxed)
            }
            unsafe fn atomic_fetch_and(p: *const u8, v: Self) -> Self {
                (*(p as *const $at)).fetch_and(v, Ordering::Relaxed)
            }
            unsafe fn atomic_cas(p: *const u8, current: Self, new: Self) -> Result<Self, Self> {
                (*(p as *const $at)).compare_exchange(
                    current,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
            }
        }
    };
}

impl_atomic_int!(u8, AtomicU8);
impl_atomic_int!(u32, AtomicU32);
impl_atomic_int!(u64, AtomicU64);
impl_atomic_int!(i32, AtomicI32);
impl_atomic_int!(i64, AtomicI64);

/// Where a buffer lives, mirroring SYCL USM allocation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AllocKind {
    /// `malloc_device`: device-resident.
    Device,
    /// `malloc_shared` (USM): automatically migrated; slightly higher
    /// first-touch cost in the model.
    Shared,
}

/// Allocation-ledger entry: enough metadata to name any simulated address
/// after the fact, even once the owning buffer is gone (addresses are
/// monotonic and never reused, so dead entries stay resolvable).
#[derive(Debug)]
pub(crate) struct LedgerEntry {
    pub(crate) bytes: u64,
    pub(crate) gen: u64,
    pub(crate) kind: AllocKind,
    pub(crate) live: Arc<AtomicBool>,
    pub(crate) storage: Weak<RawStorage>,
}

/// Tracks VRAM usage for one device and hands out simulated addresses.
#[derive(Debug)]
pub struct MemTracker {
    capacity: u64,
    /// Effective-capacity cap below `capacity` (threshold OOM injection);
    /// `u64::MAX` means "no soft limit".
    soft_limit: AtomicU64,
    used: AtomicU64,
    peak: AtomicU64,
    next_addr: AtomicU64,
    allocs: AtomicU64,
    generation: AtomicU64,
    release_underflows: AtomicU64,
    ledger: Mutex<BTreeMap<u64, LedgerEntry>>,
}

impl MemTracker {
    pub fn new(capacity: u64) -> Self {
        MemTracker {
            capacity,
            soft_limit: AtomicU64::new(u64::MAX),
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            // Leave a zero page unused so address 0 never appears.
            next_addr: AtomicU64::new(4096),
            allocs: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            release_underflows: AtomicU64::new(0),
            ledger: Mutex::new(BTreeMap::new()),
        }
    }

    /// 256-B allocator granularity; used/peak/release all charge this.
    pub(crate) fn aligned(bytes: u64) -> u64 {
        (bytes + 255) & !255
    }

    /// Reserves `bytes`, failing when capacity would be exceeded.
    /// Returns the simulated base address. The amount charged against
    /// capacity is the 256-B-aligned size — the same granularity the
    /// address space advances by — so reserve/release stay symmetric.
    pub fn reserve(&self, bytes: u64) -> Result<u64, SimError> {
        let charged = Self::aligned(bytes);
        let capacity = self.effective_capacity();
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur + charged;
            if new > capacity {
                return Err(SimError::OutOfMemory {
                    requested: charged,
                    used: cur,
                    capacity,
                });
            }
            match self
                .used
                .compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    break;
                }
                Err(actual) => cur = actual,
            }
        }
        self.allocs.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .next_addr
            .fetch_add(charged.max(256), Ordering::Relaxed))
    }

    /// Returns `bytes` to the pool, saturating at zero. An underflow
    /// (releasing more than is outstanding) is an accounting bug; it is
    /// counted for the sanitizer instead of silently wrapping the counter
    /// around to ~2^64 and wedging every later allocation into OOM.
    pub fn release(&self, bytes: u64) {
        let mut underflowed = false;
        let _ = self
            .used
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                underflowed = cur < bytes;
                Some(cur.saturating_sub(bytes))
            });
        if underflowed {
            self.release_underflows.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many `release` calls would have wrapped below zero.
    pub fn release_underflows(&self) -> u64 {
        self.release_underflows.load(Ordering::Relaxed)
    }

    /// Reads and resets the underflow counter (sanitizer drains this
    /// once per kernel launch).
    pub(crate) fn drain_release_underflows(&self) -> u64 {
        self.release_underflows.swap(0, Ordering::Relaxed)
    }

    pub(crate) fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn register(&self, base_addr: u64, entry: LedgerEntry) {
        self.ledger.lock().insert(base_addr, entry);
    }

    /// Resolves a simulated address to (kind, base address, generation)
    /// of the allocation containing it, live or dead.
    pub(crate) fn locate(&self, addr: u64) -> Option<(AllocKind, u64, u64)> {
        let ledger = self.ledger.lock();
        let (&base, entry) = ledger.range(..=addr).next_back()?;
        let extent = Self::aligned(entry.bytes).max(256);
        (addr < base + extent).then_some((entry.kind, base, entry.gen))
    }

    /// All currently live allocations with their backing storage (for
    /// sanitizer memory snapshots).
    pub(crate) fn live_allocations(&self) -> Vec<(u64, AllocKind, Arc<RawStorage>)> {
        self.ledger
            .lock()
            .iter()
            .filter(|(_, e)| e.live.load(Ordering::Relaxed))
            .filter_map(|(&base, e)| e.storage.upgrade().map(|s| (base, e.kind, s)))
            .collect()
    }

    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Caps allocations below physical capacity (threshold OOM injection);
    /// `None` removes the cap.
    pub fn set_soft_limit(&self, bytes: Option<u64>) {
        self.soft_limit
            .store(bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// Capacity allocations are checked against: `min(capacity, soft limit)`.
    pub fn effective_capacity(&self) -> u64 {
        self.capacity.min(self.soft_limit.load(Ordering::Relaxed))
    }

    /// Recomputes `used` from the set of live ledger entries and folds it
    /// into `peak`. After a checkpoint restore the incremental counters can
    /// have drifted (saturated releases clamp at zero and drop bytes);
    /// the ledger is the ground truth.
    pub fn recompute_from_ledger(&self) {
        let ledger = self.ledger.lock();
        let used: u64 = ledger
            .values()
            .filter(|e| e.live.load(Ordering::Relaxed))
            .map(|e| Self::aligned(e.bytes))
            .sum();
        self.used.store(used, Ordering::Relaxed);
        self.peak.fetch_max(used, Ordering::Relaxed);
    }

    pub fn reset_peak(&self) {
        self.peak
            .store(self.used.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }
}

/// Word-aligned raw backing storage (always a whole number of u64 words so
/// any 4- or 8-byte element is aligned).
pub(crate) struct RawStorage {
    words: Box<[AtomicU64]>,
}

// SAFETY: all access goes through atomics.
unsafe impl Send for RawStorage {}
unsafe impl Sync for RawStorage {}

impl RawStorage {
    fn zeroed(bytes: usize) -> Self {
        let words = bytes.div_ceil(8);
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        RawStorage {
            words: v.into_boxed_slice(),
        }
    }

    fn base(&self) -> *const u8 {
        self.words.as_ptr() as *const u8
    }

    /// Word-level copy of the contents (sanitizer snapshots).
    pub(crate) fn snapshot_words(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Writes a snapshot back over the contents.
    pub(crate) fn restore_words(&self, words: &[u64]) {
        for (dst, &src) in self.words.iter().zip(words) {
            dst.store(src, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for RawStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RawStorage({} words)", self.words.len())
    }
}

/// Typed simulated device memory.
///
/// Cheap host-side accessors (`get`/`set`/`to_vec`) exist for setup and
/// verification; kernels access buffers through the execution contexts in
/// [`crate::exec`], which add transaction accounting on top of the same
/// primitives exposed here as `load`/`store`/`fetch_*`.
pub struct DeviceBuffer<T: DeviceScalar> {
    storage: Arc<RawStorage>,
    tracker: Arc<MemTracker>,
    base_addr: u64,
    len: usize,
    kind: AllocKind,
    /// Allocation generation tag (1-based, unique per device).
    gen: u64,
    /// Shared liveness flag: cleared when the owning buffer drops, so
    /// dangling [`DeviceBuffer::alias`] views are detectable.
    live: Arc<AtomicBool>,
    /// Only the owning buffer releases tracker bytes and clears `live`.
    owned: bool,
    /// Aligned byte count charged at allocation (released on drop).
    charged: u64,
    _pd: PhantomData<T>,
}

impl<T: DeviceScalar> DeviceBuffer<T> {
    pub(crate) fn new(
        tracker: Arc<MemTracker>,
        len: usize,
        kind: AllocKind,
    ) -> Result<Self, SimError> {
        let bytes = (len * T::BYTES) as u64;
        let base_addr = tracker.reserve(bytes)?;
        let storage = Arc::new(RawStorage::zeroed(len * T::BYTES));
        let live = Arc::new(AtomicBool::new(true));
        let gen = tracker.next_generation();
        tracker.register(
            base_addr,
            LedgerEntry {
                bytes,
                gen,
                kind,
                live: live.clone(),
                storage: Arc::downgrade(&storage),
            },
        );
        Ok(DeviceBuffer {
            storage,
            tracker,
            base_addr,
            len,
            kind,
            gen,
            live,
            owned: true,
            charged: MemTracker::aligned(bytes),
            _pd: PhantomData,
        })
    }

    /// A non-owning view of the same allocation, modelling a raw device
    /// pointer that outlives its allocation. The view shares storage (so
    /// the simulation itself never has UB) but does not keep the
    /// allocation *live*: once the owning buffer drops, any access
    /// through the view is a use-after-free that the sanitizer reports
    /// via the allocation's generation tag.
    pub fn alias(&self) -> DeviceBuffer<T> {
        DeviceBuffer {
            storage: Arc::clone(&self.storage),
            tracker: Arc::clone(&self.tracker),
            base_addr: self.base_addr,
            len: self.len,
            kind: self.kind,
            gen: self.gen,
            live: Arc::clone(&self.live),
            owned: false,
            charged: 0,
            _pd: PhantomData,
        }
    }

    /// False once the owning buffer has been dropped.
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Relaxed)
    }

    /// Allocation generation tag (unique per device, 1-based).
    pub fn generation(&self) -> u64 {
        self.gen
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn kind(&self) -> AllocKind {
        self.kind
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.len * T::BYTES) as u64
    }

    /// Host-side word-level copy of the contents (checkpointing). No
    /// kernels run and nothing is committed to the clock or profiler.
    pub fn snapshot_words(&self) -> Vec<u64> {
        self.storage.snapshot_words()
    }

    /// Writes a [`DeviceBuffer::snapshot_words`] image back over the
    /// contents (checkpoint restore). Host-side, like the snapshot.
    pub fn restore_words(&self, words: &[u64]) {
        self.storage.restore_words(words)
    }

    /// Always-on bounds check (release builds included) whose panic
    /// message names the allocation kind and length, so a tier-1 failure
    /// is diagnosable without a debug rebuild.
    #[inline]
    #[track_caller]
    fn check_index(&self, i: usize) {
        if i >= self.len {
            panic!(
                "device buffer index {i} out of bounds (len {}, kind {:?})",
                self.len, self.kind
            );
        }
    }

    /// Simulated global address of element `i` (feeds the cache model).
    #[inline]
    #[track_caller]
    pub fn addr_of(&self, i: usize) -> u64 {
        self.check_index(i);
        self.base_addr + (i * T::BYTES) as u64
    }

    #[inline]
    #[track_caller]
    fn ptr(&self, i: usize) -> *const u8 {
        self.check_index(i);
        unsafe { self.storage.base().add(i * T::BYTES) }
    }

    /// Relaxed atomic load of element `i` (no accounting).
    #[inline]
    pub fn load(&self, i: usize) -> T {
        unsafe { T::atomic_load(self.ptr(i)) }
    }

    /// Relaxed atomic store to element `i` (no accounting).
    #[inline]
    pub fn store(&self, i: usize, v: T) {
        unsafe { T::atomic_store(self.ptr(i), v) }
    }

    /// Host-side bulk upload.
    pub fn copy_from_slice(&self, src: &[T]) {
        assert!(src.len() <= self.len);
        for (i, &v) in src.iter().enumerate() {
            self.store(i, v);
        }
    }

    /// Host-side bulk download.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len).map(|i| self.load(i)).collect()
    }

    /// Host-side fill.
    pub fn fill(&self, v: T) {
        for i in 0..self.len {
            self.store(i, v);
        }
    }
}

impl<T: AtomicInt> DeviceBuffer<T> {
    #[inline]
    pub fn fetch_add(&self, i: usize, v: T) -> T {
        unsafe { T::atomic_fetch_add(self.ptr(i), v) }
    }
    #[inline]
    pub fn fetch_min(&self, i: usize, v: T) -> T {
        unsafe { T::atomic_fetch_min(self.ptr(i), v) }
    }
    #[inline]
    pub fn fetch_max(&self, i: usize, v: T) -> T {
        unsafe { T::atomic_fetch_max(self.ptr(i), v) }
    }
    #[inline]
    pub fn fetch_or(&self, i: usize, v: T) -> T {
        unsafe { T::atomic_fetch_or(self.ptr(i), v) }
    }
    #[inline]
    pub fn fetch_and(&self, i: usize, v: T) -> T {
        unsafe { T::atomic_fetch_and(self.ptr(i), v) }
    }
    #[inline]
    pub fn compare_exchange(&self, i: usize, current: T, new: T) -> Result<T, T> {
        unsafe { T::atomic_cas(self.ptr(i), current, new) }
    }
}

impl DeviceBuffer<f32> {
    /// Atomic min on an `f32` via a CAS loop (GPU frameworks emulate this
    /// the same way).
    ///
    /// NaN policy (shared with [`DeviceBuffer::fetch_add_f32`]): a NaN
    /// operand never poisons the cell — it is ignored and the current
    /// value returned. A NaN already *in* the cell is repaired by the
    /// first non-NaN operand. `-0.0` orders below `+0.0`, matching IEEE
    /// `minimum` rather than the `<` comparison that treats them equal.
    pub fn fetch_min_f32(&self, i: usize, v: f32) -> f32 {
        let p = self.ptr(i) as *const AtomicU32;
        let a = unsafe { &*p };
        let mut cur = a.load(Ordering::Relaxed);
        loop {
            let cf = f32::from_bits(cur);
            if v.is_nan() {
                return cf;
            }
            let smaller = v < cf
                || (v == cf && v.is_sign_negative() && !cf.is_sign_negative())
                || cf.is_nan();
            if !smaller {
                return cf;
            }
            match a.compare_exchange(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return cf,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomic add on an `f32` via a CAS loop. A NaN operand is ignored
    /// (current value returned) — same NaN policy as
    /// [`DeviceBuffer::fetch_min_f32`], so one bad contribution cannot
    /// poison an accumulator shared by thousands of lanes.
    pub fn fetch_add_f32(&self, i: usize, v: f32) -> f32 {
        let p = self.ptr(i) as *const AtomicU32;
        let a = unsafe { &*p };
        let mut cur = a.load(Ordering::Relaxed);
        if v.is_nan() {
            return f32::from_bits(cur);
        }
        loop {
            let cf = f32::from_bits(cur);
            let new = (cf + v).to_bits();
            match a.compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return cf,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl<T: DeviceScalar> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if self.owned {
            self.live.store(false, Ordering::Relaxed);
            self.tracker.release(self.charged);
        }
    }
}

impl<T: DeviceScalar + std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeviceBuffer<{}>(len={}, addr={:#x}, {:?})",
            std::any::type_name::<T>(),
            self.len,
            self.base_addr,
            self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(cap: u64) -> Arc<MemTracker> {
        Arc::new(MemTracker::new(cap))
    }

    #[test]
    fn roundtrip_u32() {
        let b = DeviceBuffer::<u32>::new(tracker(1 << 20), 100, AllocKind::Device).unwrap();
        b.store(3, 42);
        assert_eq!(b.load(3), 42);
        assert_eq!(b.load(4), 0, "fresh memory is zeroed");
    }

    #[test]
    fn roundtrip_f64_and_f32() {
        let t = tracker(1 << 20);
        let b = DeviceBuffer::<f64>::new(t.clone(), 8, AllocKind::Shared).unwrap();
        b.store(7, -1.5);
        assert_eq!(b.load(7), -1.5);
        let c = DeviceBuffer::<f32>::new(t, 8, AllocKind::Device).unwrap();
        c.store(0, 3.25);
        assert_eq!(c.load(0), 3.25);
    }

    #[test]
    fn atomic_rmw_ops() {
        let b = DeviceBuffer::<u32>::new(tracker(1 << 20), 4, AllocKind::Device).unwrap();
        assert_eq!(b.fetch_add(0, 5), 0);
        assert_eq!(b.fetch_add(0, 5), 5);
        b.store(1, 10);
        assert_eq!(b.fetch_min(1, 3), 10);
        assert_eq!(b.load(1), 3);
        assert_eq!(b.fetch_or(2, 0b1010), 0);
        assert_eq!(b.fetch_or(2, 0b0101), 0b1010);
        assert_eq!(b.load(2), 0b1111);
        assert_eq!(b.fetch_and(2, 0b0110), 0b1111);
        assert_eq!(b.load(2), 0b0110);
    }

    #[test]
    fn f32_atomic_min() {
        let b = DeviceBuffer::<f32>::new(tracker(1 << 20), 1, AllocKind::Device).unwrap();
        b.store(0, 100.0);
        assert_eq!(b.fetch_min_f32(0, 50.0), 100.0);
        assert_eq!(b.fetch_min_f32(0, 75.0), 50.0);
        assert_eq!(b.load(0), 50.0);
    }

    #[test]
    fn f32_atomic_min_handles_infinity_and_nan() {
        let b = DeviceBuffer::<f32>::new(tracker(1 << 20), 1, AllocKind::Device).unwrap();
        b.store(0, f32::INFINITY);
        assert_eq!(b.fetch_min_f32(0, 3.0), f32::INFINITY, "relaxing from ∞");
        assert_eq!(b.load(0), 3.0);
        // NaN never overwrites a real distance
        assert_eq!(b.fetch_min_f32(0, f32::NAN), 3.0);
        assert_eq!(b.load(0), 3.0);
        // negative values still win
        assert_eq!(b.fetch_min_f32(0, -1.0), 3.0);
        assert_eq!(b.load(0), -1.0);
    }

    #[test]
    fn f32_atomic_min_orders_negative_zero() {
        let b = DeviceBuffer::<f32>::new(tracker(1024), 1, AllocKind::Device).unwrap();
        b.store(0, 0.0);
        b.fetch_min_f32(0, -0.0);
        assert!(b.load(0).is_sign_negative(), "-0.0 wins over +0.0");
        // And +0.0 never displaces -0.0.
        b.fetch_min_f32(0, 0.0);
        assert!(b.load(0).is_sign_negative());
    }

    #[test]
    fn f32_atomic_min_repairs_nan_cell() {
        let b = DeviceBuffer::<f32>::new(tracker(1024), 1, AllocKind::Device).unwrap();
        b.store(0, f32::NAN);
        b.fetch_min_f32(0, 5.0);
        assert_eq!(b.load(0), 5.0, "first non-NaN operand repairs the cell");
    }

    #[test]
    fn f32_atomic_add_ignores_nan_operand() {
        let b = DeviceBuffer::<f32>::new(tracker(1024), 1, AllocKind::Device).unwrap();
        b.store(0, 3.0);
        assert_eq!(b.fetch_add_f32(0, f32::NAN), 3.0);
        assert_eq!(b.load(0), 3.0, "NaN contribution never poisons the cell");
    }

    #[test]
    fn f32_atomic_min_contended_multi_lane() {
        use std::sync::Arc as StdArc;
        let b = StdArc::new(DeviceBuffer::<f32>::new(tracker(1024), 1, AllocKind::Device).unwrap());
        b.store(0, f32::INFINITY);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = b.clone();
                s.spawn(move || {
                    for k in 0..1000 {
                        b.fetch_min_f32(0, (t * 1000 + k) as f32);
                        if k % 7 == 0 {
                            b.fetch_min_f32(0, f32::NAN);
                        }
                    }
                });
            }
        });
        assert_eq!(b.load(0), 0.0, "global min survives contention + NaNs");
        assert!(!b.load(0).is_nan());
    }

    #[test]
    fn f32_atomic_add_concurrent() {
        use std::sync::Arc as StdArc;
        let b =
            StdArc::new(DeviceBuffer::<f32>::new(tracker(1 << 20), 1, AllocKind::Device).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        b.fetch_add_f32(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(b.load(0), 4000.0);
    }

    #[test]
    fn oom_is_reported() {
        let t = tracker(1024);
        let ok = DeviceBuffer::<u32>::new(t.clone(), 128, AllocKind::Device);
        assert!(ok.is_ok());
        let err = DeviceBuffer::<u32>::new(t.clone(), 200, AllocKind::Device);
        match err {
            Err(SimError::OutOfMemory {
                requested,
                used,
                capacity,
            }) => {
                // 800 raw bytes charge as one 1024-B aligned block.
                assert_eq!(requested, 1024);
                assert_eq!(used, 512);
                assert_eq!(capacity, 1024);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn accounting_is_alignment_granular() {
        let t = tracker(4096);
        let a = DeviceBuffer::<u32>::new(t.clone(), 10, AllocKind::Device).unwrap();
        assert_eq!(t.used(), 256, "40 raw bytes charge one 256-B block");
        let b = DeviceBuffer::<u32>::new(t.clone(), 100, AllocKind::Device).unwrap();
        assert_eq!(t.used(), 256 + 512);
        drop(a);
        drop(b);
        assert_eq!(t.used(), 0, "aligned charge is fully returned");
        assert_eq!(t.release_underflows(), 0);
    }

    #[test]
    fn release_saturates_and_counts_underflow() {
        let t = tracker(1024);
        t.release(100);
        assert_eq!(t.used(), 0, "saturates instead of wrapping");
        assert_eq!(t.release_underflows(), 1);
        // Later allocations still work.
        assert!(DeviceBuffer::<u32>::new(t.clone(), 16, AllocKind::Device).is_ok());
    }

    #[test]
    fn recompute_from_ledger_heals_drifted_counters() {
        let t = tracker(1 << 20);
        let a = DeviceBuffer::<u32>::new(t.clone(), 100, AllocKind::Device).unwrap();
        let _b = DeviceBuffer::<u64>::new(t.clone(), 32, AllocKind::Shared).unwrap();
        let truth = t.used();
        // Drift the incremental counter the way a stray release would
        // (saturating, so the bytes are silently dropped).
        t.release(256);
        assert_ne!(t.used(), truth, "counter drifted");
        t.recompute_from_ledger();
        assert_eq!(t.used(), truth, "ledger restores the true live total");
        assert!(t.peak() >= truth);
        // Dead entries stop counting: recompute tracks frees too.
        drop(a);
        let after_free = t.used();
        t.recompute_from_ledger();
        assert_eq!(t.used(), after_free);
    }

    #[test]
    fn snapshot_restore_roundtrips_contents() {
        let b = DeviceBuffer::<f32>::new(tracker(1 << 20), 5, AllocKind::Device).unwrap();
        for i in 0..5 {
            b.store(i, i as f32 * 1.5 - 2.0);
        }
        let image = b.snapshot_words();
        b.fill(f32::NAN);
        b.restore_words(&image);
        for i in 0..5 {
            assert_eq!(b.load(i).to_bits(), (i as f32 * 1.5 - 2.0).to_bits());
        }
    }

    #[test]
    fn soft_limit_caps_effective_capacity() {
        let t = tracker(1 << 20);
        t.set_soft_limit(Some(512));
        assert_eq!(t.effective_capacity(), 512);
        let a = DeviceBuffer::<u32>::new(t.clone(), 64, AllocKind::Device).unwrap(); // 256 B
        let err = DeviceBuffer::<u32>::new(t.clone(), 128, AllocKind::Device)
            .expect_err("512-B charge over a 512-B limit with 256 B used");
        match err {
            SimError::OutOfMemory { capacity, .. } => {
                assert_eq!(capacity, 512, "error reports the effective capacity")
            }
            other => panic!("expected OutOfMemory, got {other}"),
        }
        drop(a);
        t.set_soft_limit(None);
        assert!(DeviceBuffer::<u32>::new(t, 128, AllocKind::Device).is_ok());
    }

    #[test]
    fn bounds_check_is_always_on() {
        let b = DeviceBuffer::<u32>::new(tracker(1024), 4, AllocKind::Device).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.load(4)))
            .expect_err("OOB load must panic in all build profiles");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("len 4"), "panic names the length: {msg}");
        assert!(msg.contains("Device"), "panic names the AllocKind: {msg}");
    }

    #[test]
    fn alias_detects_use_after_free() {
        let t = tracker(1024);
        let b = DeviceBuffer::<u32>::new(t.clone(), 8, AllocKind::Device).unwrap();
        b.store(3, 99);
        let view = b.alias();
        assert!(view.is_live());
        assert_eq!(t.used(), 256, "alias charges nothing");
        drop(b);
        assert!(!view.is_live(), "owner drop kills liveness");
        assert_eq!(t.used(), 0, "alias does not hold the reservation");
        assert_eq!(view.load(3), 99, "storage stays valid (no host UB)");
        assert!(view.generation() > 0);
    }

    #[test]
    fn ledger_locates_addresses() {
        let t = tracker(1 << 20);
        let a = DeviceBuffer::<u32>::new(t.clone(), 10, AllocKind::Device).unwrap();
        let b = DeviceBuffer::<u64>::new(t.clone(), 10, AllocKind::Shared).unwrap();
        let (kind, base, _) = t.locate(a.addr_of(3)).unwrap();
        assert_eq!(kind, AllocKind::Device);
        assert_eq!(base, a.addr_of(0));
        let (kind, base, gen_b) = t.locate(b.addr_of(9)).unwrap();
        assert_eq!(kind, AllocKind::Shared);
        assert_eq!(base, b.addr_of(0));
        assert_eq!(gen_b, b.generation());
        assert!(t.locate(0).is_none(), "zero page maps to nothing");
    }

    #[test]
    fn drop_releases_memory() {
        let t = tracker(1024);
        {
            let _b = DeviceBuffer::<u64>::new(t.clone(), 64, AllocKind::Device).unwrap();
            assert_eq!(t.used(), 512);
        }
        assert_eq!(t.used(), 0);
        assert_eq!(t.peak(), 512, "peak survives the free");
    }

    #[test]
    fn addresses_are_distinct_and_aligned() {
        let t = tracker(1 << 20);
        let a = DeviceBuffer::<u32>::new(t.clone(), 10, AllocKind::Device).unwrap();
        let b = DeviceBuffer::<u32>::new(t, 10, AllocKind::Device).unwrap();
        assert_ne!(a.addr_of(0), b.addr_of(0));
        assert_eq!(a.addr_of(0) % 256, 0);
        assert_eq!(a.addr_of(3) - a.addr_of(0), 12);
    }

    #[test]
    fn bulk_copy_roundtrip() {
        let b = DeviceBuffer::<i64>::new(tracker(1 << 20), 5, AllocKind::Device).unwrap();
        b.copy_from_slice(&[-1, 2, -3, 4, -5]);
        assert_eq!(b.to_vec(), vec![-1, 2, -3, 4, -5]);
        b.fill(9);
        assert_eq!(b.to_vec(), vec![9; 5]);
    }
}
